//! Whole-query compilation: a standalone, cacheable execution plan.
//!
//! PR 2's [`compile`](crate::compile) pass lowers expressions to positional
//! programs *per operator, per evaluation* — each [`eval_query`]
//! (crate::eval_query) call re-derives every program.  This module performs
//! that lowering **once**, ahead of time, producing an owned
//! [`CompiledQuery`] that can be cached (keyed by query text), shared
//! across threads (`CompiledQuery: Send + Sync`), and executed repeatedly
//! via [`eval_compiled`](crate::eval::eval_compiled) without touching the
//! parser, the optimizer, or the compiler again.  It is the SQL half of the
//! engine crate's query-plan cache.
//!
//! Compilation statically replays the evaluator's column-layout
//! bookkeeping: starting from the base-table layouts of a concrete
//! [`RelInstance`], every operator's output columns are inferred exactly as
//! the interpreter's `requalify`/projection/join logic would produce them,
//! and each operator's programs are lowered against its input layout.  The
//! plan is therefore *instance-schema-specific*: it is valid for any
//! instance whose tables have the same names and column lists as the one it
//! was compiled against (the engine compiles against an immutable
//! snapshot, so this holds by construction).
//!
//! Join planning is also decided statically, mirroring the interpreter's
//! runtime dispatch: cross joins become product nodes, inner/left
//! equi-joins without subqueries become hash joins with a compiled residual
//! predicate, and everything else becomes a nested-loop join over a
//! compiled predicate.
//!
//! Compile-time errors are exactly the evaluation errors that are
//! *unconditional* at runtime — an unknown base table, or an `ORDER BY`
//! key that is not an output column — with identical messages.  Everything
//! data-dependent (unknown columns on actual rows, `*` misuse, arity
//! mismatches) stays a runtime error so the compiled engine fails in the
//! same situations as the interpreter.

use crate::ast::{JoinKind, SqlExpr, SqlPred, SqlQuery};
use crate::compile::{
    compile_expr, compile_group_expr, compile_group_pred, compile_pred, CExpr, CGroupExpr,
    CGroupPred, CPred,
};
use crate::eval::resolve_column;
use crate::optimize::optimize;
use graphiti_common::{Error, Ident, Result};
use graphiti_relational::RelInstance;
use std::collections::HashMap;
use std::sync::Arc;

/// A fully-compiled, owned, thread-safe execution plan for one SQL query.
///
/// Build with [`compile_query`]; execute with
/// [`eval_compiled`](crate::eval::eval_compiled).
#[derive(Debug)]
pub struct CompiledQuery {
    pub(crate) root: PlanNode,
}

impl CompiledQuery {
    /// The output column names of the plan.
    pub fn columns(&self) -> &[String] {
        self.root.columns.as_slice()
    }
}

/// One operator of a compiled plan, carrying its statically-inferred output
/// layout.  Layouts are `Arc`-shared: operators that do not reshape their
/// input (selection, ordering) share the child's name vector, and the
/// vectorized executor reuses them verbatim as result-table names, so no
/// per-execution requalification strings are ever rebuilt.
#[derive(Debug)]
pub(crate) struct PlanNode {
    pub(crate) op: PlanOp,
    pub(crate) columns: Arc<Vec<String>>,
}

/// The operator kinds of a compiled plan.
#[derive(Debug)]
pub(crate) enum PlanOp {
    /// Base-table or CTE scan (requalified by the scan name).
    Scan { name: Ident },
    /// `ρ_T(Q)` — requalification by a new alias.
    Rename { input: Box<PlanNode>, alias: Ident },
    /// `σ_φ(Q)` with a compiled filter program.
    Select { input: Box<PlanNode>, program: CPred },
    /// `Π_L(Q)` with compiled item programs.
    Project { input: Box<PlanNode>, programs: Vec<CExpr>, distinct: bool },
    /// Cartesian product (the interpreter's cross-join fast path).
    Cross { left: Box<PlanNode>, right: Box<PlanNode> },
    /// Hash equi-join on statically-extracted column pairs; `residual` is
    /// the compiled non-equi remainder (`None` = always true).
    HashJoin {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        kind: JoinKind,
        pairs: Vec<(usize, usize)>,
        residual: Option<CPred>,
    },
    /// General nested-loop join over a compiled predicate.
    LoopJoin { left: Box<PlanNode>, right: Box<PlanNode>, kind: JoinKind, program: CPred },
    /// `UNION` / `UNION ALL`.
    Union { left: Box<PlanNode>, right: Box<PlanNode>, dedup: bool },
    /// `GroupBy(Q, Ē, L, φ)` with compiled key/item/`HAVING` programs
    /// (`having: None` = always true).
    GroupBy {
        input: Box<PlanNode>,
        keys: Vec<CExpr>,
        items: Vec<CGroupExpr>,
        having: Option<CGroupPred>,
    },
    /// A common table expression.
    With { name: Ident, definition: Box<PlanNode>, body: Box<PlanNode> },
    /// `OrderBy(Q, ā, b)` with statically-resolved sort keys.
    OrderBy { input: Box<PlanNode>, keys: Vec<(usize, bool)> },
}

/// Compiles `query` into an execution plan for instances shaped like
/// `instance`, running the selection-pushdown optimizer first (the same
/// pipeline as [`eval_query`](crate::eval_query)).
pub fn compile_query(instance: &RelInstance, query: &SqlQuery) -> Result<CompiledQuery> {
    let optimized = optimize(query);
    let root = compile_node(&optimized, instance, &HashMap::new())?;
    Ok(CompiledQuery { root })
}

/// Replays the evaluator's `requalify`: qualifies `columns` with `alias`.
fn requalify_columns(columns: &[String], alias: &str) -> Vec<String> {
    columns.iter().map(|c| format!("{alias}.{}", unqualified(c))).collect()
}

fn unqualified(name: &str) -> &str {
    match name.rsplit_once('.') {
        Some((_, s)) => s,
        None => name,
    }
}

/// Statically resolves a scan, mirroring the evaluator's CTE-first,
/// case-insensitive-fallback lookup order.
fn scan_columns(
    name: &str,
    instance: &RelInstance,
    ctes: &HashMap<String, Vec<String>>,
) -> Result<Vec<String>> {
    let base = ctes
        .get(name)
        .or_else(|| ctes.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v))
        .cloned()
        .or_else(|| instance.table(name).map(|t| t.columns.clone()));
    match base {
        Some(cols) => Ok(requalify_columns(&cols, name)),
        None => Err(Error::eval(format!("unknown table `{name}`"))),
    }
}

fn compile_node(
    q: &SqlQuery,
    instance: &RelInstance,
    ctes: &HashMap<String, Vec<String>>,
) -> Result<PlanNode> {
    match q {
        SqlQuery::Table(name) => {
            let columns = Arc::new(scan_columns(name.as_str(), instance, ctes)?);
            Ok(PlanNode { op: PlanOp::Scan { name: name.clone() }, columns })
        }
        SqlQuery::Rename { input, alias } => {
            let input = compile_node(input, instance, ctes)?;
            let columns = Arc::new(requalify_columns(&input.columns, alias.as_str()));
            Ok(PlanNode {
                op: PlanOp::Rename { input: Box::new(input), alias: alias.clone() },
                columns,
            })
        }
        SqlQuery::Select { input, pred } => {
            let input = compile_node(input, instance, ctes)?;
            let program = compile_pred(pred, input.columns.as_slice());
            let columns = Arc::clone(&input.columns);
            Ok(PlanNode { op: PlanOp::Select { input: Box::new(input), program }, columns })
        }
        SqlQuery::Project { input, items, distinct } => {
            let input = compile_node(input, instance, ctes)?;
            let programs =
                items.iter().map(|i| compile_expr(&i.expr, input.columns.as_slice())).collect();
            let columns = Arc::new(items.iter().map(|i| i.output_name()).collect());
            Ok(PlanNode {
                op: PlanOp::Project { input: Box::new(input), programs, distinct: *distinct },
                columns,
            })
        }
        SqlQuery::Join { left, right, kind, pred } => {
            let left = compile_node(left, instance, ctes)?;
            let right = compile_node(right, instance, ctes)?;
            compile_join(left, right, *kind, pred)
        }
        SqlQuery::Union(a, b) | SqlQuery::UnionAll(a, b) => {
            let dedup = matches!(q, SqlQuery::Union(..));
            let left = compile_node(a, instance, ctes)?;
            let right = compile_node(b, instance, ctes)?;
            // The runtime keeps the left side's columns (arity mismatches
            // stay runtime errors, as in the interpreter).
            let columns = Arc::clone(&left.columns);
            Ok(PlanNode {
                op: PlanOp::Union { left: Box::new(left), right: Box::new(right), dedup },
                columns,
            })
        }
        SqlQuery::GroupBy { input, keys, items, having } => {
            let input = compile_node(input, instance, ctes)?;
            let key_programs =
                keys.iter().map(|k| compile_expr(k, input.columns.as_slice())).collect();
            let item_programs = items
                .iter()
                .map(|i| compile_group_expr(&i.expr, input.columns.as_slice()))
                .collect();
            let having_program = (!matches!(having, SqlPred::Bool(true)))
                .then(|| compile_group_pred(having, input.columns.as_slice()));
            let columns = Arc::new(items.iter().map(|i| i.output_name()).collect());
            Ok(PlanNode {
                op: PlanOp::GroupBy {
                    input: Box::new(input),
                    keys: key_programs,
                    items: item_programs,
                    having: having_program,
                },
                columns,
            })
        }
        SqlQuery::With { name, definition, body } => {
            let definition = compile_node(definition, instance, ctes)?;
            let mut extended = ctes.clone();
            // The runtime CTE environment stores *unrequalified* layouts
            // (scans requalify on lookup), so strip the definition's
            // qualifiers the way `requalify` would re-add them.
            extended.insert(
                name.as_str().to_string(),
                definition.columns.iter().map(|c| unqualified(c).to_string()).collect(),
            );
            let body = compile_node(body, instance, &extended)?;
            let columns = Arc::clone(&body.columns);
            Ok(PlanNode {
                op: PlanOp::With {
                    name: name.clone(),
                    definition: Box::new(definition),
                    body: Box::new(body),
                },
                columns,
            })
        }
        SqlQuery::OrderBy { input, keys } => {
            let input = compile_node(input, instance, ctes)?;
            let mut resolved: Vec<(usize, bool)> = Vec::new();
            for (expr, asc) in keys {
                let idx = resolve_order_key(expr, input.columns.as_slice()).ok_or_else(|| {
                    Error::eval(format!(
                        "ORDER BY key `{}` is not an output column",
                        crate::pretty::expr_to_string(expr)
                    ))
                })?;
                resolved.push((idx, *asc));
            }
            let columns = Arc::clone(&input.columns);
            Ok(PlanNode { op: PlanOp::OrderBy { input: Box::new(input), keys: resolved }, columns })
        }
    }
}

/// The evaluator's `ORDER BY` key resolution, replayed statically.
fn resolve_order_key(expr: &SqlExpr, columns: &[String]) -> Option<usize> {
    match expr {
        SqlExpr::Col(c) => resolve_column(columns, c)
            .or_else(|| graphiti_relational::column_index_in(columns, &c.render())),
        other => {
            let rendered = crate::pretty::expr_to_string(other);
            graphiti_relational::column_index_in(columns, &rendered)
        }
    }
}

/// Statically replays the interpreter's join dispatch: cross product, hash
/// equi-join (with residual), or nested loop.
fn compile_join(
    left: PlanNode,
    right: PlanNode,
    kind: JoinKind,
    pred: &SqlPred,
) -> Result<PlanNode> {
    let columns: Arc<Vec<String>> =
        Arc::new(left.columns.iter().chain(right.columns.iter()).cloned().collect());
    if matches!(kind, JoinKind::Cross) {
        return Ok(PlanNode {
            op: PlanOp::Cross { left: Box::new(left), right: Box::new(right) },
            columns,
        });
    }
    if matches!(kind, JoinKind::Inner | JoinKind::Left) && !pred.has_subquery() {
        // Split into equi pairs and residual conjuncts against the two
        // input layouts, exactly like `try_hash_join`.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut residual: Vec<SqlPred> = Vec::new();
        for conjunct in pred.conjuncts() {
            if let SqlPred::Cmp(a, op, b) = conjunct {
                if *op == graphiti_common::CmpOp::Eq {
                    if let (SqlExpr::Col(ca), SqlExpr::Col(cb)) = (a.as_ref(), b.as_ref()) {
                        if let (Some(li), Some(ri)) = (
                            resolve_column(left.columns.as_slice(), ca),
                            resolve_column(right.columns.as_slice(), cb),
                        ) {
                            pairs.push((li, ri));
                            continue;
                        }
                        if let (Some(li), Some(ri)) = (
                            resolve_column(left.columns.as_slice(), cb),
                            resolve_column(right.columns.as_slice(), ca),
                        ) {
                            pairs.push((li, ri));
                            continue;
                        }
                    }
                }
            }
            residual.push(conjunct.clone());
        }
        if !pairs.is_empty() {
            let residual = SqlPred::conjunction(residual);
            let residual_program = (!matches!(residual, SqlPred::Bool(true)))
                .then(|| compile_pred(&residual, columns.as_slice()));
            return Ok(PlanNode {
                op: PlanOp::HashJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                    kind,
                    pairs,
                    residual: residual_program,
                },
                columns,
            });
        }
    }
    let program = compile_pred(pred, columns.as_slice());
    Ok(PlanNode {
        op: PlanOp::LoopJoin { left: Box::new(left), right: Box::new(right), kind, program },
        columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use graphiti_common::Value;
    use graphiti_relational::Table;

    fn inst() -> RelInstance {
        let mut inst = RelInstance::new();
        inst.insert_table(
            "emp",
            Table::with_rows(
                ["id", "name"],
                vec![vec![Value::Int(1), Value::str("A")], vec![Value::Int(2), Value::str("B")]],
            ),
        );
        inst.insert_table(
            "dept",
            Table::with_rows(
                ["dnum", "dname"],
                vec![vec![Value::Int(1), Value::str("CS")], vec![Value::Int(2), Value::str("EE")]],
            ),
        );
        inst
    }

    #[test]
    fn layouts_follow_renames_and_projections() {
        let q = parse_query("SELECT e.name AS who FROM emp AS e WHERE e.id = 1").unwrap();
        let plan = compile_query(&inst(), &q).unwrap();
        assert_eq!(plan.columns(), &["who".to_string()]);
    }

    #[test]
    fn join_layouts_concatenate() {
        let q = parse_query("SELECT e.name, d.dname FROM emp AS e, dept AS d").unwrap();
        let plan = compile_query(&inst(), &q).unwrap();
        assert_eq!(plan.columns().len(), 2);
    }

    #[test]
    fn unknown_tables_fail_at_compile_time_with_the_runtime_message() {
        let q = parse_query("SELECT x.a FROM missing AS x").unwrap();
        let err = compile_query(&inst(), &q).unwrap_err();
        assert!(err.to_string().contains("unknown table `missing`"), "{err}");
    }

    #[test]
    fn cte_layouts_shadow_base_tables() {
        let q =
            parse_query("WITH emp AS (SELECT d.dnum AS k FROM dept AS d) SELECT emp.k FROM emp")
                .unwrap();
        let plan = compile_query(&inst(), &q).unwrap();
        assert_eq!(plan.columns(), &["emp.k".to_string()]);
    }

    #[test]
    fn unresolvable_order_by_fails_at_compile_time() {
        let q = parse_query("SELECT e.id FROM emp AS e ORDER BY e.name").unwrap();
        // `e.name` is projected away before ORDER BY sees the table.
        let res = compile_query(&inst(), &q);
        assert!(res.is_err());
    }

    #[test]
    fn equi_joins_plan_as_hash_joins() {
        let q =
            parse_query("SELECT e.name FROM emp AS e JOIN dept AS d ON e.id = d.dnum AND e.id > 0")
                .unwrap();
        let plan = compile_query(&inst(), &q).unwrap();
        fn find_hash(node: &PlanNode) -> bool {
            match &node.op {
                PlanOp::HashJoin { pairs, residual, .. } => pairs.len() == 1 && residual.is_some(),
                PlanOp::Project { input, .. }
                | PlanOp::Select { input, .. }
                | PlanOp::Rename { input, .. }
                | PlanOp::OrderBy { input, .. } => find_hash(input),
                _ => false,
            }
        }
        assert!(find_hash(&plan.root), "expected a hash join in {:?}", plan.root);
    }
}
