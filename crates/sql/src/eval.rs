//! Bag-semantics evaluator for Featherweight SQL.
//!
//! The evaluator interprets a [`SqlQuery`] against a [`RelInstance`] and
//! produces a [`Table`].  Semantics follow the paper's references (VeriEQL's
//! formalization): bags of tuples, three-valued `NULL` logic, `GROUP BY`
//! with `HAVING`, inner/outer joins, `IN`/`EXISTS` subqueries (with
//! correlation), and common table expressions.
//!
//! Uncorrelated subqueries inside a predicate are evaluated once and cached;
//! equi-joins are executed with a hash join.  [`eval_query`] additionally
//! runs the selection-pushdown optimizer first so that textbook
//! `FROM a, b, c WHERE ...` queries do not materialize full Cartesian
//! products, and executes expressions through the
//! [`compile`](crate::compile) pass: per operator, column references are
//! resolved to positional indexes **once**, and the per-row loop runs the
//! resulting positional program.  [`eval_query_unoptimized`] skips both the
//! pushdown pass and compilation, retaining the naive per-row
//! string-resolution interpreter for the ablation benchmark and for
//! differential testing of the compiled engine.

use crate::ast::*;
use crate::compile::{
    compile_expr, compile_group_expr, compile_group_pred, compile_pred, CExpr, CGroupExpr,
    CGroupPred, CPred,
};
use crate::optimize::optimize;
use crate::plan::{CompiledQuery, PlanNode, PlanOp};
use graphiti_common::{AggKind, Error, Result, Truth, Value};
use graphiti_relational::{RelInstance, Table};
use std::collections::{HashMap, HashSet};

/// Evaluates a SQL query against a relational instance with the full
/// optimization pipeline: selection pushdown, hash joins, and pre-compiled
/// positional expression programs.
pub fn eval_query(instance: &RelInstance, query: &SqlQuery) -> Result<Table> {
    let optimized = optimize(query);
    let ev = Evaluator { instance, compiled: true };
    ev.eval(&optimized, &CteEnv::new(), None)
}

/// Executes a pre-compiled plan (see [`crate::plan::compile_query`])
/// against a relational instance.
///
/// The plan must have been compiled against an instance with the same
/// table names and column lists; the engine crate guarantees this by
/// compiling against an immutable snapshot and caching plans per snapshot.
/// Subqueries inside the plan re-enter the regular compiled evaluator, so
/// semantics are identical to [`eval_query`] — only the per-call parse /
/// optimize / compile work is gone.
pub fn eval_compiled(instance: &RelInstance, plan: &CompiledQuery) -> Result<Table> {
    let ev = Evaluator { instance, compiled: true };
    ev.eval_plan(&plan.root, &CteEnv::new(), None)
}

/// Evaluates a SQL query without the selection-pushdown pass and without
/// expression compilation: every column reference is re-resolved by string
/// matching for every row, as in the seed interpreter.  Kept as the
/// ablation baseline and as the reference the compiled engine is
/// differentially tested against.
pub fn eval_query_unoptimized(instance: &RelInstance, query: &SqlQuery) -> Result<Table> {
    let ev = Evaluator { instance, compiled: false };
    ev.eval(query, &CteEnv::new(), None)
}

pub(crate) type CteEnv = HashMap<String, Table>;

/// Row-scope used to resolve column references, chained for correlated
/// subqueries.
pub(crate) struct Scope<'a> {
    pub(crate) columns: &'a [String],
    pub(crate) row: &'a [Value],
    pub(crate) outer: Option<&'a Scope<'a>>,
}

impl<'a> Scope<'a> {
    /// Resolves a column reference to the value it names, walking the outer
    /// scope chain for correlated references.  Returns a borrow — callers
    /// clone only when they need ownership.
    fn lookup(&self, cref: &ColumnRef) -> Option<&'a Value> {
        match resolve_column(self.columns, cref) {
            Some(idx) => Some(&self.row[idx]),
            None => self.outer.and_then(|o| o.lookup(cref)),
        }
    }
}

/// Resolves a column reference against a column-name list.
///
/// Qualified references match `qualifier.name` exactly (case-insensitively);
/// unqualified references match a column whose unqualified suffix equals the
/// name, provided the match is unambiguous.
pub fn resolve_column(columns: &[String], cref: &ColumnRef) -> Option<usize> {
    let target = cref.render();
    if let Some(i) = columns.iter().position(|c| c.eq_ignore_ascii_case(&target)) {
        return Some(i);
    }
    let name = cref.name.as_str();
    let matches: Vec<usize> = columns
        .iter()
        .enumerate()
        .filter(|(_, c)| unqualified(c).eq_ignore_ascii_case(name))
        .map(|(i, _)| i)
        .collect();
    match (cref.qualifier.as_ref(), matches.len()) {
        (None, 1) => Some(matches[0]),
        // A qualified reference may still resolve by suffix when the
        // qualifier was erased by an intermediate projection, as long as the
        // suffix is unambiguous.
        (Some(_), 1) => Some(matches[0]),
        _ => None,
    }
}

fn unqualified(name: &str) -> &str {
    match name.rsplit_once('.') {
        Some((_, s)) => s,
        None => name,
    }
}

/// Qualifies a table's columns with a new alias (`ρ_T`).
fn requalify(table: &Table, alias: &str) -> Table {
    Table {
        columns: table.columns.iter().map(|c| format!("{alias}.{}", unqualified(c))).collect(),
        rows: table.rows.clone(),
    }
}

pub(crate) struct Evaluator<'a> {
    pub(crate) instance: &'a RelInstance,
    /// Run per-operator compiled positional programs (`true`) or re-resolve
    /// columns by string matching per row (`false`, the retained naive
    /// path).
    pub(crate) compiled: bool,
}

pub(crate) type SubqCache = HashMap<usize, Table>;

impl<'a> Evaluator<'a> {
    pub(crate) fn eval(
        &self,
        q: &SqlQuery,
        ctes: &CteEnv,
        outer: Option<&Scope<'_>>,
    ) -> Result<Table> {
        match q {
            SqlQuery::Table(name) => self.scan(name.as_str(), ctes),
            SqlQuery::Rename { input, alias } => {
                let t = self.eval(input, ctes, outer)?;
                Ok(requalify(&t, alias.as_str()))
            }
            SqlQuery::Select { input, pred } => {
                let t = self.eval(input, ctes, outer)?;
                let mut out = Table::new(t.columns.clone());
                if self.compiled {
                    let program = compile_pred(pred, &t.columns);
                    // The cache is keyed by the *program's* subquery
                    // identities (the compiler lifts subqueries into fresh
                    // `Arc`s), so build it from the program, not the AST.
                    let cache = self.cache_cpred_subqueries(&program, ctes);
                    for row in &t.rows {
                        let scope = Scope { columns: &t.columns, row, outer };
                        if self.eval_cpred(&program, &scope, ctes, &cache)?.is_true() {
                            out.rows.push(row.clone());
                        }
                    }
                } else {
                    let cache = self.cache_subqueries(pred, ctes);
                    for row in &t.rows {
                        let scope = Scope { columns: &t.columns, row, outer };
                        if self.eval_pred(pred, &scope, ctes, &cache)?.is_true() {
                            out.rows.push(row.clone());
                        }
                    }
                }
                Ok(out)
            }
            SqlQuery::Project { input, items, distinct } => {
                let t = self.eval(input, ctes, outer)?;
                let columns: Vec<String> = items.iter().map(|i| i.output_name()).collect();
                let mut out = Table::new(columns);
                if self.compiled {
                    let programs: Vec<CExpr> =
                        items.iter().map(|i| compile_expr(&i.expr, &t.columns)).collect();
                    for row in &t.rows {
                        let scope = Scope { columns: &t.columns, row, outer };
                        let mut new_row = Vec::with_capacity(items.len());
                        for program in &programs {
                            new_row.push(self.eval_cexpr(program, &scope, ctes)?);
                        }
                        out.rows.push(new_row);
                    }
                } else {
                    for row in &t.rows {
                        let scope = Scope { columns: &t.columns, row, outer };
                        let mut new_row = Vec::with_capacity(items.len());
                        for item in items {
                            new_row.push(self.eval_scalar(&item.expr, &scope, ctes)?);
                        }
                        out.rows.push(new_row);
                    }
                }
                Ok(if *distinct { out.dedup() } else { out })
            }
            SqlQuery::Join { left, right, kind, pred } => {
                let lt = self.eval(left, ctes, outer)?;
                let rt = self.eval(right, ctes, outer)?;
                self.join(&lt, &rt, *kind, pred, ctes, outer)
            }
            SqlQuery::Union(a, b) => {
                let ta = self.eval(a, ctes, outer)?;
                let tb = self.eval(b, ctes, outer)?;
                concat_union(ta, tb, true)
            }
            SqlQuery::UnionAll(a, b) => {
                let ta = self.eval(a, ctes, outer)?;
                let tb = self.eval(b, ctes, outer)?;
                concat_union(ta, tb, false)
            }
            SqlQuery::GroupBy { input, keys, items, having } => {
                let t = self.eval(input, ctes, outer)?;
                self.group_by(&t, keys, items, having, ctes, outer)
            }
            SqlQuery::With { name, definition, body } => {
                let def = self.eval(definition, ctes, outer)?;
                let mut extended = ctes.clone();
                extended.insert(name.as_str().to_string(), def);
                self.eval(body, &extended, outer)
            }
            SqlQuery::OrderBy { input, keys } => {
                let t = self.eval(input, ctes, outer)?;
                self.order_by(t, keys)
            }
        }
    }

    fn scan(&self, name: &str, ctes: &CteEnv) -> Result<Table> {
        if let Some(t) = ctes
            .get(name)
            .or_else(|| ctes.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v))
        {
            return Ok(requalify(t, name));
        }
        match self.instance.table(name) {
            Some(t) => Ok(requalify(t, name)),
            None => Err(Error::eval(format!("unknown table `{name}`"))),
        }
    }

    // ---------------------------------------------------------------- joins

    fn join(
        &self,
        left: &Table,
        right: &Table,
        kind: JoinKind,
        pred: &SqlPred,
        ctes: &CteEnv,
        outer: Option<&Scope<'_>>,
    ) -> Result<Table> {
        let columns: Vec<String> =
            left.columns.iter().chain(right.columns.iter()).cloned().collect();
        let mut out = Table::new(columns.clone());

        // Try a hash join for inner/left equi-joins without subqueries.
        if matches!(kind, JoinKind::Cross)
            || (matches!(kind, JoinKind::Inner | JoinKind::Left) && !pred.has_subquery())
        {
            if let Some(table) =
                self.try_hash_join(left, right, kind, pred, &columns, ctes, outer)?
            {
                return Ok(table);
            }
        }

        // General nested-loop join.  The join predicate is compiled once
        // against the combined layout; the naive path interprets it per
        // pair.  The subquery cache is keyed off whichever form will be
        // evaluated.
        let program = if self.compiled { Some(compile_pred(pred, &columns)) } else { None };
        let cache = match &program {
            Some(p) => self.cache_cpred_subqueries(p, ctes),
            None => self.cache_subqueries(pred, ctes),
        };
        let null_right = vec![Value::Null; right.columns.len()];
        let null_left = vec![Value::Null; left.columns.len()];
        let mut right_matched = vec![false; right.rows.len()];
        for lrow in &left.rows {
            let mut matched = false;
            for (ri, rrow) in right.rows.iter().enumerate() {
                let combined: Vec<Value> = lrow.iter().chain(rrow.iter()).cloned().collect();
                let scope = Scope { columns: &columns, row: &combined, outer };
                let ok = match kind {
                    JoinKind::Cross => true,
                    _ => match &program {
                        Some(p) => self.eval_cpred(p, &scope, ctes, &cache)?.is_true(),
                        None => self.eval_pred(pred, &scope, ctes, &cache)?.is_true(),
                    },
                };
                if ok {
                    matched = true;
                    right_matched[ri] = true;
                    out.rows.push(combined);
                }
            }
            if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
                out.rows.push(lrow.iter().chain(null_right.iter()).cloned().collect());
            }
        }
        if matches!(kind, JoinKind::Right | JoinKind::Full) {
            for (ri, rrow) in right.rows.iter().enumerate() {
                if !right_matched[ri] {
                    out.rows.push(null_left.iter().chain(rrow.iter()).cloned().collect());
                }
            }
        }
        Ok(out)
    }

    /// Attempts a hash join; returns `Ok(None)` if the predicate has no
    /// usable equi-conjuncts.
    #[allow(clippy::too_many_arguments)]
    fn try_hash_join(
        &self,
        left: &Table,
        right: &Table,
        kind: JoinKind,
        pred: &SqlPred,
        columns: &[String],
        ctes: &CteEnv,
        outer: Option<&Scope<'_>>,
    ) -> Result<Option<Table>> {
        if matches!(kind, JoinKind::Cross) {
            let mut out = Table::new(columns.to_vec());
            for lrow in &left.rows {
                for rrow in &right.rows {
                    out.rows.push(lrow.iter().chain(rrow.iter()).cloned().collect());
                }
            }
            return Ok(Some(out));
        }
        // Split the predicate into equi pairs and residual conjuncts.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut residual: Vec<SqlPred> = Vec::new();
        for conjunct in pred.conjuncts() {
            if let SqlPred::Cmp(a, op, b) = conjunct {
                if *op == graphiti_common::CmpOp::Eq {
                    if let (SqlExpr::Col(ca), SqlExpr::Col(cb)) = (a.as_ref(), b.as_ref()) {
                        if let (Some(li), Some(ri)) =
                            (resolve_column(&left.columns, ca), resolve_column(&right.columns, cb))
                        {
                            pairs.push((li, ri));
                            continue;
                        }
                        if let (Some(li), Some(ri)) =
                            (resolve_column(&left.columns, cb), resolve_column(&right.columns, ca))
                        {
                            pairs.push((li, ri));
                            continue;
                        }
                    }
                }
            }
            residual.push(conjunct.clone());
        }
        if pairs.is_empty() {
            return Ok(None);
        }
        // The caller only routes subquery-free predicates here, so the
        // residual never needs a subquery cache.
        let residual = SqlPred::conjunction(residual);
        let cache = SubqCache::new();
        let residual_program = if self.compiled && !matches!(residual, SqlPred::Bool(true)) {
            Some(compile_pred(&residual, columns))
        } else {
            None
        };
        let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        'rows: for (ri, rrow) in right.rows.iter().enumerate() {
            let mut key = Vec::with_capacity(pairs.len());
            for (_, rcol) in &pairs {
                let v = rrow[*rcol].clone();
                if v.is_null() {
                    continue 'rows;
                }
                key.push(v);
            }
            index.entry(key).or_default().push(ri);
        }
        let mut out = Table::new(columns.to_vec());
        let null_right = vec![Value::Null; right.columns.len()];
        for lrow in &left.rows {
            let mut matched = false;
            let mut key = Vec::with_capacity(pairs.len());
            let mut has_null = false;
            for (lcol, _) in &pairs {
                let v = lrow[*lcol].clone();
                if v.is_null() {
                    has_null = true;
                    break;
                }
                key.push(v);
            }
            if !has_null {
                if let Some(ris) = index.get(&key) {
                    for &ri in ris {
                        let rrow = &right.rows[ri];
                        let combined: Vec<Value> =
                            lrow.iter().chain(rrow.iter()).cloned().collect();
                        let keep = if matches!(residual, SqlPred::Bool(true)) {
                            true
                        } else {
                            let scope = Scope { columns, row: &combined, outer };
                            match &residual_program {
                                Some(p) => self.eval_cpred(p, &scope, ctes, &cache)?.is_true(),
                                None => self.eval_pred(&residual, &scope, ctes, &cache)?.is_true(),
                            }
                        };
                        if keep {
                            matched = true;
                            out.rows.push(combined);
                        }
                    }
                }
            }
            if !matched && kind == JoinKind::Left {
                out.rows.push(lrow.iter().chain(null_right.iter()).cloned().collect());
            }
        }
        Ok(Some(out))
    }

    // ------------------------------------------------------------- grouping

    fn group_by(
        &self,
        input: &Table,
        keys: &[SqlExpr],
        items: &[SelectItem],
        having: &SqlPred,
        ctes: &CteEnv,
        outer: Option<&Scope<'_>>,
    ) -> Result<Table> {
        let columns: Vec<String> = items.iter().map(|i| i.output_name()).collect();
        let mut out = Table::new(columns);
        // Grouping-key programs: compiled once per operator on the fast
        // path, re-resolved per row on the naive path.
        let key_programs: Option<Vec<CExpr>> =
            self.compiled.then(|| keys.iter().map(|k| compile_expr(k, &input.columns)).collect());
        // Group rows by key values (hash-located, insertion-ordered).
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (ri, row) in input.rows.iter().enumerate() {
            let scope = Scope { columns: &input.columns, row, outer };
            let key: Vec<Value> = match &key_programs {
                Some(programs) => programs
                    .iter()
                    .map(|p| self.eval_cexpr(p, &scope, ctes))
                    .collect::<Result<_>>()?,
                None => {
                    keys.iter().map(|k| self.eval_scalar(k, &scope, ctes)).collect::<Result<_>>()?
                }
            };
            if !groups.contains_key(&key) {
                order.push(key.clone());
            }
            groups.entry(key).or_default().push(ri);
        }
        // SQL returns a single row for aggregate queries without GROUP BY
        // even when the input is empty.
        if keys.is_empty() && input.rows.is_empty() {
            order.push(Vec::new());
            groups.insert(Vec::new(), Vec::new());
        }
        let having_program: Option<CGroupPred> = (self.compiled
            && !matches!(having, SqlPred::Bool(true)))
        .then(|| compile_group_pred(having, &input.columns));
        // Key the subquery cache off the form that will be evaluated: the
        // compiled program retains owned subquery-predicate clones, so the
        // interpreter-side AST pointers would never match.
        let cache = match &having_program {
            Some(p) => self.cache_cgroup_subqueries(p, ctes),
            None if self.compiled => SubqCache::new(),
            None => self.cache_subqueries(having, ctes),
        };
        let item_programs: Option<Vec<CGroupExpr>> = self
            .compiled
            .then(|| items.iter().map(|i| compile_group_expr(&i.expr, &input.columns)).collect());
        for key in order {
            let members = &groups[&key];
            let rows: Vec<&Vec<Value>> = members.iter().map(|&i| &input.rows[i]).collect();
            if !matches!(having, SqlPred::Bool(true)) {
                let keep = match &having_program {
                    Some(p) => self
                        .eval_cgroup_pred(p, &rows, &input.columns, ctes, outer, &cache)?
                        .is_true(),
                    None => self
                        .eval_group_pred(having, &rows, &input.columns, ctes, outer, &cache)?
                        .is_true(),
                };
                if !keep {
                    continue;
                }
            }
            let mut new_row = Vec::with_capacity(items.len());
            match &item_programs {
                Some(programs) => {
                    for p in programs {
                        new_row.push(self.eval_cgroup_expr(
                            p,
                            &rows,
                            &input.columns,
                            ctes,
                            outer,
                        )?);
                    }
                }
                None => {
                    for item in items {
                        new_row.push(self.eval_group_expr(
                            &item.expr,
                            &rows,
                            &input.columns,
                            ctes,
                            outer,
                        )?);
                    }
                }
            }
            out.rows.push(new_row);
        }
        Ok(out)
    }

    fn eval_group_expr(
        &self,
        expr: &SqlExpr,
        rows: &[&Vec<Value>],
        columns: &[String],
        ctes: &CteEnv,
        outer: Option<&Scope<'_>>,
    ) -> Result<Value> {
        match expr {
            SqlExpr::Agg(kind, inner, distinct) => {
                if matches!(inner.as_ref(), SqlExpr::Star) {
                    if *kind != AggKind::Count {
                        return Err(Error::eval("`*` may only appear inside Count(*)"));
                    }
                    return Ok(Value::Int(rows.len() as i64));
                }
                let mut values = Vec::with_capacity(rows.len());
                for row in rows {
                    let scope = Scope { columns, row, outer };
                    values.push(self.eval_scalar(inner, &scope, ctes)?);
                }
                if *distinct {
                    let mut uniq: Vec<Value> = Vec::new();
                    for v in values {
                        if !uniq.iter().any(|u| u.strict_eq(&v)) {
                            uniq.push(v);
                        }
                    }
                    Ok(kind.fold(uniq.iter()))
                } else {
                    Ok(kind.fold(values.iter()))
                }
            }
            SqlExpr::Arith(a, op, b) => {
                let va = self.eval_group_expr(a, rows, columns, ctes, outer)?;
                let vb = self.eval_group_expr(b, rows, columns, ctes, outer)?;
                va.arith(*op, &vb)
            }
            other => match rows.first() {
                Some(row) => {
                    let scope = Scope { columns, row, outer };
                    self.eval_scalar(other, &scope, ctes)
                }
                None => Ok(Value::Null),
            },
        }
    }

    fn eval_group_pred(
        &self,
        pred: &SqlPred,
        rows: &[&Vec<Value>],
        columns: &[String],
        ctes: &CteEnv,
        outer: Option<&Scope<'_>>,
        cache: &SubqCache,
    ) -> Result<Truth> {
        match pred {
            SqlPred::Bool(b) => Ok(Truth::from_bool(*b)),
            SqlPred::Cmp(a, op, b) => {
                let va = self.eval_group_expr(a, rows, columns, ctes, outer)?;
                let vb = self.eval_group_expr(b, rows, columns, ctes, outer)?;
                Ok(va.compare(*op, &vb))
            }
            SqlPred::IsNull(e) => {
                let v = self.eval_group_expr(e, rows, columns, ctes, outer)?;
                Ok(Truth::from_bool(v.is_null()))
            }
            SqlPred::InList(e, vs) => {
                let v = self.eval_group_expr(e, rows, columns, ctes, outer)?;
                let mut truth = Truth::False;
                for candidate in vs {
                    truth = truth.or(v.sql_eq(candidate));
                }
                Ok(truth)
            }
            SqlPred::And(a, b) => Ok(self
                .eval_group_pred(a, rows, columns, ctes, outer, cache)?
                .and(self.eval_group_pred(b, rows, columns, ctes, outer, cache)?)),
            SqlPred::Or(a, b) => Ok(self
                .eval_group_pred(a, rows, columns, ctes, outer, cache)?
                .or(self.eval_group_pred(b, rows, columns, ctes, outer, cache)?)),
            SqlPred::Not(p) => {
                Ok(self.eval_group_pred(p, rows, columns, ctes, outer, cache)?.not())
            }
            SqlPred::InQuery(..) | SqlPred::Exists(_) => match rows.first() {
                Some(row) => {
                    let scope = Scope { columns, row, outer };
                    self.eval_pred(pred, &scope, ctes, cache)
                }
                None => Ok(Truth::Unknown),
            },
        }
    }

    // -------------------------------------------------------------- sorting

    fn order_by(&self, mut table: Table, keys: &[(SqlExpr, bool)]) -> Result<Table> {
        let mut resolved: Vec<(usize, bool)> = Vec::new();
        for (expr, asc) in keys {
            let idx = match expr {
                SqlExpr::Col(c) => {
                    resolve_column(&table.columns, c).or_else(|| table.column_index(&c.render()))
                }
                other => table.column_index(&crate::pretty::expr_to_string(other)),
            }
            .ok_or_else(|| {
                Error::eval(format!(
                    "ORDER BY key `{}` is not an output column",
                    crate::pretty::expr_to_string(expr)
                ))
            })?;
            resolved.push((idx, *asc));
        }
        table.rows.sort_by(|a, b| {
            for (idx, asc) in &resolved {
                let ord = a[*idx].total_cmp(&b[*idx]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(table)
    }

    // ------------------------------------------------- scalars & predicates

    pub(crate) fn eval_scalar(
        &self,
        e: &SqlExpr,
        scope: &Scope<'_>,
        ctes: &CteEnv,
    ) -> Result<Value> {
        match e {
            SqlExpr::Col(c) => scope
                .lookup(c)
                .cloned()
                .ok_or_else(|| Error::eval(format!("unknown column `{}`", c.render()))),
            SqlExpr::Value(v) => Ok(v.clone()),
            SqlExpr::Cast(p) => {
                let t = self.eval_pred(p, scope, ctes, &SubqCache::new())?;
                Ok(match t {
                    Truth::True => Value::Int(1),
                    Truth::False => Value::Int(0),
                    Truth::Unknown => Value::Null,
                })
            }
            SqlExpr::Agg(..) => Err(Error::eval("aggregate used outside of a GROUP BY context")),
            SqlExpr::Arith(a, op, b) => {
                let va = self.eval_scalar(a, scope, ctes)?;
                let vb = self.eval_scalar(b, scope, ctes)?;
                va.arith(*op, &vb)
            }
            SqlExpr::Star => Err(Error::eval("`*` may only appear inside Count(*)")),
        }
    }

    pub(crate) fn eval_pred(
        &self,
        p: &SqlPred,
        scope: &Scope<'_>,
        ctes: &CteEnv,
        cache: &SubqCache,
    ) -> Result<Truth> {
        match p {
            SqlPred::Bool(b) => Ok(Truth::from_bool(*b)),
            SqlPred::Cmp(a, op, b) => {
                let va = self.eval_scalar(a, scope, ctes)?;
                let vb = self.eval_scalar(b, scope, ctes)?;
                Ok(va.compare(*op, &vb))
            }
            SqlPred::IsNull(e) => {
                let v = self.eval_scalar(e, scope, ctes)?;
                Ok(Truth::from_bool(v.is_null()))
            }
            SqlPred::InList(e, vs) => {
                let v = self.eval_scalar(e, scope, ctes)?;
                let mut truth = Truth::False;
                for candidate in vs {
                    truth = truth.or(v.sql_eq(candidate));
                }
                Ok(truth)
            }
            SqlPred::InQuery(exprs, sub) => {
                let lhs: Vec<Value> = exprs
                    .iter()
                    .map(|e| self.eval_scalar(e, scope, ctes))
                    .collect::<Result<_>>()?;
                let table = self.subquery_result(sub, scope, ctes, cache)?;
                in_membership(&lhs, &table)
            }
            SqlPred::Exists(sub) => {
                let table = self.subquery_result(sub, scope, ctes, cache)?;
                Ok(Truth::from_bool(!table.is_empty()))
            }
            SqlPred::And(a, b) => Ok(self
                .eval_pred(a, scope, ctes, cache)?
                .and(self.eval_pred(b, scope, ctes, cache)?)),
            SqlPred::Or(a, b) => Ok(self
                .eval_pred(a, scope, ctes, cache)?
                .or(self.eval_pred(b, scope, ctes, cache)?)),
            SqlPred::Not(inner) => Ok(self.eval_pred(inner, scope, ctes, cache)?.not()),
        }
    }

    // ------------------------------------------ compiled-program execution
    //
    // The runtime for the positional programs produced by
    // [`crate::compile`].  These mirror `eval_scalar` / `eval_pred` /
    // `eval_group_expr` / `eval_group_pred` exactly, except that column
    // references are already indexes into the current row.

    pub(crate) fn eval_cexpr(&self, e: &CExpr, scope: &Scope<'_>, ctes: &CteEnv) -> Result<Value> {
        match e {
            CExpr::Col(idx) => Ok(scope.row[*idx].clone()),
            // Compilation already proved the reference does not resolve in
            // the local layout, so start the walk at the outer scope.
            CExpr::Outer(cref) => scope
                .outer
                .and_then(|o| o.lookup(cref))
                .cloned()
                .ok_or_else(|| Error::eval(format!("unknown column `{}`", cref.render()))),
            CExpr::Value(v) => Ok(v.clone()),
            CExpr::Cast(p) => {
                let t = self.eval_cpred(p, scope, ctes, &SubqCache::new())?;
                Ok(match t {
                    Truth::True => Value::Int(1),
                    Truth::False => Value::Int(0),
                    Truth::Unknown => Value::Null,
                })
            }
            CExpr::Arith(a, op, b) => {
                let va = self.eval_cexpr(a, scope, ctes)?;
                let vb = self.eval_cexpr(b, scope, ctes)?;
                va.arith(*op, &vb)
            }
            CExpr::ScalarAgg => Err(Error::eval("aggregate used outside of a GROUP BY context")),
            CExpr::Star => Err(Error::eval("`*` may only appear inside Count(*)")),
        }
    }

    pub(crate) fn eval_cpred(
        &self,
        p: &CPred,
        scope: &Scope<'_>,
        ctes: &CteEnv,
        cache: &SubqCache,
    ) -> Result<Truth> {
        match p {
            CPred::Bool(b) => Ok(Truth::from_bool(*b)),
            CPred::Cmp(a, op, b) => {
                let va = self.eval_cexpr(a, scope, ctes)?;
                let vb = self.eval_cexpr(b, scope, ctes)?;
                Ok(va.compare(*op, &vb))
            }
            CPred::IsNull(e) => {
                let v = self.eval_cexpr(e, scope, ctes)?;
                Ok(Truth::from_bool(v.is_null()))
            }
            CPred::InList(e, vs) => {
                let v = self.eval_cexpr(e, scope, ctes)?;
                let mut truth = Truth::False;
                for candidate in vs {
                    truth = truth.or(v.sql_eq(candidate));
                }
                Ok(truth)
            }
            CPred::InQuery(exprs, sub) => {
                let lhs: Vec<Value> =
                    exprs.iter().map(|e| self.eval_cexpr(e, scope, ctes)).collect::<Result<_>>()?;
                let table = self.subquery_result(sub.as_ref(), scope, ctes, cache)?;
                in_membership(&lhs, &table)
            }
            CPred::Exists(sub) => {
                let table = self.subquery_result(sub.as_ref(), scope, ctes, cache)?;
                Ok(Truth::from_bool(!table.is_empty()))
            }
            CPred::And(a, b) => Ok(self
                .eval_cpred(a, scope, ctes, cache)?
                .and(self.eval_cpred(b, scope, ctes, cache)?)),
            CPred::Or(a, b) => Ok(self
                .eval_cpred(a, scope, ctes, cache)?
                .or(self.eval_cpred(b, scope, ctes, cache)?)),
            CPred::Not(inner) => Ok(self.eval_cpred(inner, scope, ctes, cache)?.not()),
        }
    }

    fn eval_cgroup_expr(
        &self,
        e: &CGroupExpr,
        rows: &[&Vec<Value>],
        columns: &[String],
        ctes: &CteEnv,
        outer: Option<&Scope<'_>>,
    ) -> Result<Value> {
        match e {
            CGroupExpr::CountStar => Ok(Value::Int(rows.len() as i64)),
            CGroupExpr::StarAgg => Err(Error::eval("`*` may only appear inside Count(*)")),
            CGroupExpr::Agg(kind, inner, distinct) => {
                let mut values = Vec::with_capacity(rows.len());
                for row in rows {
                    let scope = Scope { columns, row, outer };
                    values.push(self.eval_cexpr(inner, &scope, ctes)?);
                }
                if *distinct {
                    // Hash-based dedup preserving first-seen order (Value's
                    // Hash is consistent with strict_eq).
                    let mut seen: HashSet<Value> = HashSet::with_capacity(values.len());
                    let mut uniq: Vec<Value> = Vec::new();
                    for v in values {
                        if seen.insert(v.clone()) {
                            uniq.push(v);
                        }
                    }
                    Ok(kind.fold(uniq.iter()))
                } else {
                    Ok(kind.fold(values.iter()))
                }
            }
            CGroupExpr::Arith(a, op, b) => {
                let va = self.eval_cgroup_expr(a, rows, columns, ctes, outer)?;
                let vb = self.eval_cgroup_expr(b, rows, columns, ctes, outer)?;
                va.arith(*op, &vb)
            }
            CGroupExpr::Scalar(inner) => match rows.first() {
                Some(row) => {
                    let scope = Scope { columns, row, outer };
                    self.eval_cexpr(inner, &scope, ctes)
                }
                None => Ok(Value::Null),
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_cgroup_pred(
        &self,
        pred: &CGroupPred,
        rows: &[&Vec<Value>],
        columns: &[String],
        ctes: &CteEnv,
        outer: Option<&Scope<'_>>,
        cache: &SubqCache,
    ) -> Result<Truth> {
        match pred {
            CGroupPred::Bool(b) => Ok(Truth::from_bool(*b)),
            CGroupPred::Cmp(a, op, b) => {
                let va = self.eval_cgroup_expr(a, rows, columns, ctes, outer)?;
                let vb = self.eval_cgroup_expr(b, rows, columns, ctes, outer)?;
                Ok(va.compare(*op, &vb))
            }
            CGroupPred::IsNull(e) => {
                let v = self.eval_cgroup_expr(e, rows, columns, ctes, outer)?;
                Ok(Truth::from_bool(v.is_null()))
            }
            CGroupPred::InList(e, vs) => {
                let v = self.eval_cgroup_expr(e, rows, columns, ctes, outer)?;
                let mut truth = Truth::False;
                for candidate in vs {
                    truth = truth.or(v.sql_eq(candidate));
                }
                Ok(truth)
            }
            CGroupPred::And(a, b) => Ok(self
                .eval_cgroup_pred(a, rows, columns, ctes, outer, cache)?
                .and(self.eval_cgroup_pred(b, rows, columns, ctes, outer, cache)?)),
            CGroupPred::Or(a, b) => Ok(self
                .eval_cgroup_pred(a, rows, columns, ctes, outer, cache)?
                .or(self.eval_cgroup_pred(b, rows, columns, ctes, outer, cache)?)),
            CGroupPred::Not(p) => {
                Ok(self.eval_cgroup_pred(p, rows, columns, ctes, outer, cache)?.not())
            }
            CGroupPred::Subquery(p) => match rows.first() {
                Some(row) => {
                    let scope = Scope { columns, row, outer };
                    self.eval_pred(p, &scope, ctes, cache)
                }
                None => Ok(Truth::Unknown),
            },
        }
    }

    fn subquery_result(
        &self,
        sub: &SqlQuery,
        scope: &Scope<'_>,
        ctes: &CteEnv,
        cache: &SubqCache,
    ) -> Result<Table> {
        let key = sub as *const SqlQuery as usize;
        if let Some(t) = cache.get(&key) {
            return Ok(t.clone());
        }
        self.eval(sub, ctes, Some(scope))
    }

    /// Pre-evaluates the uncorrelated subqueries of a predicate so they are
    /// not recomputed for every row.
    fn cache_subqueries(&self, pred: &SqlPred, ctes: &CteEnv) -> SubqCache {
        let mut cache = SubqCache::new();
        let mut stack = vec![pred];
        while let Some(p) = stack.pop() {
            match p {
                SqlPred::InQuery(_, sub) | SqlPred::Exists(sub) => {
                    if let Ok(t) = self.eval(sub, ctes, None) {
                        cache.insert(sub.as_ref() as *const SqlQuery as usize, t);
                    }
                }
                SqlPred::And(a, b) | SqlPred::Or(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                SqlPred::Not(inner) => stack.push(inner),
                _ => {}
            }
        }
        cache
    }

    /// Pre-evaluates the subqueries a compiled predicate will consult,
    /// keyed by the program's own subquery identities.
    pub(crate) fn cache_cpred_subqueries(&self, program: &CPred, ctes: &CteEnv) -> SubqCache {
        let mut subs = Vec::new();
        program.collect_subqueries(&mut subs);
        self.cache_collected(&subs, ctes)
    }

    /// Pre-evaluates the subqueries a compiled `HAVING` program will
    /// consult.
    pub(crate) fn cache_cgroup_subqueries(&self, program: &CGroupPred, ctes: &CteEnv) -> SubqCache {
        let mut subs = Vec::new();
        program.collect_subqueries(&mut subs);
        self.cache_collected(&subs, ctes)
    }

    fn cache_collected(&self, subs: &[&SqlQuery], ctes: &CteEnv) -> SubqCache {
        let mut cache = SubqCache::new();
        for sub in subs {
            if let Ok(t) = self.eval(sub, ctes, None) {
                cache.insert(*sub as *const SqlQuery as usize, t);
            }
        }
        cache
    }

    // ------------------------------------------------ compiled-plan runtime
    //
    // Executes the operator tree produced by [`crate::plan::compile_query`].
    // Each arm mirrors the corresponding `eval` arm with the per-call
    // `compile_*` invocations replaced by the plan's pre-built programs;
    // subqueries re-enter `eval` exactly as the per-operator compiled path
    // does.

    fn eval_plan(
        &self,
        node: &PlanNode,
        ctes: &CteEnv,
        outer: Option<&Scope<'_>>,
    ) -> Result<Table> {
        match &node.op {
            PlanOp::Scan { name } => self.scan(name.as_str(), ctes),
            PlanOp::Rename { input, alias } => {
                let t = self.eval_plan(input, ctes, outer)?;
                Ok(requalify(&t, alias.as_str()))
            }
            PlanOp::Select { input, program } => {
                let t = self.eval_plan(input, ctes, outer)?;
                self.select_compiled(&t, program, ctes, outer)
            }
            PlanOp::Project { input, programs, distinct } => {
                let t = self.eval_plan(input, ctes, outer)?;
                self.project_compiled(&t, programs, *distinct, node.columns.as_slice(), ctes, outer)
            }
            PlanOp::Cross { left, right } => {
                let lt = self.eval_plan(left, ctes, outer)?;
                let rt = self.eval_plan(right, ctes, outer)?;
                let mut out = Table::new(node.columns.iter().cloned());
                for lrow in &lt.rows {
                    for rrow in &rt.rows {
                        out.rows.push(lrow.iter().chain(rrow.iter()).cloned().collect());
                    }
                }
                Ok(out)
            }
            PlanOp::HashJoin { left, right, kind, pairs, residual } => {
                let lt = self.eval_plan(left, ctes, outer)?;
                let rt = self.eval_plan(right, ctes, outer)?;
                self.hash_join_compiled(
                    &lt,
                    &rt,
                    *kind,
                    pairs,
                    residual.as_ref(),
                    node.columns.as_slice(),
                    ctes,
                    outer,
                )
            }
            PlanOp::LoopJoin { left, right, kind, program } => {
                let lt = self.eval_plan(left, ctes, outer)?;
                let rt = self.eval_plan(right, ctes, outer)?;
                self.loop_join_compiled(
                    &lt,
                    &rt,
                    *kind,
                    program,
                    node.columns.as_slice(),
                    ctes,
                    outer,
                )
            }
            PlanOp::Union { left, right, dedup } => {
                let ta = self.eval_plan(left, ctes, outer)?;
                let tb = self.eval_plan(right, ctes, outer)?;
                concat_union(ta, tb, *dedup)
            }
            PlanOp::GroupBy { input, keys, items, having } => {
                let t = self.eval_plan(input, ctes, outer)?;
                self.group_by_compiled(
                    &t,
                    keys,
                    items,
                    having.as_ref(),
                    node.columns.as_slice(),
                    ctes,
                    outer,
                )
            }
            PlanOp::With { name, definition, body } => {
                let def = self.eval_plan(definition, ctes, outer)?;
                let mut extended = ctes.clone();
                extended.insert(name.as_str().to_string(), def);
                self.eval_plan(body, &extended, outer)
            }
            PlanOp::OrderBy { input, keys } => {
                let mut table = self.eval_plan(input, ctes, outer)?;
                table.rows.sort_by(|a, b| {
                    for (idx, asc) in keys {
                        let ord = a[*idx].total_cmp(&b[*idx]);
                        let ord = if *asc { ord } else { ord.reverse() };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(table)
            }
        }
    }

    /// The compiled-plan `Select` runtime: filter `t` through `program`.
    /// Shared with the vectorized executor's fallback path for predicates
    /// that cannot run column-at-a-time (subqueries).
    pub(crate) fn select_compiled(
        &self,
        t: &Table,
        program: &CPred,
        ctes: &CteEnv,
        outer: Option<&Scope<'_>>,
    ) -> Result<Table> {
        let cache = self.cache_cpred_subqueries(program, ctes);
        let mut out = Table::new(t.columns.clone());
        for row in &t.rows {
            let scope = Scope { columns: &t.columns, row, outer };
            if self.eval_cpred(program, &scope, ctes, &cache)?.is_true() {
                out.rows.push(row.clone());
            }
        }
        Ok(out)
    }

    /// The compiled-plan `Project` runtime, shared with the vectorized
    /// executor's fallback path.
    pub(crate) fn project_compiled(
        &self,
        t: &Table,
        programs: &[CExpr],
        distinct: bool,
        out_columns: &[String],
        ctes: &CteEnv,
        outer: Option<&Scope<'_>>,
    ) -> Result<Table> {
        let mut out = Table::new(out_columns.iter().cloned());
        for row in &t.rows {
            let scope = Scope { columns: &t.columns, row, outer };
            let mut new_row = Vec::with_capacity(programs.len());
            for program in programs {
                new_row.push(self.eval_cexpr(program, &scope, ctes)?);
            }
            out.rows.push(new_row);
        }
        Ok(if distinct { out.dedup() } else { out })
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn hash_join_compiled(
        &self,
        left: &Table,
        right: &Table,
        kind: JoinKind,
        pairs: &[(usize, usize)],
        residual: Option<&CPred>,
        out_columns: &[String],
        ctes: &CteEnv,
        outer: Option<&Scope<'_>>,
    ) -> Result<Table> {
        // The planner only emits hash joins for subquery-free predicates,
        // so no subquery cache is needed.
        let cache = SubqCache::new();
        let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        'rows: for (ri, rrow) in right.rows.iter().enumerate() {
            let mut key = Vec::with_capacity(pairs.len());
            for (_, rcol) in pairs {
                let v = rrow[*rcol].clone();
                if v.is_null() {
                    continue 'rows;
                }
                key.push(v);
            }
            index.entry(key).or_default().push(ri);
        }
        let mut out = Table::new(out_columns.iter().cloned());
        let null_right = vec![Value::Null; right.columns.len()];
        for lrow in &left.rows {
            let mut matched = false;
            let mut key = Vec::with_capacity(pairs.len());
            let mut has_null = false;
            for (lcol, _) in pairs {
                let v = lrow[*lcol].clone();
                if v.is_null() {
                    has_null = true;
                    break;
                }
                key.push(v);
            }
            if !has_null {
                if let Some(ris) = index.get(&key) {
                    for &ri in ris {
                        let rrow = &right.rows[ri];
                        let combined: Vec<Value> =
                            lrow.iter().chain(rrow.iter()).cloned().collect();
                        let keep = match residual {
                            None => true,
                            Some(p) => {
                                let scope = Scope { columns: out_columns, row: &combined, outer };
                                self.eval_cpred(p, &scope, ctes, &cache)?.is_true()
                            }
                        };
                        if keep {
                            matched = true;
                            out.rows.push(combined);
                        }
                    }
                }
            }
            if !matched && kind == JoinKind::Left {
                out.rows.push(lrow.iter().chain(null_right.iter()).cloned().collect());
            }
        }
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn loop_join_compiled(
        &self,
        left: &Table,
        right: &Table,
        kind: JoinKind,
        program: &CPred,
        out_columns: &[String],
        ctes: &CteEnv,
        outer: Option<&Scope<'_>>,
    ) -> Result<Table> {
        let cache = self.cache_cpred_subqueries(program, ctes);
        let mut out = Table::new(out_columns.iter().cloned());
        let null_right = vec![Value::Null; right.columns.len()];
        let null_left = vec![Value::Null; left.columns.len()];
        let mut right_matched = vec![false; right.rows.len()];
        for lrow in &left.rows {
            let mut matched = false;
            for (ri, rrow) in right.rows.iter().enumerate() {
                let combined: Vec<Value> = lrow.iter().chain(rrow.iter()).cloned().collect();
                let scope = Scope { columns: out_columns, row: &combined, outer };
                if self.eval_cpred(program, &scope, ctes, &cache)?.is_true() {
                    matched = true;
                    right_matched[ri] = true;
                    out.rows.push(combined);
                }
            }
            if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
                out.rows.push(lrow.iter().chain(null_right.iter()).cloned().collect());
            }
        }
        if matches!(kind, JoinKind::Right | JoinKind::Full) {
            for (ri, rrow) in right.rows.iter().enumerate() {
                if !right_matched[ri] {
                    out.rows.push(null_left.iter().chain(rrow.iter()).cloned().collect());
                }
            }
        }
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn group_by_compiled(
        &self,
        input: &Table,
        keys: &[CExpr],
        items: &[CGroupExpr],
        having: Option<&CGroupPred>,
        out_columns: &[String],
        ctes: &CteEnv,
        outer: Option<&Scope<'_>>,
    ) -> Result<Table> {
        let mut out = Table::new(out_columns.iter().cloned());
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (ri, row) in input.rows.iter().enumerate() {
            let scope = Scope { columns: &input.columns, row, outer };
            let key: Vec<Value> =
                keys.iter().map(|p| self.eval_cexpr(p, &scope, ctes)).collect::<Result<_>>()?;
            if !groups.contains_key(&key) {
                order.push(key.clone());
            }
            groups.entry(key).or_default().push(ri);
        }
        // SQL returns a single row for aggregate queries without GROUP BY
        // even when the input is empty.
        if keys.is_empty() && input.rows.is_empty() {
            order.push(Vec::new());
            groups.insert(Vec::new(), Vec::new());
        }
        let cache = match having {
            Some(p) => self.cache_cgroup_subqueries(p, ctes),
            None => SubqCache::new(),
        };
        for key in order {
            let members = &groups[&key];
            let rows: Vec<&Vec<Value>> = members.iter().map(|&i| &input.rows[i]).collect();
            if let Some(p) = having {
                if !self.eval_cgroup_pred(p, &rows, &input.columns, ctes, outer, &cache)?.is_true()
                {
                    continue;
                }
            }
            let mut new_row = Vec::with_capacity(items.len());
            for p in items {
                new_row.push(self.eval_cgroup_expr(p, &rows, &input.columns, ctes, outer)?);
            }
            out.rows.push(new_row);
        }
        Ok(out)
    }
}

/// Three-valued tuple membership of `lhs` in the rows of `table` (the
/// semantics of `(E1, ..., En) IN (SELECT ...)`), shared by the interpreted
/// and compiled predicate runtimes.
fn in_membership(lhs: &[Value], table: &Table) -> Result<Truth> {
    if table.arity() != lhs.len() {
        return Err(Error::eval(format!(
            "IN subquery arity mismatch: {} vs {}",
            table.arity(),
            lhs.len()
        )));
    }
    let mut truth = Truth::False;
    for row in &table.rows {
        let mut row_truth = Truth::True;
        for (l, r) in lhs.iter().zip(row.iter()) {
            row_truth = row_truth.and(l.sql_eq(r));
        }
        truth = truth.or(row_truth);
        if truth.is_true() {
            return Ok(Truth::True);
        }
    }
    Ok(truth)
}

fn concat_union(mut a: Table, b: Table, dedup: bool) -> Result<Table> {
    if a.arity() != b.arity() {
        return Err(Error::eval(format!("UNION arity mismatch: {} vs {}", a.arity(), b.arity())));
    }
    a.rows.extend(b.rows);
    Ok(if dedup { a.dedup() } else { a })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use graphiti_relational::{Constraint, RelSchema, Relation};

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    fn s(x: &str) -> Value {
        Value::str(x)
    }

    /// The relational instance from Figure 3b of the paper.
    fn semmed_instance() -> RelInstance {
        let mut inst = RelInstance::new();
        inst.insert_table(
            "Concept",
            Table::with_rows(
                ["CID", "NAME"],
                vec![vec![v(1), s("Atropine")], vec![v(2), s("Aspirin")]],
            ),
        );
        inst.insert_table(
            "Cs",
            Table::with_rows(["CID", "CSID"], vec![vec![v(1), v(0)], vec![v(1), v(1)]]),
        );
        inst.insert_table(
            "Pa",
            Table::with_rows(["PID", "CSID"], vec![vec![v(0), v(0)], vec![v(1), v(1)]]),
        );
        inst.insert_table(
            "Sp",
            Table::with_rows(
                ["SPID", "SID", "PID"],
                vec![vec![v(0), v(0), v(0)], vec![v(1), v(0), v(1)]],
            ),
        );
        inst.insert_table(
            "Sentence",
            Table::with_rows(["SID", "PMID"], vec![vec![v(0), v(0)], vec![v(1), v(0)]]),
        );
        inst
    }

    fn emp_instance() -> RelInstance {
        let mut inst = RelInstance::new();
        inst.insert_table(
            "emp",
            Table::with_rows(["id", "name"], vec![vec![v(1), s("A")], vec![v(2), s("B")]]),
        );
        inst.insert_table(
            "dept",
            Table::with_rows(["dnum", "dname"], vec![vec![v(1), s("CS")], vec![v(2), s("EE")]]),
        );
        inst.insert_table(
            "work_at",
            Table::with_rows(
                ["wid", "SRC", "TGT"],
                vec![vec![v(10), v(1), v(1)], vec![v(11), v(2), v(1)]],
            ),
        );
        inst
    }

    fn run(sql: &str, inst: &RelInstance) -> Table {
        let q = parse_query(sql).unwrap();
        eval_query(inst, &q).unwrap()
    }

    #[test]
    fn motivating_sql_query_returns_count_2() {
        // Figure 4a / 4b: the SQL query returns (1, 2) on the Figure 3b
        // instance.
        let t = run(
            "SELECT c2.CID, Count(*) FROM Cs AS c2, Pa AS p2, Sp AS s2 \
             WHERE s2.PID = p2.PID AND p2.CSID = c2.CSID AND s2.SID IN ( \
               SELECT s1.SID FROM Cs AS c1, Pa AS p1, Sp AS s1 \
               WHERE s1.PID = p1.PID AND p1.CSID = c1.CSID AND c1.CID = 1 ) \
             GROUP BY CID",
            &semmed_instance(),
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows[0], vec![v(1), v(2)]);
    }

    #[test]
    fn simple_projection_and_selection() {
        let t = run("SELECT e.name FROM emp AS e WHERE e.id = 1", &emp_instance());
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows[0][0], s("A"));
    }

    #[test]
    fn inner_join_and_qualified_columns() {
        let t = run(
            "SELECT e.name, d.dname FROM emp AS e \
             JOIN work_at AS w ON e.id = w.SRC JOIN dept AS d ON w.TGT = d.dnum",
            &emp_instance(),
        );
        assert_eq!(t.len(), 2);
        assert!(t.rows.iter().all(|r| r[1] == s("CS")));
    }

    #[test]
    fn left_join_keeps_unmatched_rows() {
        let mut inst = emp_instance();
        inst.insert_table(
            "work_at",
            Table::with_rows(["wid", "SRC", "TGT"], vec![vec![v(10), v(1), v(1)]]),
        );
        let t = run(
            "SELECT e.name, d.dname FROM emp AS e \
             LEFT JOIN work_at AS w ON e.id = w.SRC LEFT JOIN dept AS d ON w.TGT = d.dnum",
            &inst,
        );
        assert_eq!(t.len(), 2);
        let b = t.rows.iter().find(|r| r[0] == s("B")).unwrap();
        assert_eq!(b[1], Value::Null);
    }

    #[test]
    fn right_and_full_joins() {
        let mut inst = emp_instance();
        inst.insert_table(
            "work_at",
            Table::with_rows(["wid", "SRC", "TGT"], vec![vec![v(10), v(1), v(1)]]),
        );
        let right = run(
            "SELECT e.name, d.dname FROM work_at AS w \
             RIGHT JOIN dept AS d ON w.TGT = d.dnum LEFT JOIN emp AS e ON w.SRC = e.id",
            &inst,
        );
        // Both departments survive the right join; EE has no work_at row.
        assert_eq!(right.len(), 2);
        let full =
            run("SELECT e.id, w.wid FROM emp AS e FULL JOIN work_at AS w ON e.id = w.SRC", &inst);
        assert_eq!(full.len(), 2);
    }

    #[test]
    fn group_by_having_and_aggregates() {
        let t = run(
            "SELECT d.dname, Count(*) AS cnt FROM emp AS e \
             JOIN work_at AS w ON e.id = w.SRC JOIN dept AS d ON w.TGT = d.dnum \
             GROUP BY d.dname HAVING Count(*) >= 2",
            &emp_instance(),
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows[0], vec![s("CS"), v(2)]);
    }

    #[test]
    fn aggregates_without_group_by() {
        let t = run("SELECT Count(*), Sum(e.id), Avg(e.id) FROM emp AS e", &emp_instance());
        assert_eq!(t.rows[0], vec![v(2), v(3), Value::Float(1.5)]);
        let empty = run("SELECT Count(*) FROM emp AS e WHERE e.id > 100", &emp_instance());
        assert_eq!(empty.rows[0], vec![v(0)]);
    }

    #[test]
    fn ctes_and_nested_references() {
        let t = run(
            "WITH T1 AS (SELECT e.id AS eid, e.name AS ename FROM emp AS e), \
                  T2 AS (SELECT eid FROM T1) \
             SELECT T2.eid FROM T2 ORDER BY eid DESC",
            &emp_instance(),
        );
        assert_eq!(t.rows, vec![vec![v(2)], vec![v(1)]]);
    }

    #[test]
    fn union_and_union_all() {
        let t =
            run("SELECT e.name FROM emp AS e UNION SELECT e.name FROM emp AS e", &emp_instance());
        assert_eq!(t.len(), 2);
        let t2 = run(
            "SELECT e.name FROM emp AS e UNION ALL SELECT e.name FROM emp AS e",
            &emp_instance(),
        );
        assert_eq!(t2.len(), 4);
    }

    #[test]
    fn distinct_projection() {
        let t = run("SELECT DISTINCT d.dname FROM dept AS d, emp AS e", &emp_instance());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn correlated_exists_subquery() {
        let t = run(
            "SELECT d.dname FROM dept AS d WHERE EXISTS ( \
               SELECT w.wid FROM work_at AS w WHERE w.TGT = d.dnum)",
            &emp_instance(),
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows[0][0], s("CS"));
    }

    #[test]
    fn in_list_and_null_semantics() {
        let mut inst = emp_instance();
        inst.insert_table(
            "emp",
            Table::with_rows(
                ["id", "name"],
                vec![vec![v(1), s("A")], vec![v(2), Value::Null], vec![v(3), s("C")]],
            ),
        );
        // NULL name is neither equal nor unequal to 'A': the row is dropped.
        let t = run("SELECT e.id FROM emp AS e WHERE e.name IN ('A', 'C')", &inst);
        assert_eq!(t.len(), 2);
        let t2 = run("SELECT e.id FROM emp AS e WHERE e.name IS NULL", &inst);
        assert_eq!(t2.len(), 1);
        assert_eq!(t2.rows[0][0], v(2));
    }

    #[test]
    fn arithmetic_and_implicit_alias() {
        let t = run("SELECT e.id + 10 AS shifted FROM emp AS e ORDER BY shifted", &emp_instance());
        assert_eq!(t.columns, vec!["shifted".to_string()]);
        assert_eq!(t.rows, vec![vec![v(11)], vec![v(12)]]);
    }

    #[test]
    fn order_by_desc_on_aggregate_alias() {
        let t = run(
            "SELECT d.dname AS name, Count(*) AS cnt FROM dept AS d, emp AS e GROUP BY d.dname ORDER BY name DESC",
            &emp_instance(),
        );
        assert_eq!(t.rows[0][0], s("EE"));
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let q = parse_query("SELECT x.a FROM missing AS x").unwrap();
        assert!(eval_query(&emp_instance(), &q).is_err());
        let q2 = parse_query("SELECT e.nonexistent FROM emp AS e").unwrap();
        assert!(eval_query(&emp_instance(), &q2).is_err());
    }

    #[test]
    fn validates_against_schema_helpers() {
        // Sanity-check that the fixture instance satisfies a matching schema,
        // so later pipeline tests can rely on it.
        let schema = RelSchema::new()
            .with_relation(Relation::new("emp", ["id", "name"]))
            .with_relation(Relation::new("dept", ["dnum", "dname"]))
            .with_relation(Relation::new("work_at", ["wid", "SRC", "TGT"]))
            .with_constraint(Constraint::pk("emp", "id"))
            .with_constraint(Constraint::fk("work_at", "SRC", "emp", "id"));
        assert!(emp_instance().validate(&schema).is_ok());
    }

    #[test]
    fn compiled_plans_agree_with_both_engines() {
        // Every feature the evaluator tests exercise, replayed through the
        // standalone plan path: compile once, evaluate, and compare against
        // both the per-operator compiled engine and the naive interpreter.
        let queries = [
            "SELECT e.name FROM emp AS e WHERE e.id = 1",
            "SELECT e.name, d.dname FROM emp AS e \
             JOIN work_at AS w ON e.id = w.SRC JOIN dept AS d ON w.TGT = d.dnum",
            "SELECT e.name, d.dname FROM emp AS e \
             LEFT JOIN work_at AS w ON e.id = w.SRC LEFT JOIN dept AS d ON w.TGT = d.dnum",
            "SELECT e.id, w.wid FROM emp AS e FULL JOIN work_at AS w ON e.id = w.SRC",
            "SELECT e.name, d.dname FROM work_at AS w \
             RIGHT JOIN dept AS d ON w.TGT = d.dnum LEFT JOIN emp AS e ON w.SRC = e.id",
            "SELECT d.dname, Count(*) AS cnt FROM emp AS e \
             JOIN work_at AS w ON e.id = w.SRC JOIN dept AS d ON w.TGT = d.dnum \
             GROUP BY d.dname HAVING Count(*) >= 2",
            "SELECT Count(*), Sum(e.id), Avg(e.id) FROM emp AS e",
            "SELECT Count(*) FROM emp AS e WHERE e.id > 100",
            "WITH T1 AS (SELECT e.id AS eid, e.name AS ename FROM emp AS e), \
                  T2 AS (SELECT eid FROM T1) \
             SELECT T2.eid FROM T2 ORDER BY eid DESC",
            "SELECT e.name FROM emp AS e UNION SELECT e.name FROM emp AS e",
            "SELECT e.name FROM emp AS e UNION ALL SELECT e.name FROM emp AS e",
            "SELECT DISTINCT d.dname FROM dept AS d, emp AS e",
            "SELECT d.dname FROM dept AS d WHERE EXISTS ( \
               SELECT w.wid FROM work_at AS w WHERE w.TGT = d.dnum)",
            "SELECT e.id FROM emp AS e WHERE e.name IN ('A', 'C')",
            "SELECT e.id + 10 AS shifted FROM emp AS e ORDER BY shifted",
            "SELECT d.dname AS name, Count(*) AS cnt FROM dept AS d, emp AS e \
             GROUP BY d.dname ORDER BY name DESC",
            "SELECT e.name, d.dname FROM emp AS e, work_at AS w, dept AS d \
             WHERE e.id = w.SRC AND w.TGT = d.dnum AND e.id >= 1",
        ];
        let inst = emp_instance();
        for text in queries {
            let q = parse_query(text).unwrap();
            let plan = crate::plan::compile_query(&inst, &q)
                .unwrap_or_else(|e| panic!("`{text}` failed to plan: {e}"));
            let planned = eval_compiled(&inst, &plan)
                .unwrap_or_else(|e| panic!("`{text}` failed compiled eval: {e}"));
            let fast = eval_query(&inst, &q).unwrap();
            let slow = eval_query_unoptimized(&inst, &q).unwrap();
            // The plan path shares the optimizer with `eval_query`, so the
            // results must be *identical*, not just bag-equivalent.
            assert_eq!(planned, fast, "plan vs eval_query differ on `{text}`");
            assert!(planned.equivalent(&slow), "plan vs naive differ on `{text}`");
        }
        // The motivating correlated-subquery query on the semmed instance.
        let semmed = semmed_instance();
        let text = "SELECT c2.CID, Count(*) FROM Cs AS c2, Pa AS p2, Sp AS s2 \
             WHERE s2.PID = p2.PID AND p2.CSID = c2.CSID AND s2.SID IN ( \
               SELECT s1.SID FROM Cs AS c1, Pa AS p1, Sp AS s1 \
               WHERE s1.PID = p1.PID AND p1.CSID = c1.CSID AND c1.CID = 1 ) \
             GROUP BY CID";
        let q = parse_query(text).unwrap();
        let plan = crate::plan::compile_query(&semmed, &q).unwrap();
        assert_eq!(eval_compiled(&semmed, &plan).unwrap(), eval_query(&semmed, &q).unwrap());
    }

    #[test]
    fn compiled_plans_are_reusable_across_evaluations() {
        let inst = emp_instance();
        let q = parse_query("SELECT e.name FROM emp AS e WHERE e.id >= 1 ORDER BY e.name").unwrap();
        let plan = crate::plan::compile_query(&inst, &q).unwrap();
        let first = eval_compiled(&inst, &plan).unwrap();
        let second = eval_compiled(&inst, &plan).unwrap();
        assert_eq!(first, second);
        assert_eq!(first.len(), 2);
    }

    #[test]
    fn hash_join_agrees_with_nested_loop() {
        // The same query evaluated optimized (hash joins) and unoptimized
        // (nested loops) must produce equivalent tables.
        let q = parse_query(
            "SELECT e.name, d.dname FROM emp AS e, work_at AS w, dept AS d \
             WHERE e.id = w.SRC AND w.TGT = d.dnum AND e.id >= 1",
        )
        .unwrap();
        let inst = emp_instance();
        let fast = eval_query(&inst, &q).unwrap();
        let slow = eval_query_unoptimized(&inst, &q).unwrap();
        assert!(fast.equivalent(&slow));
        assert_eq!(fast.len(), 2);
    }
}
