//! Vectorized (columnar, batch-at-a-time) execution of compiled plans.
//!
//! [`eval_compiled`](crate::eval::eval_compiled) interprets a
//! [`CompiledQuery`] row at a time: every operator materializes
//! `Vec<Vec<Value>>` rows, every predicate pays per-row program dispatch,
//! and every join/group key is a cloned `Vec<Value>`.  This module executes
//! the *same* plan over [`ColumnTable`]s instead:
//!
//! * **scans** hand out `Arc`-shared typed columns and reuse the plan's
//!   statically-computed requalified layout — no row cloning, no per-scan
//!   name formatting;
//! * **selections** evaluate the predicate column-at-a-time into a
//!   selection vector, then gather the survivors of each typed column;
//! * **projections** evaluate each item program as a column kernel
//!   (constants stay constants until materialization);
//! * **hash joins** build and probe on hashed key *columns* — a `u64`
//!   bucket per build row, verified against the typed columns — instead of
//!   hashing cloned `Vec<Value>` row keys, and emit their output as one
//!   gather per column;
//! * **GROUP BY** evaluates key programs vectorized, buckets rows by
//!   column hash, and folds aggregates with typed kernels over member
//!   indexes.
//!
//! Semantics are *identical* to the row engine by construction: each kernel
//! replays the corresponding `Value` operation (including its
//! quirks — numeric comparison through `f64`, wrapping integer arithmetic,
//! `NULL`-skipping aggregate folds), and any program a kernel cannot run
//! column-at-a-time (predicates containing subqueries) falls back to the
//! row engine's own operator implementation for exactly that operator.
//! The differential proptests in `graphiti-testkit` and the corpus sweep
//! in `bench_pr4` pin the equivalence down (Definition 4.4).

use crate::ast::JoinKind;
use crate::compile::{CExpr, CGroupExpr, CGroupPred, CPred};
use crate::eval::{CteEnv, Evaluator, Scope, SubqCache};
use crate::plan::{CompiledQuery, PlanNode, PlanOp};
use graphiti_common::{AggKind, BinArith, CmpOp, Error, Result, Truth, Value};
use graphiti_obs::profile::{StageProfile, StageSink};
use graphiti_relational::{
    Bitmap, Column, ColumnData, ColumnInstance, ColumnTable, RelInstance, Table, NULL_IDX,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::Hasher;
use std::sync::Arc;

/// Executes a pre-compiled plan against the columnar image of an instance.
///
/// `instance` is the row-oriented instance the plan was compiled against;
/// it backs subquery re-entry (subqueries evaluate through the row engine,
/// exactly as `eval_compiled` does) and any table missing from `columnar`.
/// Results are identical to [`eval_compiled`](crate::eval::eval_compiled).
pub fn eval_vectorized(
    instance: &RelInstance,
    columnar: &ColumnInstance,
    plan: &CompiledQuery,
) -> Result<Table> {
    let ev = VecEvaluator { rowwise: Evaluator { instance, compiled: true }, columnar, prof: None };
    let out = ev.eval(&plan.root, &Ctes::default())?;
    Ok(out.to_table())
}

/// [`eval_vectorized`] with per-operator profiling: every plan node
/// reports its wall time (inclusive of children), rows in/out, and —
/// for vectorized selections — the selection-vector density.  Stages
/// come back in completion (post) order; results are identical to the
/// unprofiled path.
pub fn eval_vectorized_profiled(
    instance: &RelInstance,
    columnar: &ColumnInstance,
    plan: &CompiledQuery,
) -> Result<(Table, Vec<StageProfile>)> {
    let ev = VecEvaluator {
        rowwise: Evaluator { instance, compiled: true },
        columnar,
        prof: Some(std::cell::RefCell::new(StageSink::new())),
    };
    let out = ev.eval(&plan.root, &Ctes::default())?;
    let stages = ev.prof.expect("sink installed above").into_inner().finish();
    Ok((out.to_table(), stages))
}

/// CTE environment: definitions live in columnar form; the row-oriented
/// [`CteEnv`] that subquery fallbacks need (they re-enter the row
/// evaluator) is materialized lazily, on the first fallback, so
/// fully-vectorizable queries never pay a column-to-row conversion for
/// their CTEs.
#[derive(Default)]
struct Ctes {
    col: HashMap<String, ColumnTable>,
    row: std::cell::OnceCell<CteEnv>,
}

impl Clone for Ctes {
    fn clone(&self) -> Ctes {
        // Column payloads are Arc-shared (cheap); the lazily-built row
        // image is deliberately dropped — the extended environment would
        // invalidate it anyway.
        Ctes { col: self.col.clone(), row: std::cell::OnceCell::new() }
    }
}

impl Ctes {
    /// The row-oriented environment for fallbacks, built on first use.
    fn row(&self) -> &CteEnv {
        self.row.get_or_init(|| self.col.iter().map(|(k, v)| (k.clone(), v.to_table())).collect())
    }
}

struct VecEvaluator<'a> {
    rowwise: Evaluator<'a>,
    columnar: &'a ColumnInstance,
    /// Per-operator stage collection, installed by
    /// [`eval_vectorized_profiled`] (`None` costs one branch per node).
    prof: Option<std::cell::RefCell<StageSink>>,
}

/// The profile label of a plan operator.
fn op_name(op: &PlanOp) -> &'static str {
    match op {
        PlanOp::Scan { .. } => "scan",
        PlanOp::Rename { .. } => "rename",
        PlanOp::Select { .. } => "select",
        PlanOp::Project { .. } => "project",
        PlanOp::Cross { .. } => "cross",
        PlanOp::HashJoin { .. } => "hash_join",
        PlanOp::LoopJoin { .. } => "loop_join",
        PlanOp::Union { .. } => "union",
        PlanOp::GroupBy { .. } => "group_by",
        PlanOp::With { .. } => "with",
        PlanOp::OrderBy { .. } => "order_by",
    }
}

// ------------------------------------------------------------ vector types

/// An expression result over a batch: either one constant for every row or
/// a materialized column.
#[derive(Clone)]
enum VCol {
    Const(Value),
    Col(Column),
}

impl VCol {
    fn materialize(&self, len: usize) -> Column {
        match self {
            VCol::Const(v) => Column::splat(v, len),
            VCol::Col(c) => c.clone(),
        }
    }

    #[inline]
    fn value(&self, i: usize) -> Value {
        match self {
            VCol::Const(v) => v.clone(),
            VCol::Col(c) => c.value(i),
        }
    }
}

/// Typed view used by the integer fast paths: a constant (possibly `NULL`)
/// or a slice + validity.
enum IntView<'a> {
    Const(Option<i64>),
    Slice(&'a [i64], Option<&'a Bitmap>),
}

impl<'a> IntView<'a> {
    fn of(v: &'a VCol) -> Option<IntView<'a>> {
        match v {
            VCol::Const(Value::Int(x)) => Some(IntView::Const(Some(*x))),
            VCol::Const(Value::Null) => Some(IntView::Const(None)),
            VCol::Col(c) => match c.data() {
                ColumnData::Int(xs) => Some(IntView::Slice(xs, c.validity())),
                _ => None,
            },
            _ => None,
        }
    }

    #[inline]
    fn get(&self, i: usize) -> Option<i64> {
        match self {
            IntView::Const(v) => *v,
            IntView::Slice(xs, validity) => match validity {
                Some(b) if !b.get(i) => None,
                _ => Some(xs[i]),
            },
        }
    }
}

// ------------------------------------------------------- vectorizability

/// Whether an expression program can run column-at-a-time.  Programs that
/// *error* uniformly (aggregates in scalar position, bare `*`, unresolved
/// outer references at the top level) are vectorizable — the kernel raises
/// the identical error iff at least one row exists, matching the row
/// engine.  Only subqueries force the row fallback.
fn expr_vectorizable(e: &CExpr) -> bool {
    match e {
        CExpr::Col(_) | CExpr::Value(_) | CExpr::Outer(_) | CExpr::ScalarAgg | CExpr::Star => true,
        CExpr::Arith(a, _, b) => expr_vectorizable(a) && expr_vectorizable(b),
        CExpr::Cast(p) => pred_vectorizable(p),
    }
}

/// Whether a predicate program can run column-at-a-time (no subqueries
/// anywhere, including under `Cast`).
fn pred_vectorizable(p: &CPred) -> bool {
    match p {
        CPred::Bool(_) => true,
        CPred::Cmp(a, _, b) => expr_vectorizable(a) && expr_vectorizable(b),
        CPred::IsNull(e) | CPred::InList(e, _) => expr_vectorizable(e),
        CPred::InQuery(..) | CPred::Exists(_) => false,
        CPred::And(a, b) | CPred::Or(a, b) => pred_vectorizable(a) && pred_vectorizable(b),
        CPred::Not(inner) => pred_vectorizable(inner),
    }
}

/// Whether a group-level expression can run through the group kernels:
/// aggregate inner expressions must be kernel-compatible (scalar,
/// first-row parts always evaluate row-wise on one row per group, so any
/// expression is fine there).
fn group_item_vectorizable(e: &CGroupExpr) -> bool {
    match e {
        CGroupExpr::CountStar | CGroupExpr::StarAgg | CGroupExpr::Scalar(_) => true,
        CGroupExpr::Agg(_, inner, _) => expr_vectorizable(inner),
        CGroupExpr::Arith(a, _, b) => group_item_vectorizable(a) && group_item_vectorizable(b),
    }
}

/// Whether a `GROUP BY` operator can run vectorized: key and aggregate
/// inner expressions must be kernel-compatible.  Scalar (first-row) parts
/// and `HAVING` subqueries always evaluate row-wise on one row per group,
/// so they never force the fallback.
fn group_vectorizable(keys: &[CExpr], items: &[CGroupExpr]) -> bool {
    keys.iter().all(expr_vectorizable) && items.iter().all(group_item_vectorizable)
}

fn having_agg_inners_vectorizable(p: &CGroupPred) -> bool {
    match p {
        CGroupPred::Bool(_) | CGroupPred::Subquery(_) => true,
        CGroupPred::Cmp(a, _, b) => group_item_vectorizable(a) && group_item_vectorizable(b),
        CGroupPred::IsNull(e) | CGroupPred::InList(e, _) => group_item_vectorizable(e),
        CGroupPred::And(a, b) | CGroupPred::Or(a, b) => {
            having_agg_inners_vectorizable(a) && having_agg_inners_vectorizable(b)
        }
        CGroupPred::Not(inner) => having_agg_inners_vectorizable(inner),
    }
}

// ---------------------------------------------------------------- executor

impl<'a> VecEvaluator<'a> {
    /// Evaluates one plan node, recording a profile stage when a sink
    /// is installed.  The stage's `rows_in` is derived structurally by
    /// the sink (children report their output to the enclosing frame).
    fn eval(&self, node: &PlanNode, ctes: &Ctes) -> Result<ColumnTable> {
        let Some(prof) = &self.prof else { return self.eval_node(node, ctes) };
        prof.borrow_mut().begin(op_name(&node.op));
        let out = self.eval_node(node, ctes);
        prof.borrow_mut().end(out.as_ref().map(|t| t.len() as u64).unwrap_or(0));
        out
    }

    fn eval_node(&self, node: &PlanNode, ctes: &Ctes) -> Result<ColumnTable> {
        match &node.op {
            PlanOp::Scan { name } => self.scan(name.as_str(), &node.columns, ctes),
            PlanOp::Rename { input, .. } => {
                let t = self.eval(input, ctes)?;
                Ok(t.with_column_names(Arc::clone(&node.columns)))
            }
            PlanOp::Select { input, program } => {
                let t = self.eval(input, ctes)?;
                self.select(&t, program, ctes)
            }
            PlanOp::Project { input, programs, distinct } => {
                let t = self.eval(input, ctes)?;
                self.project(&t, programs, *distinct, &node.columns, ctes)
            }
            PlanOp::Cross { left, right } => {
                let lt = self.eval(left, ctes)?;
                let rt = self.eval(right, ctes)?;
                let (mut li, mut ri) = (Vec::new(), Vec::new());
                li.reserve(lt.len() * rt.len());
                ri.reserve(lt.len() * rt.len());
                for l in 0..lt.len() as u32 {
                    for r in 0..rt.len() as u32 {
                        li.push(l);
                        ri.push(r);
                    }
                }
                Ok(combine_gather(&lt, &li, &rt, &ri, &node.columns))
            }
            PlanOp::HashJoin { left, right, kind, pairs, residual } => {
                let lt = self.eval(left, ctes)?;
                let rt = self.eval(right, ctes)?;
                self.hash_join(&lt, &rt, *kind, pairs, residual.as_ref(), &node.columns, ctes)
            }
            PlanOp::LoopJoin { left, right, kind, program } => {
                let lt = self.eval(left, ctes)?;
                let rt = self.eval(right, ctes)?;
                self.loop_join(&lt, &rt, *kind, program, &node.columns, ctes)
            }
            PlanOp::Union { left, right, dedup } => {
                let lt = self.eval(left, ctes)?;
                let rt = self.eval(right, ctes)?;
                if lt.arity() != rt.arity() {
                    return Err(Error::eval(format!(
                        "UNION arity mismatch: {} vs {}",
                        lt.arity(),
                        rt.arity()
                    )));
                }
                let cols: Vec<Column> =
                    lt.cols().iter().zip(rt.cols().iter()).map(|(a, b)| a.concat(b)).collect();
                let len = lt.len() + rt.len();
                let out = ColumnTable::from_columns(Arc::clone(&node.columns), cols, len);
                Ok(if *dedup {
                    let keep = distinct_indices(out.cols(), out.len());
                    out.gather(&keep)
                } else {
                    out
                })
            }
            PlanOp::GroupBy { input, keys, items, having } => {
                let t = self.eval(input, ctes)?;
                self.group_by(&t, keys, items, having.as_ref(), &node.columns, ctes)
            }
            PlanOp::With { name, definition, body } => {
                let def = self.eval(definition, ctes)?;
                // Only the columnar image is stored; the row-oriented env
                // materializes lazily if a fallback ever needs it.
                let mut extended = ctes.clone();
                extended.col.insert(name.as_str().to_string(), def);
                self.eval(body, &extended)
            }
            PlanOp::OrderBy { input, keys } => {
                let t = self.eval(input, ctes)?;
                Ok(order_by(&t, keys))
            }
        }
    }

    /// Base-table / CTE scan.  The plan's layout already carries the
    /// requalified names, so a scan is column `Arc` bumps plus one name
    /// vector share.
    fn scan(&self, name: &str, columns: &Arc<Vec<String>>, ctes: &Ctes) -> Result<ColumnTable> {
        if let Some(t) = ctes
            .col
            .get(name)
            .or_else(|| ctes.col.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v))
        {
            return Ok(t.with_column_names(Arc::clone(columns)));
        }
        if let Some(t) = self.columnar.table(name) {
            return Ok(t.with_column_names(Arc::clone(columns)));
        }
        // A table the columnar image does not carry (should not happen for
        // engine-built snapshots): convert on the fly.
        match self.rowwise.instance.table(name) {
            Some(t) => Ok(ColumnTable::from_table(t).with_column_names(Arc::clone(columns))),
            None => Err(Error::eval(format!("unknown table `{name}`"))),
        }
    }

    fn select(&self, t: &ColumnTable, program: &CPred, ctes: &Ctes) -> Result<ColumnTable> {
        if t.is_empty() {
            return Ok(t.clone());
        }
        if pred_vectorizable(program) {
            let mask = self.eval_pred_vec(program, t, ctes)?;
            let keep: Vec<u32> =
                (0..t.len()).filter(|&i| mask[i] == Truth::True).map(|i| i as u32).collect();
            if let Some(prof) = &self.prof {
                prof.borrow_mut().set_density(keep.len() as f64 / t.len() as f64);
            }
            return Ok(t.gather(&keep));
        }
        // Subquery predicate: run the row engine's own select over this
        // operator.
        let rows = self.rowwise.select_compiled(&t.to_table(), program, ctes.row(), None)?;
        Ok(ColumnTable::from_table(&rows).with_column_names(Arc::clone(t.columns())))
    }

    fn project(
        &self,
        t: &ColumnTable,
        programs: &[CExpr],
        distinct: bool,
        out_columns: &Arc<Vec<String>>,
        ctes: &Ctes,
    ) -> Result<ColumnTable> {
        if !programs.iter().all(expr_vectorizable) {
            let rows = self.rowwise.project_compiled(
                &t.to_table(),
                programs,
                distinct,
                out_columns.as_slice(),
                ctes.row(),
                None,
            )?;
            return Ok(ColumnTable::from_table(&rows).with_column_names(Arc::clone(out_columns)));
        }
        let mut cols = Vec::with_capacity(programs.len());
        for p in programs {
            let v = self.eval_expr_vec(p, t, ctes)?;
            cols.push(v.materialize(t.len()));
        }
        let out = ColumnTable::from_columns(Arc::clone(out_columns), cols, t.len());
        Ok(if distinct {
            let keep = distinct_indices(out.cols(), out.len());
            out.gather(&keep)
        } else {
            out
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn hash_join(
        &self,
        left: &ColumnTable,
        right: &ColumnTable,
        kind: JoinKind,
        pairs: &[(usize, usize)],
        residual: Option<&CPred>,
        out_columns: &Arc<Vec<String>>,
        ctes: &Ctes,
    ) -> Result<ColumnTable> {
        // Build: bucket right rows by the hash of their key columns,
        // skipping rows with a NULL key (SQL equi-joins never match NULL).
        let mut index: HashMap<u64, Vec<u32>> = HashMap::with_capacity(right.len());
        'rows: for ri in 0..right.len() {
            for &(_, rcol) in pairs {
                if right.col(rcol).is_null(ri) {
                    continue 'rows;
                }
            }
            index
                .entry(join_key_hash(right, pairs.iter().map(|p| p.1), ri))
                .or_default()
                .push(ri as u32);
        }
        // Probe: collect candidate (left, right) pairs in left-major order,
        // verifying bucket hits against the typed key columns.
        let mut cand_left: Vec<u32> = Vec::new();
        let mut cand_right: Vec<u32> = Vec::new();
        // Candidate span of each left row: `spans[l] = (start, end)`.
        let mut spans: Vec<(u32, u32)> = Vec::with_capacity(left.len());
        'probe: for li in 0..left.len() {
            let start = cand_left.len() as u32;
            for &(lcol, _) in pairs {
                if left.col(lcol).is_null(li) {
                    spans.push((start, start));
                    continue 'probe;
                }
            }
            let h = join_key_hash(left, pairs.iter().map(|p| p.0), li);
            if let Some(bucket) = index.get(&h) {
                for &ri in bucket {
                    let eq = pairs.iter().all(|&(lcol, rcol)| {
                        left.col(lcol).strict_eq_at(li, right.col(rcol), ri as usize)
                    });
                    if eq {
                        cand_left.push(li as u32);
                        cand_right.push(ri);
                    }
                }
            }
            spans.push((start, cand_left.len() as u32));
        }
        // Residual filter over the candidate batch, evaluated once,
        // column-at-a-time (or row-wise for the rare non-kernel residual).
        let mask: Option<Vec<Truth>> = match residual {
            None => None,
            Some(p) => {
                let cand = combine_gather(left, &cand_left, right, &cand_right, out_columns);
                Some(self.residual_mask(p, &cand, ctes)?)
            }
        };
        // Emit in the row engine's order: each left row's surviving
        // candidates, then its null-extension if LEFT JOIN and none
        // survived.
        let mut out_left: Vec<u32> = Vec::with_capacity(cand_left.len());
        let mut out_right: Vec<u32> = Vec::with_capacity(cand_right.len());
        for (li, &(start, end)) in spans.iter().enumerate() {
            let mut matched = false;
            for c in start..end {
                let keep = mask.as_ref().is_none_or(|m| m[c as usize] == Truth::True);
                if keep {
                    matched = true;
                    out_left.push(cand_left[c as usize]);
                    out_right.push(cand_right[c as usize]);
                }
            }
            if !matched && kind == JoinKind::Left {
                out_left.push(li as u32);
                out_right.push(NULL_IDX);
            }
        }
        Ok(combine_gather(left, &out_left, right, &out_right, out_columns))
    }

    fn residual_mask(&self, p: &CPred, cand: &ColumnTable, ctes: &Ctes) -> Result<Vec<Truth>> {
        if cand.is_empty() {
            return Ok(Vec::new());
        }
        if pred_vectorizable(p) {
            return self.eval_pred_vec(p, cand, ctes);
        }
        // The planner only hash-joins subquery-free predicates, but `Cast`
        // can smuggle one in; mirror the row engine (empty subquery cache).
        let table = cand.to_table();
        let cache = SubqCache::new();
        let mut out = Vec::with_capacity(table.rows.len());
        for row in &table.rows {
            let scope = Scope { columns: &table.columns, row, outer: None };
            out.push(self.rowwise.eval_cpred(p, &scope, ctes.row(), &cache)?);
        }
        Ok(out)
    }

    fn loop_join(
        &self,
        left: &ColumnTable,
        right: &ColumnTable,
        kind: JoinKind,
        program: &CPred,
        out_columns: &Arc<Vec<String>>,
        ctes: &Ctes,
    ) -> Result<ColumnTable> {
        if !pred_vectorizable(program) {
            let rows = self.rowwise.loop_join_compiled(
                &left.to_table(),
                &right.to_table(),
                kind,
                program,
                out_columns.as_slice(),
                ctes.row(),
                None,
            )?;
            return Ok(ColumnTable::from_table(&rows).with_column_names(Arc::clone(out_columns)));
        }
        // Evaluate the predicate vectorized over the pair space (the row
        // engine touches every pair too), but in bounded *chunks* of whole
        // left rows: peak memory stays O(chunk) instead of O(|L|·|R|),
        // while output order is preserved — per left row its matches, with
        // null-extended rows interleaved/appended exactly like the row
        // engine.
        const PAIR_CHUNK: usize = 1 << 16;
        let (l, r) = (left.len(), right.len());
        let rows_per_chunk = (PAIR_CHUNK / r.max(1)).max(1);
        let mut out_left: Vec<u32> = Vec::new();
        let mut out_right: Vec<u32> = Vec::new();
        let mut right_matched = vec![false; r];
        let mut chunk_start = 0usize;
        while chunk_start < l {
            let chunk_end = (chunk_start + rows_per_chunk).min(l);
            let mut pair_left: Vec<u32> = Vec::with_capacity((chunk_end - chunk_start) * r);
            let mut pair_right: Vec<u32> = Vec::with_capacity((chunk_end - chunk_start) * r);
            for li in chunk_start..chunk_end {
                for ri in 0..r as u32 {
                    pair_left.push(li as u32);
                    pair_right.push(ri);
                }
            }
            let pairs_tbl = combine_gather(left, &pair_left, right, &pair_right, out_columns);
            let mask = if pairs_tbl.is_empty() {
                Vec::new()
            } else {
                self.eval_pred_vec(program, &pairs_tbl, ctes)?
            };
            for li in chunk_start..chunk_end {
                let base = (li - chunk_start) * r;
                let mut matched = false;
                for ri in 0..r {
                    if mask[base + ri] == Truth::True {
                        matched = true;
                        right_matched[ri] = true;
                        out_left.push(li as u32);
                        out_right.push(ri as u32);
                    }
                }
                if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
                    out_left.push(li as u32);
                    out_right.push(NULL_IDX);
                }
            }
            chunk_start = chunk_end;
        }
        if matches!(kind, JoinKind::Right | JoinKind::Full) {
            for (ri, hit) in right_matched.iter().enumerate() {
                if !hit {
                    out_left.push(NULL_IDX);
                    out_right.push(ri as u32);
                }
            }
        }
        Ok(combine_gather(left, &out_left, right, &out_right, out_columns))
    }

    #[allow(clippy::too_many_arguments)]
    fn group_by(
        &self,
        input: &ColumnTable,
        keys: &[CExpr],
        items: &[CGroupExpr],
        having: Option<&CGroupPred>,
        out_columns: &Arc<Vec<String>>,
        ctes: &Ctes,
    ) -> Result<ColumnTable> {
        if !group_vectorizable(keys, items) || !having.is_none_or(having_agg_inners_vectorizable) {
            let rows = self.rowwise.group_by_compiled(
                &input.to_table(),
                keys,
                items,
                having,
                out_columns.as_slice(),
                ctes.row(),
                None,
            )?;
            return Ok(ColumnTable::from_table(&rows).with_column_names(Arc::clone(out_columns)));
        }
        // Vectorized key evaluation, then hash-bucketed grouping in
        // first-seen order (matching the row engine's insertion order).
        let key_cols: Vec<Column> = keys
            .iter()
            .map(|k| Ok(self.eval_expr_vec(k, input, ctes)?.materialize(input.len())))
            .collect::<Result<_>>()?;
        let mut groups: Vec<Vec<u32>> = Vec::new();
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        for i in 0..input.len() {
            let mut h = DefaultHasher::new();
            for kc in &key_cols {
                kc.hash_value_into(i, &mut h);
            }
            let bucket = buckets.entry(h.finish()).or_default();
            let gid = bucket.iter().copied().find(|&g| {
                let rep = groups[g as usize][0] as usize;
                key_cols.iter().all(|kc| kc.strict_eq_at(i, kc, rep))
            });
            match gid {
                Some(g) => groups[g as usize].push(i as u32),
                None => {
                    bucket.push(groups.len() as u32);
                    groups.push(vec![i as u32]);
                }
            }
        }
        // SQL returns a single row for aggregate queries without GROUP BY
        // even when the input is empty.
        if keys.is_empty() && input.is_empty() {
            groups.push(Vec::new());
        }
        // HAVING over all groups (the row engine also evaluates it per
        // group before touching any item program).
        let survivors: Vec<usize> = match having {
            None => (0..groups.len()).collect(),
            Some(p) => {
                let cache = self.rowwise.cache_cgroup_subqueries(p, ctes.row());
                let truths = self.eval_group_pred_vec(p, input, &groups, ctes, &cache)?;
                (0..groups.len()).filter(|&g| truths[g] == Truth::True).collect()
            }
        };
        // Gather the surviving members into one batch so item kernels never
        // evaluate a row the row engine would have skipped (its item
        // programs only ever see groups that passed HAVING).
        let mut member_idx: Vec<u32> = Vec::new();
        let mut surv_groups: Vec<Vec<u32>> = Vec::with_capacity(survivors.len());
        for &g in &survivors {
            let start = member_idx.len() as u32;
            member_idx.extend_from_slice(&groups[g]);
            surv_groups.push((start..member_idx.len() as u32).collect());
        }
        let batch = input.gather(&member_idx);
        let mut out_cols = Vec::with_capacity(items.len());
        for item in items {
            let per_group = self.eval_group_expr_vec(item, &batch, &surv_groups, ctes)?;
            out_cols.push(Column::from_values(per_group));
        }
        Ok(ColumnTable::from_columns(Arc::clone(out_columns), out_cols, survivors.len()))
    }

    // ------------------------------------------------------ group kernels

    /// Evaluates a group-level expression for every group, returning one
    /// value per group.  Aggregate inner expressions run vectorized over
    /// the whole batch; scalar (first-row) parts re-enter the row
    /// evaluator on exactly the rows the row engine would evaluate.
    fn eval_group_expr_vec(
        &self,
        e: &CGroupExpr,
        batch: &ColumnTable,
        groups: &[Vec<u32>],
        ctes: &Ctes,
    ) -> Result<Vec<Value>> {
        match e {
            CGroupExpr::CountStar => {
                Ok(groups.iter().map(|g| Value::Int(g.len() as i64)).collect())
            }
            CGroupExpr::StarAgg => {
                if groups.is_empty() {
                    Ok(Vec::new())
                } else {
                    Err(Error::eval("`*` may only appear inside Count(*)"))
                }
            }
            CGroupExpr::Agg(kind, inner, distinct) => {
                let col = self.eval_expr_vec(inner, batch, ctes)?.materialize(batch.len());
                let mut out = Vec::with_capacity(groups.len());
                for members in groups {
                    out.push(if *distinct {
                        let mut seen: HashSet<Value> = HashSet::with_capacity(members.len());
                        let mut uniq: Vec<Value> = Vec::new();
                        for &m in members {
                            let v = col.value(m as usize);
                            if seen.insert(v.clone()) {
                                uniq.push(v);
                            }
                        }
                        kind.fold(uniq.iter())
                    } else {
                        fold_members(*kind, &col, members)
                    });
                }
                Ok(out)
            }
            CGroupExpr::Arith(a, op, b) => {
                let va = self.eval_group_expr_vec(a, batch, groups, ctes)?;
                let vb = self.eval_group_expr_vec(b, batch, groups, ctes)?;
                va.iter().zip(vb.iter()).map(|(x, y)| x.arith(*op, y)).collect()
            }
            CGroupExpr::Scalar(inner) => {
                let columns = batch.columns().as_slice();
                let mut out = Vec::with_capacity(groups.len());
                for members in groups {
                    match members.first() {
                        Some(&first) => {
                            let row = batch.row(first as usize);
                            let scope = Scope { columns, row: &row, outer: None };
                            out.push(self.rowwise.eval_cexpr(inner, &scope, ctes.row())?);
                        }
                        None => out.push(Value::Null),
                    }
                }
                Ok(out)
            }
        }
    }

    /// Evaluates a `HAVING` program for every group.
    fn eval_group_pred_vec(
        &self,
        p: &CGroupPred,
        batch: &ColumnTable,
        groups: &[Vec<u32>],
        ctes: &Ctes,
        cache: &SubqCache,
    ) -> Result<Vec<Truth>> {
        match p {
            CGroupPred::Bool(b) => Ok(vec![Truth::from_bool(*b); groups.len()]),
            CGroupPred::Cmp(a, op, b) => {
                let va = self.eval_group_expr_vec(a, batch, groups, ctes)?;
                let vb = self.eval_group_expr_vec(b, batch, groups, ctes)?;
                Ok(va.iter().zip(vb.iter()).map(|(x, y)| x.compare(*op, y)).collect())
            }
            CGroupPred::IsNull(e) => {
                let v = self.eval_group_expr_vec(e, batch, groups, ctes)?;
                Ok(v.iter().map(|x| Truth::from_bool(x.is_null())).collect())
            }
            CGroupPred::InList(e, vs) => {
                let v = self.eval_group_expr_vec(e, batch, groups, ctes)?;
                Ok(v.iter()
                    .map(|x| {
                        let mut truth = Truth::False;
                        for candidate in vs {
                            truth = truth.or(x.sql_eq(candidate));
                        }
                        truth
                    })
                    .collect())
            }
            CGroupPred::And(a, b) => {
                let va = self.eval_group_pred_vec(a, batch, groups, ctes, cache)?;
                let vb = self.eval_group_pred_vec(b, batch, groups, ctes, cache)?;
                Ok(va.into_iter().zip(vb).map(|(x, y)| x.and(y)).collect())
            }
            CGroupPred::Or(a, b) => {
                let va = self.eval_group_pred_vec(a, batch, groups, ctes, cache)?;
                let vb = self.eval_group_pred_vec(b, batch, groups, ctes, cache)?;
                Ok(va.into_iter().zip(vb).map(|(x, y)| x.or(y)).collect())
            }
            CGroupPred::Not(inner) => {
                let v = self.eval_group_pred_vec(inner, batch, groups, ctes, cache)?;
                Ok(v.into_iter().map(Truth::not).collect())
            }
            CGroupPred::Subquery(pred) => {
                let columns = batch.columns().as_slice();
                let mut out = Vec::with_capacity(groups.len());
                for members in groups {
                    match members.first() {
                        Some(&first) => {
                            let row = batch.row(first as usize);
                            let scope = Scope { columns, row: &row, outer: None };
                            out.push(self.rowwise.eval_pred(pred, &scope, ctes.row(), cache)?);
                        }
                        None => out.push(Truth::Unknown),
                    }
                }
                Ok(out)
            }
        }
    }

    // ------------------------------------------------- expression kernels

    /// Evaluates an expression program over a batch, column-at-a-time.
    /// Callers guarantee `expr_vectorizable(e)`.
    fn eval_expr_vec(&self, e: &CExpr, input: &ColumnTable, ctes: &Ctes) -> Result<VCol> {
        if input.is_empty() {
            // No row is ever evaluated: deferred-error programs stay
            // silent, exactly like the row engine.
            return Ok(VCol::Col(Column::from_values(Vec::new())));
        }
        match e {
            CExpr::Col(idx) => Ok(VCol::Col(input.col(*idx).clone())),
            CExpr::Value(v) => Ok(VCol::Const(v.clone())),
            CExpr::Outer(cref) => {
                // The vectorized executor only runs top-level plans (no
                // outer scope), where an `Outer` reference never resolves.
                Err(Error::eval(format!("unknown column `{}`", cref.render())))
            }
            CExpr::ScalarAgg => Err(Error::eval("aggregate used outside of a GROUP BY context")),
            CExpr::Star => Err(Error::eval("`*` may only appear inside Count(*)")),
            CExpr::Arith(a, op, b) => {
                let va = self.eval_expr_vec(a, input, ctes)?;
                let vb = self.eval_expr_vec(b, input, ctes)?;
                arith_vec(&va, *op, &vb, input.len())
            }
            CExpr::Cast(p) => {
                let truths = self.eval_pred_vec(p, input, ctes)?;
                let mut data = Vec::with_capacity(truths.len());
                let mut validity = Bitmap::all_invalid(truths.len());
                for (i, t) in truths.iter().enumerate() {
                    match t {
                        Truth::True => {
                            data.push(1);
                            validity.set(i);
                        }
                        Truth::False => {
                            data.push(0);
                            validity.set(i);
                        }
                        Truth::Unknown => data.push(0),
                    }
                }
                Ok(VCol::Col(Column::from_parts(ColumnData::Int(data), Some(validity))))
            }
        }
    }

    /// Evaluates a predicate program over a batch.  Callers guarantee
    /// `pred_vectorizable(p)` and a non-empty batch.
    fn eval_pred_vec(&self, p: &CPred, input: &ColumnTable, ctes: &Ctes) -> Result<Vec<Truth>> {
        let len = input.len();
        match p {
            CPred::Bool(b) => Ok(vec![Truth::from_bool(*b); len]),
            CPred::Cmp(a, op, b) => {
                let va = self.eval_expr_vec(a, input, ctes)?;
                let vb = self.eval_expr_vec(b, input, ctes)?;
                Ok(cmp_vec(&va, *op, &vb, len))
            }
            CPred::IsNull(e) => {
                let v = self.eval_expr_vec(e, input, ctes)?;
                Ok(match v {
                    VCol::Const(c) => vec![Truth::from_bool(c.is_null()); len],
                    VCol::Col(c) => (0..len).map(|i| Truth::from_bool(c.is_null(i))).collect(),
                })
            }
            CPred::InList(e, vs) => {
                let v = self.eval_expr_vec(e, input, ctes)?;
                Ok((0..len)
                    .map(|i| {
                        let x = v.value(i);
                        let mut truth = Truth::False;
                        for candidate in vs {
                            truth = truth.or(x.sql_eq(candidate));
                        }
                        truth
                    })
                    .collect())
            }
            CPred::And(a, b) => {
                // Both sides evaluate unconditionally, like the row engine
                // (three-valued logic has no short circuit there either).
                let va = self.eval_pred_vec(a, input, ctes)?;
                let vb = self.eval_pred_vec(b, input, ctes)?;
                Ok(va.into_iter().zip(vb).map(|(x, y)| x.and(y)).collect())
            }
            CPred::Or(a, b) => {
                let va = self.eval_pred_vec(a, input, ctes)?;
                let vb = self.eval_pred_vec(b, input, ctes)?;
                Ok(va.into_iter().zip(vb).map(|(x, y)| x.or(y)).collect())
            }
            CPred::Not(inner) => {
                let v = self.eval_pred_vec(inner, input, ctes)?;
                Ok(v.into_iter().map(Truth::not).collect())
            }
            CPred::InQuery(..) | CPred::Exists(_) => {
                Err(Error::eval("internal: subquery predicate reached a vector kernel"))
            }
        }
    }
}

// ------------------------------------------------------------ flat kernels

/// Comparison kernel.  The integer fast path replays
/// [`Value::compare`]'s numeric semantics exactly (comparison through
/// `f64`); everything else goes value-at-a-time through `Value::compare`
/// itself — still batched, never re-resolving columns.
fn cmp_vec(a: &VCol, op: CmpOp, b: &VCol, len: usize) -> Vec<Truth> {
    if let (VCol::Const(x), VCol::Const(y)) = (a, b) {
        return vec![x.compare(op, y); len];
    }
    if let (Some(ia), Some(ib)) = (IntView::of(a), IntView::of(b)) {
        return (0..len)
            .map(|i| match (ia.get(i), ib.get(i)) {
                (Some(x), Some(y)) => {
                    // `Value::compare` compares numerics as f64.
                    let (x, y) = (x as f64, y as f64);
                    let ord = match x.partial_cmp(&y) {
                        Some(o) => o,
                        None => return Truth::Unknown,
                    };
                    Truth::from_bool(match op {
                        CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                        CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                        CmpOp::Lt => ord == std::cmp::Ordering::Less,
                        CmpOp::Le => ord != std::cmp::Ordering::Greater,
                        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                        CmpOp::Ge => ord != std::cmp::Ordering::Less,
                    })
                }
                _ => Truth::Unknown,
            })
            .collect();
    }
    (0..len).map(|i| a.value(i).compare(op, &b.value(i))).collect()
}

/// Arithmetic kernel with an integer fast path (wrapping, `NULL` on zero
/// division — exactly [`Value::arith`]).
fn arith_vec(a: &VCol, op: BinArith, b: &VCol, len: usize) -> Result<VCol> {
    if let (VCol::Const(x), VCol::Const(y)) = (a, b) {
        return Ok(VCol::Const(x.arith(op, y)?));
    }
    if let (Some(ia), Some(ib)) = (IntView::of(a), IntView::of(b)) {
        let mut data = Vec::with_capacity(len);
        let mut validity = Bitmap::all_invalid(len);
        for i in 0..len {
            match (ia.get(i), ib.get(i)) {
                (Some(x), Some(y)) => {
                    let out = match op {
                        BinArith::Add => Some(x.wrapping_add(y)),
                        BinArith::Sub => Some(x.wrapping_sub(y)),
                        BinArith::Mul => Some(x.wrapping_mul(y)),
                        BinArith::Div => (y != 0).then(|| x.wrapping_div(y)),
                        BinArith::Mod => (y != 0).then(|| x.wrapping_rem(y)),
                    };
                    match out {
                        Some(v) => {
                            data.push(v);
                            validity.set(i);
                        }
                        None => data.push(0),
                    }
                }
                _ => data.push(0),
            }
        }
        return Ok(VCol::Col(Column::from_parts(ColumnData::Int(data), Some(validity))));
    }
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        out.push(a.value(i).arith(op, &b.value(i))?);
    }
    Ok(VCol::Col(Column::from_values(out)))
}

/// Aggregate fold over one group's member slots, with typed fast paths for
/// `Int` and `Float` columns that replay [`AggKind::fold`] bit-for-bit
/// (`NULL` skipping, wrapping integer sums, f64 accumulation order,
/// first-seen tie-breaks through the `f64` comparison).
fn fold_members(kind: AggKind, col: &Column, members: &[u32]) -> Value {
    match col.data() {
        ColumnData::Int(xs) => {
            let validity = col.validity();
            let mut count: i64 = 0;
            let mut isum: i64 = 0;
            let mut fsum: f64 = 0.0;
            let mut min: Option<i64> = None;
            let mut max: Option<i64> = None;
            for &m in members {
                let i = m as usize;
                if validity.is_some_and(|b| !b.get(i)) {
                    continue;
                }
                let x = xs[i];
                count += 1;
                isum = isum.wrapping_add(x);
                fsum += x as f64;
                min = Some(match min {
                    None => x,
                    // `fold` replaces through total_cmp, i.e. f64 order.
                    Some(m) if ((x as f64) < (m as f64)) => x,
                    Some(m) => m,
                });
                max = Some(match max {
                    None => x,
                    Some(m) if ((x as f64) > (m as f64)) => x,
                    Some(m) => m,
                });
            }
            match kind {
                AggKind::Count => Value::Int(count),
                AggKind::Sum => {
                    if count == 0 {
                        Value::Null
                    } else {
                        Value::Int(isum)
                    }
                }
                AggKind::Avg => {
                    if count == 0 {
                        Value::Null
                    } else {
                        Value::Float(fsum / count as f64)
                    }
                }
                AggKind::Min => min.map(Value::Int).unwrap_or(Value::Null),
                AggKind::Max => max.map(Value::Int).unwrap_or(Value::Null),
            }
        }
        ColumnData::Float(xs) => {
            let validity = col.validity();
            let mut count: i64 = 0;
            let mut fsum: f64 = 0.0;
            let mut min: Option<f64> = None;
            let mut max: Option<f64> = None;
            for &m in members {
                let i = m as usize;
                if validity.is_some_and(|b| !b.get(i)) {
                    continue;
                }
                let x = xs[i];
                count += 1;
                fsum += x;
                min = Some(match min {
                    None => x,
                    // partial_cmp == Less, i.e. NaN never replaces.
                    Some(m) if x < m => x,
                    Some(m) => m,
                });
                max = Some(match max {
                    None => x,
                    Some(m) if x > m => x,
                    Some(m) => m,
                });
            }
            match kind {
                AggKind::Count => Value::Int(count),
                AggKind::Sum => {
                    if count == 0 {
                        Value::Null
                    } else {
                        Value::Float(fsum)
                    }
                }
                AggKind::Avg => {
                    if count == 0 {
                        Value::Null
                    } else {
                        Value::Float(fsum / count as f64)
                    }
                }
                AggKind::Min => min.map(Value::Float).unwrap_or(Value::Null),
                AggKind::Max => max.map(Value::Float).unwrap_or(Value::Null),
            }
        }
        _ => {
            let values: Vec<Value> = members.iter().map(|&m| col.value(m as usize)).collect();
            kind.fold(values.iter())
        }
    }
}

/// Hashes one row's join key from its key columns (build/probe bucketing).
fn join_key_hash(t: &ColumnTable, cols: impl Iterator<Item = usize>, row: usize) -> u64 {
    let mut h = DefaultHasher::new();
    for c in cols {
        t.col(c).hash_value_into(row, &mut h);
    }
    h.finish()
}

/// Gathers `left` rows and `right` rows side by side into one table
/// (`NULL_IDX` entries null-extend), under the operator's output layout.
fn combine_gather(
    left: &ColumnTable,
    left_idx: &[u32],
    right: &ColumnTable,
    right_idx: &[u32],
    out_columns: &Arc<Vec<String>>,
) -> ColumnTable {
    debug_assert_eq!(left_idx.len(), right_idx.len());
    let mut cols = Vec::with_capacity(left.arity() + right.arity());
    for c in left.cols() {
        cols.push(c.gather_opt(left_idx));
    }
    for c in right.cols() {
        cols.push(c.gather_opt(right_idx));
    }
    ColumnTable::from_columns(Arc::clone(out_columns), cols, left_idx.len())
}

/// First-seen-order distinct row selection, hash-bucketed with strict
/// equality verification — the columnar dual of [`Table::dedup`].
fn distinct_indices(cols: &[Column], len: usize) -> Vec<u32> {
    let mut keep: Vec<u32> = Vec::new();
    let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
    for i in 0..len {
        let mut h = DefaultHasher::new();
        for c in cols {
            c.hash_value_into(i, &mut h);
        }
        let bucket = buckets.entry(h.finish()).or_default();
        let dup = bucket.iter().any(|&j| cols.iter().all(|c| c.strict_eq_at(i, c, j as usize)));
        if !dup {
            bucket.push(i as u32);
            keep.push(i as u32);
        }
    }
    keep
}

/// Stable index sort replaying the row engine's `ORDER BY` comparator
/// (positional keys, total value order, ascending flags).
fn order_by(input: &ColumnTable, keys: &[(usize, bool)]) -> ColumnTable {
    let mut idx: Vec<u32> = (0..input.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        for &(k, asc) in keys {
            let col = input.col(k);
            let ord = col.value(a as usize).total_cmp(&col.value(b as usize));
            let ord = if asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    input.gather(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::plan::compile_query;
    use graphiti_relational::RelInstance;

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    fn s(x: &str) -> Value {
        Value::str(x)
    }

    fn instance() -> RelInstance {
        let mut inst = RelInstance::new();
        inst.insert_table(
            "emp",
            Table::with_rows(
                ["id", "name", "dept"],
                vec![
                    vec![v(1), s("A"), v(1)],
                    vec![v(2), s("B"), v(1)],
                    vec![v(3), s("C"), v(2)],
                    vec![v(4), Value::Null, Value::Null],
                ],
            ),
        );
        inst.insert_table(
            "dept",
            Table::with_rows(
                ["dnum", "dname"],
                vec![vec![v(1), s("CS")], vec![v(2), s("EE")], vec![v(3), s("ME")]],
            ),
        );
        inst
    }

    /// Asserts the vectorized result is *identical* (same column names,
    /// same row order) to the row engine's, for a battery of queries.
    fn check(sql: &str) {
        let inst = instance();
        let columnar = ColumnInstance::from_rel(&inst);
        let q = parse_query(sql).unwrap();
        let plan = compile_query(&inst, &q).unwrap();
        let row = crate::eval::eval_compiled(&inst, &plan);
        let vec = eval_vectorized(&inst, &columnar, &plan);
        match (row, vec) {
            (Ok(r), Ok(c)) => assert_eq!(r, c, "vectorized differs on `{sql}`"),
            (Err(_), Err(_)) => {}
            (r, c) => panic!("paths disagree on `{sql}`: row={r:?} vec={c:?}"),
        }
    }

    #[test]
    fn scans_selections_projections() {
        check("SELECT e.id, e.name FROM emp AS e");
        check("SELECT e.name FROM emp AS e WHERE e.id > 1");
        check("SELECT e.id + 10 AS shifted FROM emp AS e WHERE e.id % 2 = 1");
        check("SELECT DISTINCT e.dept FROM emp AS e");
        check("SELECT e.name FROM emp AS e WHERE e.name IS NULL");
        check("SELECT e.id FROM emp AS e WHERE e.dept IN (1, 3)");
        check("SELECT e.id FROM emp AS e WHERE NOT (e.id = 2 OR e.id = 3)");
    }

    #[test]
    fn joins_match_row_engine() {
        check("SELECT e.name, d.dname FROM emp AS e JOIN dept AS d ON e.dept = d.dnum");
        check("SELECT e.name, d.dname FROM emp AS e LEFT JOIN dept AS d ON e.dept = d.dnum");
        check(
            "SELECT e.name, d.dname FROM emp AS e JOIN dept AS d ON e.dept = d.dnum AND e.id > 1",
        );
        check("SELECT e.name, d.dname FROM emp AS e, dept AS d");
        check("SELECT e.name, d.dname FROM emp AS e RIGHT JOIN dept AS d ON e.dept = d.dnum");
        check("SELECT e.name, d.dname FROM emp AS e FULL JOIN dept AS d ON e.dept = d.dnum");
        check("SELECT e.name, d.dname FROM emp AS e JOIN dept AS d ON e.id < d.dnum");
    }

    #[test]
    fn grouping_and_having() {
        check("SELECT e.dept, Count(*) AS c FROM emp AS e GROUP BY e.dept");
        check(
            "SELECT e.dept, Sum(e.id) AS total FROM emp AS e GROUP BY e.dept HAVING Count(*) > 1",
        );
        check("SELECT Count(*) AS c FROM emp AS e WHERE e.id > 100");
        check("SELECT Avg(e.id) AS a, Min(e.name) AS lo, Max(e.name) AS hi FROM emp AS e");
        check("SELECT Count(e.name) AS c FROM emp AS e");
        check("SELECT e.dept, Count(DISTINCT e.name) AS c FROM emp AS e GROUP BY e.dept");
    }

    #[test]
    fn set_operations_and_ordering() {
        check("SELECT e.id FROM emp AS e UNION SELECT d.dnum FROM dept AS d");
        check("SELECT e.id FROM emp AS e UNION ALL SELECT d.dnum FROM dept AS d");
        check("SELECT e.id, e.name FROM emp AS e ORDER BY e.id DESC");
        check("SELECT e.dept, e.id FROM emp AS e ORDER BY e.dept, e.id DESC");
    }

    #[test]
    fn ctes_and_subqueries_fall_back_consistently() {
        check("WITH big AS (SELECT e.id AS i FROM emp AS e WHERE e.id > 1) SELECT big.i FROM big");
        check(
            "SELECT e.name FROM emp AS e WHERE EXISTS (SELECT d.dnum FROM dept AS d WHERE d.dnum = e.dept)",
        );
        check(
            "SELECT e.name FROM emp AS e WHERE e.dept IN (SELECT d.dnum FROM dept AS d WHERE d.dname = 'CS')",
        );
    }

    #[test]
    fn null_semantics_survive_vectorization() {
        check("SELECT e.id FROM emp AS e WHERE e.dept = 1");
        check("SELECT e.id FROM emp AS e WHERE e.dept <> 1");
        check("SELECT e.id, e.dept + 1 AS d2 FROM emp AS e");
        check("SELECT e.id FROM emp AS e WHERE e.id / 0 = 1");
        check("SELECT Sum(e.dept) AS s FROM emp AS e");
    }

    #[test]
    fn empty_inputs_do_not_trip_deferred_errors() {
        // `Count(*)` over an empty filter result still yields one row, and
        // deferred-error programs must stay silent on zero rows.
        check("SELECT Count(*) AS c FROM emp AS e WHERE e.id > 1000");
        check("SELECT e.id FROM emp AS e WHERE e.id > 1000 ORDER BY e.id");
    }
}
