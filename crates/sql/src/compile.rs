//! Compilation of SQL expressions and predicates into positional programs.
//!
//! The tree-walking interpreter resolves every column reference with
//! [`resolve_column`](crate::eval::resolve_column) — a case-insensitive
//! string scan over the scope's column list that allocates per lookup — for
//! **every row**.  This module lowers [`SqlExpr`]/[`SqlPred`] trees against
//! a fixed column layout **once per operator**, producing programs whose
//! column references are plain positional indexes:
//!
//! * [`CExpr`] / [`CPred`] — row-at-a-time programs used by selections,
//!   projections, and join predicates;
//! * [`CGroupExpr`] / [`CGroupPred`] — group-at-a-time programs used by
//!   `GROUP BY` projections and `HAVING` predicates, with aggregates folded
//!   over the group's member rows.
//!
//! The programs are **owned**: literals are cheap clones (string values are
//! interned `Arc<str>`s), column references that stay symbolic are cloned,
//! and subqueries are lifted into `Arc<SqlQuery>`.  Owning the program is
//! what lets [`crate::plan::CompiledQuery`] cache a fully-compiled query
//! independently of the AST it was compiled from and share it across
//! threads (`CompiledQuery: Send + Sync`).
//!
//! Compilation never fails: references that do not resolve against the
//! local layout are kept symbolic ([`CExpr::Outer`]) and fall back to the
//! outer-scope chain at runtime, which is exactly how correlated subqueries
//! resolve their free columns.  Constructs that are *errors* when evaluated
//! (an aggregate in scalar position, a bare `*`) compile to explicit error
//! instructions so the compiled engine reports the same errors, in the same
//! situations, as the interpreter — including not reporting them at all
//! when no row is ever evaluated.
//!
//! Subqueries are not compiled into the program: [`CPred::InQuery`] and
//! [`CPred::Exists`] carry the subquery AST behind an `Arc` and re-enter
//! the evaluator, which caches uncorrelated results per operator exactly
//! like the interpreted path (the cache is keyed by the `Arc`'s pointer
//! identity, see [`CPred::collect_subqueries`]).

use crate::ast::{ColumnRef, SqlExpr, SqlPred, SqlQuery};
use crate::eval::resolve_column;
use graphiti_common::{AggKind, BinArith, CmpOp, Value};
use std::sync::Arc;

/// A scalar expression lowered against a fixed column layout.
#[derive(Debug, Clone)]
pub enum CExpr {
    /// A column resolved to a positional index in the current row.
    Col(usize),
    /// A column that did not resolve locally: looked up through the scope
    /// chain at runtime (correlated / outer references).
    Outer(ColumnRef),
    /// A literal.
    Value(Value),
    /// `Cast(φ)` over a compiled predicate.
    Cast(Box<CPred>),
    /// Binary arithmetic.
    Arith(Box<CExpr>, BinArith, Box<CExpr>),
    /// An aggregate in scalar position — an error if ever evaluated.
    ScalarAgg,
    /// A bare `*` outside `Count(*)` — an error if ever evaluated.
    Star,
}

/// A predicate lowered against a fixed column layout.
#[derive(Debug, Clone)]
pub enum CPred {
    /// Boolean constant.
    Bool(bool),
    /// Comparison.
    Cmp(CExpr, CmpOp, CExpr),
    /// `E IS NULL`.
    IsNull(CExpr),
    /// `E IN (v1, ..., vn)`.
    InList(CExpr, Vec<Value>),
    /// Tuple membership in a subquery; the subquery re-enters the evaluator.
    InQuery(Vec<CExpr>, Arc<SqlQuery>),
    /// `EXISTS (SELECT ...)`; the subquery re-enters the evaluator.
    Exists(Arc<SqlQuery>),
    /// Conjunction.
    And(Box<CPred>, Box<CPred>),
    /// Disjunction.
    Or(Box<CPred>, Box<CPred>),
    /// Negation.
    Not(Box<CPred>),
}

/// A group-level expression: aggregates fold over the group's rows, scalar
/// parts evaluate on the group's first row.
#[derive(Debug, Clone)]
pub enum CGroupExpr {
    /// `Count(*)` — the group's cardinality.
    CountStar,
    /// An aggregate over a compiled row expression; the flag is `DISTINCT`.
    Agg(AggKind, CExpr, bool),
    /// Arithmetic over group-level operands.
    Arith(Box<CGroupExpr>, BinArith, Box<CGroupExpr>),
    /// A non-aggregate expression, evaluated on the group's first row
    /// (`Null` for an empty group).
    Scalar(CExpr),
    /// `*` under a non-COUNT aggregate — an error if ever evaluated.
    StarAgg,
}

/// A group-level predicate (`HAVING`).
#[derive(Debug, Clone)]
pub enum CGroupPred {
    /// Boolean constant.
    Bool(bool),
    /// Comparison of group-level expressions.
    Cmp(CGroupExpr, CmpOp, CGroupExpr),
    /// `E IS NULL` at group level.
    IsNull(CGroupExpr),
    /// `E IN (v1, ..., vn)` at group level.
    InList(CGroupExpr, Vec<Value>),
    /// A subquery predicate, delegated to the row-wise evaluator on the
    /// group's first row (`Unknown` for an empty group).
    Subquery(SqlPred),
    /// Conjunction.
    And(Box<CGroupPred>, Box<CGroupPred>),
    /// Disjunction.
    Or(Box<CGroupPred>, Box<CGroupPred>),
    /// Negation.
    Not(Box<CGroupPred>),
}

fn lift_subquery(sub: &SqlQuery) -> Arc<SqlQuery> {
    Arc::new(sub.clone())
}

/// Lowers a scalar expression against `columns`.
pub fn compile_expr(e: &SqlExpr, columns: &[String]) -> CExpr {
    match e {
        SqlExpr::Col(c) => match resolve_column(columns, c) {
            Some(idx) => CExpr::Col(idx),
            None => CExpr::Outer(c.clone()),
        },
        SqlExpr::Value(v) => CExpr::Value(v.clone()),
        SqlExpr::Cast(p) => CExpr::Cast(Box::new(compile_pred(p, columns))),
        SqlExpr::Agg(..) => CExpr::ScalarAgg,
        SqlExpr::Arith(a, op, b) => CExpr::Arith(
            Box::new(compile_expr(a, columns)),
            *op,
            Box::new(compile_expr(b, columns)),
        ),
        SqlExpr::Star => CExpr::Star,
    }
}

/// Lowers a predicate against `columns`.
pub fn compile_pred(p: &SqlPred, columns: &[String]) -> CPred {
    match p {
        SqlPred::Bool(b) => CPred::Bool(*b),
        SqlPred::Cmp(a, op, b) => {
            CPred::Cmp(compile_expr(a, columns), *op, compile_expr(b, columns))
        }
        SqlPred::IsNull(e) => CPred::IsNull(compile_expr(e, columns)),
        SqlPred::InList(e, vs) => CPred::InList(compile_expr(e, columns), vs.clone()),
        SqlPred::InQuery(es, sub) => CPred::InQuery(
            es.iter().map(|e| compile_expr(e, columns)).collect(),
            lift_subquery(sub),
        ),
        SqlPred::Exists(sub) => CPred::Exists(lift_subquery(sub)),
        SqlPred::And(a, b) => {
            CPred::And(Box::new(compile_pred(a, columns)), Box::new(compile_pred(b, columns)))
        }
        SqlPred::Or(a, b) => {
            CPred::Or(Box::new(compile_pred(a, columns)), Box::new(compile_pred(b, columns)))
        }
        SqlPred::Not(inner) => CPred::Not(Box::new(compile_pred(inner, columns))),
    }
}

/// Lowers a group-level expression (a `GROUP BY` projection item) against
/// `columns`.
pub fn compile_group_expr(e: &SqlExpr, columns: &[String]) -> CGroupExpr {
    match e {
        SqlExpr::Agg(kind, inner, distinct) => {
            if matches!(inner.as_ref(), SqlExpr::Star) {
                if *kind == AggKind::Count {
                    CGroupExpr::CountStar
                } else {
                    CGroupExpr::StarAgg
                }
            } else {
                CGroupExpr::Agg(*kind, compile_expr(inner, columns), *distinct)
            }
        }
        SqlExpr::Arith(a, op, b) => CGroupExpr::Arith(
            Box::new(compile_group_expr(a, columns)),
            *op,
            Box::new(compile_group_expr(b, columns)),
        ),
        other => CGroupExpr::Scalar(compile_expr(other, columns)),
    }
}

/// Lowers a `HAVING` predicate against `columns`.
pub fn compile_group_pred(p: &SqlPred, columns: &[String]) -> CGroupPred {
    match p {
        SqlPred::Bool(b) => CGroupPred::Bool(*b),
        SqlPred::Cmp(a, op, b) => {
            CGroupPred::Cmp(compile_group_expr(a, columns), *op, compile_group_expr(b, columns))
        }
        SqlPred::IsNull(e) => CGroupPred::IsNull(compile_group_expr(e, columns)),
        SqlPred::InList(e, vs) => CGroupPred::InList(compile_group_expr(e, columns), vs.clone()),
        SqlPred::InQuery(..) | SqlPred::Exists(_) => CGroupPred::Subquery(p.clone()),
        SqlPred::And(a, b) => CGroupPred::And(
            Box::new(compile_group_pred(a, columns)),
            Box::new(compile_group_pred(b, columns)),
        ),
        SqlPred::Or(a, b) => CGroupPred::Or(
            Box::new(compile_group_pred(a, columns)),
            Box::new(compile_group_pred(b, columns)),
        ),
        SqlPred::Not(inner) => CGroupPred::Not(Box::new(compile_group_pred(inner, columns))),
    }
}

impl CPred {
    /// Collects the subqueries that the evaluator pre-computes into its
    /// per-operator cache.
    ///
    /// This mirrors the interpreter's `cache_subqueries` walk exactly: only
    /// the predicate's connective structure (`AND`/`OR`/`NOT`) is
    /// traversed — subqueries nested inside `Cast` expressions are *not*
    /// collected, matching the interpreted path's (lack of) caching for
    /// them.  The returned references carry the `Arc` pointer identity the
    /// runtime cache is keyed by.
    pub fn collect_subqueries<'a>(&'a self, out: &mut Vec<&'a SqlQuery>) {
        match self {
            CPred::InQuery(_, sub) => out.push(sub),
            CPred::Exists(sub) => out.push(sub),
            CPred::And(a, b) | CPred::Or(a, b) => {
                a.collect_subqueries(out);
                b.collect_subqueries(out);
            }
            CPred::Not(inner) => inner.collect_subqueries(out),
            _ => {}
        }
    }
}

impl CGroupPred {
    /// Collects cacheable subqueries, mirroring the interpreter's walk over
    /// the original `HAVING` predicate: group-level connectives recurse,
    /// and a [`CGroupPred::Subquery`] leaf contributes the subqueries of
    /// its retained row-level predicate.
    pub fn collect_subqueries<'a>(&'a self, out: &mut Vec<&'a SqlQuery>) {
        match self {
            CGroupPred::Subquery(p) => collect_ast_subqueries(p, out),
            CGroupPred::And(a, b) | CGroupPred::Or(a, b) => {
                a.collect_subqueries(out);
                b.collect_subqueries(out);
            }
            CGroupPred::Not(inner) => inner.collect_subqueries(out),
            _ => {}
        }
    }
}

/// The interpreter's `cache_subqueries` walk over an AST predicate,
/// exposed so compiled `HAVING` programs (which retain subquery predicates
/// as ASTs) cache the same subqueries the interpreter would.
pub(crate) fn collect_ast_subqueries<'a>(p: &'a SqlPred, out: &mut Vec<&'a SqlQuery>) {
    match p {
        SqlPred::InQuery(_, sub) | SqlPred::Exists(sub) => out.push(sub),
        SqlPred::And(a, b) | SqlPred::Or(a, b) => {
            collect_ast_subqueries(a, out);
            collect_ast_subqueries(b, out);
        }
        SqlPred::Not(inner) => collect_ast_subqueries(inner, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::SelectItem;

    fn cols() -> Vec<String> {
        vec!["e.id".to_string(), "e.name".to_string()]
    }

    #[test]
    fn columns_resolve_to_positions() {
        let e = SqlExpr::col("e", "name");
        match compile_expr(&e, &cols()) {
            CExpr::Col(1) => {}
            other => panic!("expected Col(1), got {other:?}"),
        }
    }

    #[test]
    fn unresolved_columns_stay_symbolic() {
        let e = SqlExpr::col("outer_t", "x");
        match compile_expr(&e, &cols()) {
            CExpr::Outer(c) => assert_eq!(c.render(), "outer_t.x"),
            other => panic!("expected Outer, got {other:?}"),
        }
    }

    #[test]
    fn predicates_lower_recursively() {
        let p = SqlPred::and(
            SqlPred::cmp(SqlExpr::col("e", "id"), graphiti_common::CmpOp::Gt, SqlExpr::value(1)),
            SqlPred::IsNull(Box::new(SqlExpr::col("e", "name"))),
        );
        match compile_pred(&p, &cols()) {
            CPred::And(a, b) => {
                assert!(matches!(*a, CPred::Cmp(CExpr::Col(0), _, CExpr::Value(_))));
                assert!(matches!(*b, CPred::IsNull(CExpr::Col(1))));
            }
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn group_exprs_split_aggregates_from_scalars() {
        let item = SelectItem::expr(SqlExpr::count_star());
        assert!(matches!(compile_group_expr(&item.expr, &cols()), CGroupExpr::CountStar));
        let agg = SqlExpr::agg(AggKind::Sum, SqlExpr::col("e", "id"));
        assert!(matches!(
            compile_group_expr(&agg, &cols()),
            CGroupExpr::Agg(AggKind::Sum, CExpr::Col(0), false)
        ));
        let scalar = SqlExpr::col("e", "name");
        assert!(matches!(compile_group_expr(&scalar, &cols()), CGroupExpr::Scalar(CExpr::Col(1))));
    }

    #[test]
    fn star_under_non_count_is_a_deferred_error() {
        let bad = SqlExpr::agg(AggKind::Sum, SqlExpr::Star);
        assert!(matches!(compile_group_expr(&bad, &cols()), CGroupExpr::StarAgg));
    }

    #[test]
    fn subquery_collection_matches_connective_structure() {
        let sub = SqlQuery::Table("t".into());
        let p = SqlPred::and(
            SqlPred::Exists(Box::new(sub.clone())),
            SqlPred::not(SqlPred::InQuery(vec![SqlExpr::value(1)], Box::new(sub))),
        );
        let program = compile_pred(&p, &cols());
        let mut subs = Vec::new();
        program.collect_subqueries(&mut subs);
        assert_eq!(subs.len(), 2);
    }
}
