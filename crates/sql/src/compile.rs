//! Compilation of SQL expressions and predicates into positional programs.
//!
//! The tree-walking interpreter resolves every column reference with
//! [`resolve_column`](crate::eval::resolve_column) — a case-insensitive
//! string scan over the scope's column list that allocates per lookup — for
//! **every row**.  This module lowers [`SqlExpr`]/[`SqlPred`] trees against
//! a fixed column layout **once per operator**, producing programs whose
//! column references are plain positional indexes:
//!
//! * [`CExpr`] / [`CPred`] — row-at-a-time programs used by selections,
//!   projections, and join predicates;
//! * [`CGroupExpr`] / [`CGroupPred`] — group-at-a-time programs used by
//!   `GROUP BY` projections and `HAVING` predicates, with aggregates folded
//!   over the group's member rows.
//!
//! Compilation never fails: references that do not resolve against the
//! local layout are kept symbolic ([`CExpr::Outer`]) and fall back to the
//! outer-scope chain at runtime, which is exactly how correlated subqueries
//! resolve their free columns.  Constructs that are *errors* when evaluated
//! (an aggregate in scalar position, a bare `*`) compile to explicit error
//! instructions so the compiled engine reports the same errors, in the same
//! situations, as the interpreter — including not reporting them at all
//! when no row is ever evaluated.
//!
//! Subqueries are not compiled into the program: [`CPred::InQuery`] and
//! [`CPred::Exists`] carry the subquery AST by reference and re-enter the
//! evaluator, which caches uncorrelated results per operator exactly like
//! the interpreted path.

use crate::ast::{ColumnRef, SqlExpr, SqlPred, SqlQuery};
use crate::eval::resolve_column;
use graphiti_common::{AggKind, BinArith, CmpOp, Value};

/// A scalar expression lowered against a fixed column layout.
#[derive(Debug)]
pub enum CExpr<'q> {
    /// A column resolved to a positional index in the current row.
    Col(usize),
    /// A column that did not resolve locally: looked up through the scope
    /// chain at runtime (correlated / outer references).
    Outer(&'q ColumnRef),
    /// A literal.
    Value(&'q Value),
    /// `Cast(φ)` over a compiled predicate.
    Cast(Box<CPred<'q>>),
    /// Binary arithmetic.
    Arith(Box<CExpr<'q>>, BinArith, Box<CExpr<'q>>),
    /// An aggregate in scalar position — an error if ever evaluated.
    ScalarAgg,
    /// A bare `*` outside `Count(*)` — an error if ever evaluated.
    Star,
}

/// A predicate lowered against a fixed column layout.
#[derive(Debug)]
pub enum CPred<'q> {
    /// Boolean constant.
    Bool(bool),
    /// Comparison.
    Cmp(CExpr<'q>, CmpOp, CExpr<'q>),
    /// `E IS NULL`.
    IsNull(CExpr<'q>),
    /// `E IN (v1, ..., vn)`.
    InList(CExpr<'q>, &'q [Value]),
    /// Tuple membership in a subquery; the subquery re-enters the evaluator.
    InQuery(Vec<CExpr<'q>>, &'q SqlQuery),
    /// `EXISTS (SELECT ...)`; the subquery re-enters the evaluator.
    Exists(&'q SqlQuery),
    /// Conjunction.
    And(Box<CPred<'q>>, Box<CPred<'q>>),
    /// Disjunction.
    Or(Box<CPred<'q>>, Box<CPred<'q>>),
    /// Negation.
    Not(Box<CPred<'q>>),
}

/// A group-level expression: aggregates fold over the group's rows, scalar
/// parts evaluate on the group's first row.
#[derive(Debug)]
pub enum CGroupExpr<'q> {
    /// `Count(*)` — the group's cardinality.
    CountStar,
    /// An aggregate over a compiled row expression; the flag is `DISTINCT`.
    Agg(AggKind, CExpr<'q>, bool),
    /// Arithmetic over group-level operands.
    Arith(Box<CGroupExpr<'q>>, BinArith, Box<CGroupExpr<'q>>),
    /// A non-aggregate expression, evaluated on the group's first row
    /// (`Null` for an empty group).
    Scalar(CExpr<'q>),
    /// `*` under a non-COUNT aggregate — an error if ever evaluated.
    StarAgg,
}

/// A group-level predicate (`HAVING`).
#[derive(Debug)]
pub enum CGroupPred<'q> {
    /// Boolean constant.
    Bool(bool),
    /// Comparison of group-level expressions.
    Cmp(CGroupExpr<'q>, CmpOp, CGroupExpr<'q>),
    /// `E IS NULL` at group level.
    IsNull(CGroupExpr<'q>),
    /// `E IN (v1, ..., vn)` at group level.
    InList(CGroupExpr<'q>, &'q [Value]),
    /// A subquery predicate, delegated to the row-wise evaluator on the
    /// group's first row (`Unknown` for an empty group).
    Subquery(&'q SqlPred),
    /// Conjunction.
    And(Box<CGroupPred<'q>>, Box<CGroupPred<'q>>),
    /// Disjunction.
    Or(Box<CGroupPred<'q>>, Box<CGroupPred<'q>>),
    /// Negation.
    Not(Box<CGroupPred<'q>>),
}

/// Lowers a scalar expression against `columns`.
pub fn compile_expr<'q>(e: &'q SqlExpr, columns: &[String]) -> CExpr<'q> {
    match e {
        SqlExpr::Col(c) => match resolve_column(columns, c) {
            Some(idx) => CExpr::Col(idx),
            None => CExpr::Outer(c),
        },
        SqlExpr::Value(v) => CExpr::Value(v),
        SqlExpr::Cast(p) => CExpr::Cast(Box::new(compile_pred(p, columns))),
        SqlExpr::Agg(..) => CExpr::ScalarAgg,
        SqlExpr::Arith(a, op, b) => CExpr::Arith(
            Box::new(compile_expr(a, columns)),
            *op,
            Box::new(compile_expr(b, columns)),
        ),
        SqlExpr::Star => CExpr::Star,
    }
}

/// Lowers a predicate against `columns`.
pub fn compile_pred<'q>(p: &'q SqlPred, columns: &[String]) -> CPred<'q> {
    match p {
        SqlPred::Bool(b) => CPred::Bool(*b),
        SqlPred::Cmp(a, op, b) => {
            CPred::Cmp(compile_expr(a, columns), *op, compile_expr(b, columns))
        }
        SqlPred::IsNull(e) => CPred::IsNull(compile_expr(e, columns)),
        SqlPred::InList(e, vs) => CPred::InList(compile_expr(e, columns), vs),
        SqlPred::InQuery(es, sub) => {
            CPred::InQuery(es.iter().map(|e| compile_expr(e, columns)).collect(), sub)
        }
        SqlPred::Exists(sub) => CPred::Exists(sub),
        SqlPred::And(a, b) => {
            CPred::And(Box::new(compile_pred(a, columns)), Box::new(compile_pred(b, columns)))
        }
        SqlPred::Or(a, b) => {
            CPred::Or(Box::new(compile_pred(a, columns)), Box::new(compile_pred(b, columns)))
        }
        SqlPred::Not(inner) => CPred::Not(Box::new(compile_pred(inner, columns))),
    }
}

/// Lowers a group-level expression (a `GROUP BY` projection item) against
/// `columns`.
pub fn compile_group_expr<'q>(e: &'q SqlExpr, columns: &[String]) -> CGroupExpr<'q> {
    match e {
        SqlExpr::Agg(kind, inner, distinct) => {
            if matches!(inner.as_ref(), SqlExpr::Star) {
                if *kind == AggKind::Count {
                    CGroupExpr::CountStar
                } else {
                    CGroupExpr::StarAgg
                }
            } else {
                CGroupExpr::Agg(*kind, compile_expr(inner, columns), *distinct)
            }
        }
        SqlExpr::Arith(a, op, b) => CGroupExpr::Arith(
            Box::new(compile_group_expr(a, columns)),
            *op,
            Box::new(compile_group_expr(b, columns)),
        ),
        other => CGroupExpr::Scalar(compile_expr(other, columns)),
    }
}

/// Lowers a `HAVING` predicate against `columns`.
pub fn compile_group_pred<'q>(p: &'q SqlPred, columns: &[String]) -> CGroupPred<'q> {
    match p {
        SqlPred::Bool(b) => CGroupPred::Bool(*b),
        SqlPred::Cmp(a, op, b) => {
            CGroupPred::Cmp(compile_group_expr(a, columns), *op, compile_group_expr(b, columns))
        }
        SqlPred::IsNull(e) => CGroupPred::IsNull(compile_group_expr(e, columns)),
        SqlPred::InList(e, vs) => CGroupPred::InList(compile_group_expr(e, columns), vs),
        SqlPred::InQuery(..) | SqlPred::Exists(_) => CGroupPred::Subquery(p),
        SqlPred::And(a, b) => CGroupPred::And(
            Box::new(compile_group_pred(a, columns)),
            Box::new(compile_group_pred(b, columns)),
        ),
        SqlPred::Or(a, b) => CGroupPred::Or(
            Box::new(compile_group_pred(a, columns)),
            Box::new(compile_group_pred(b, columns)),
        ),
        SqlPred::Not(inner) => CGroupPred::Not(Box::new(compile_group_pred(inner, columns))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::SelectItem;

    fn cols() -> Vec<String> {
        vec!["e.id".to_string(), "e.name".to_string()]
    }

    #[test]
    fn columns_resolve_to_positions() {
        let e = SqlExpr::col("e", "name");
        match compile_expr(&e, &cols()) {
            CExpr::Col(1) => {}
            other => panic!("expected Col(1), got {other:?}"),
        }
    }

    #[test]
    fn unresolved_columns_stay_symbolic() {
        let e = SqlExpr::col("outer_t", "x");
        match compile_expr(&e, &cols()) {
            CExpr::Outer(c) => assert_eq!(c.render(), "outer_t.x"),
            other => panic!("expected Outer, got {other:?}"),
        }
    }

    #[test]
    fn predicates_lower_recursively() {
        let p = SqlPred::and(
            SqlPred::cmp(SqlExpr::col("e", "id"), graphiti_common::CmpOp::Gt, SqlExpr::value(1)),
            SqlPred::IsNull(Box::new(SqlExpr::col("e", "name"))),
        );
        match compile_pred(&p, &cols()) {
            CPred::And(a, b) => {
                assert!(matches!(*a, CPred::Cmp(CExpr::Col(0), _, CExpr::Value(_))));
                assert!(matches!(*b, CPred::IsNull(CExpr::Col(1))));
            }
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn group_exprs_split_aggregates_from_scalars() {
        let item = SelectItem::expr(SqlExpr::count_star());
        assert!(matches!(compile_group_expr(&item.expr, &cols()), CGroupExpr::CountStar));
        let agg = SqlExpr::agg(AggKind::Sum, SqlExpr::col("e", "id"));
        assert!(matches!(
            compile_group_expr(&agg, &cols()),
            CGroupExpr::Agg(AggKind::Sum, CExpr::Col(0), false)
        ));
        let scalar = SqlExpr::col("e", "name");
        assert!(matches!(compile_group_expr(&scalar, &cols()), CGroupExpr::Scalar(CExpr::Col(1))));
    }

    #[test]
    fn star_under_non_count_is_a_deferred_error() {
        let bad = SqlExpr::agg(AggKind::Sum, SqlExpr::Star);
        assert!(matches!(compile_group_expr(&bad, &cols()), CGroupExpr::StarAgg));
    }
}
