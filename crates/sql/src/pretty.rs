//! Pretty-printer: renders Featherweight SQL algebra back to SQL text.
//!
//! The printer produces readable `SELECT`/`FROM`/`WHERE`/`GROUP BY` text with
//! `WITH` clauses for CTEs, close to the transpilation output shown in
//! Figure 7 of the paper.  It is used for display, corpus dumps, and the
//! default output-column names of unaliased projection items.

use crate::ast::*;
use graphiti_common::Value;

/// Renders a scalar expression.
pub fn expr_to_string(e: &SqlExpr) -> String {
    match e {
        SqlExpr::Col(c) => c.render(),
        SqlExpr::Value(v) => value_to_string(v),
        SqlExpr::Cast(p) => format!("CASE WHEN {} THEN 1 ELSE 0 END", pred_to_string(p)),
        SqlExpr::Agg(kind, inner, distinct) => {
            let inner = expr_to_string(inner);
            if *distinct {
                format!("{}(DISTINCT {inner})", kind.as_str())
            } else {
                format!("{}({inner})", kind.as_str())
            }
        }
        SqlExpr::Arith(a, op, b) => {
            format!("{} {} {}", expr_to_string(a), op.as_str(), expr_to_string(b))
        }
        SqlExpr::Star => "*".to_string(),
    }
}

/// Renders a literal in SQL syntax.
pub fn value_to_string(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f}"),
        Value::Str(s) => format!("'{s}'"),
    }
}

/// Renders a predicate.
pub fn pred_to_string(p: &SqlPred) -> String {
    match p {
        SqlPred::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        SqlPred::Cmp(a, op, b) => {
            format!("{} {} {}", expr_to_string(a), op.as_sql(), expr_to_string(b))
        }
        SqlPred::IsNull(e) => format!("{} IS NULL", expr_to_string(e)),
        SqlPred::InList(e, vs) => {
            let items: Vec<String> = vs.iter().map(value_to_string).collect();
            format!("{} IN ({})", expr_to_string(e), items.join(", "))
        }
        SqlPred::InQuery(es, q) => {
            let exprs: Vec<String> = es.iter().map(expr_to_string).collect();
            let lhs =
                if exprs.len() == 1 { exprs[0].clone() } else { format!("({})", exprs.join(", ")) };
            format!("{lhs} IN ({})", query_to_string(q))
        }
        SqlPred::Exists(q) => format!("EXISTS ({})", query_to_string(q)),
        SqlPred::And(a, b) => format!("({} AND {})", pred_to_string(a), pred_to_string(b)),
        SqlPred::Or(a, b) => format!("({} OR {})", pred_to_string(a), pred_to_string(b)),
        SqlPred::Not(inner) => format!("NOT ({})", pred_to_string(inner)),
    }
}

fn items_to_string(items: &[SelectItem]) -> String {
    items
        .iter()
        .map(|i| match &i.alias {
            Some(a) => format!("{} AS {a}", expr_to_string(&i.expr)),
            None => expr_to_string(&i.expr),
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders a query as a `FROM`-clause item (table name, aliased subquery, or
/// join chain).
fn from_item(q: &SqlQuery) -> String {
    match q {
        SqlQuery::Table(name) => name.to_string(),
        SqlQuery::Rename { input, alias } => match input.as_ref() {
            SqlQuery::Table(name) => format!("{name} AS {alias}"),
            other => format!("({}) AS {alias}", query_to_string(other)),
        },
        SqlQuery::Join { left, right, kind, pred } => {
            let kw = match kind {
                JoinKind::Cross => "CROSS JOIN",
                JoinKind::Inner => "JOIN",
                JoinKind::Left => "LEFT JOIN",
                JoinKind::Right => "RIGHT JOIN",
                JoinKind::Full => "FULL JOIN",
            };
            if matches!(kind, JoinKind::Cross) {
                format!("{} {kw} {}", from_item(left), from_item(right))
            } else {
                format!("{} {kw} {} ON {}", from_item(left), from_item(right), pred_to_string(pred))
            }
        }
        other => format!("({}) AS sub", query_to_string(other)),
    }
}

/// Renders a query as SQL text.
pub fn query_to_string(q: &SqlQuery) -> String {
    match q {
        SqlQuery::Table(name) => format!("SELECT * FROM {name}"),
        SqlQuery::Rename { .. } | SqlQuery::Join { .. } => {
            format!("SELECT * FROM {}", from_item(q))
        }
        SqlQuery::Select { input, pred } => {
            format!("SELECT * FROM {} WHERE {}", from_or_sub(input), pred_to_string(pred))
        }
        SqlQuery::Project { input, items, distinct } => {
            let distinct_kw = if *distinct { "DISTINCT " } else { "" };
            match input.as_ref() {
                SqlQuery::Select { input: inner, pred } => format!(
                    "SELECT {distinct_kw}{} FROM {} WHERE {}",
                    items_to_string(items),
                    from_or_sub(inner),
                    pred_to_string(pred)
                ),
                other => format!(
                    "SELECT {distinct_kw}{} FROM {}",
                    items_to_string(items),
                    from_or_sub(other)
                ),
            }
        }
        SqlQuery::GroupBy { input, keys, items, having } => {
            let keys_str = keys.iter().map(expr_to_string).collect::<Vec<_>>().join(", ");
            let (from_part, where_part) = match input.as_ref() {
                SqlQuery::Select { input: inner, pred } => {
                    (from_or_sub(inner), format!(" WHERE {}", pred_to_string(pred)))
                }
                other => (from_or_sub(other), String::new()),
            };
            let mut out = format!("SELECT {} FROM {from_part}{where_part}", items_to_string(items));
            if !keys.is_empty() {
                out.push_str(&format!(" GROUP BY {keys_str}"));
            }
            if having != &SqlPred::Bool(true) {
                out.push_str(&format!(" HAVING {}", pred_to_string(having)));
            }
            out
        }
        SqlQuery::With { .. } => {
            // Collect a chain of WITH definitions into a single WITH list.
            let mut defs: Vec<(String, String)> = Vec::new();
            let mut cur = q;
            while let SqlQuery::With { name, definition, body } = cur {
                defs.push((name.to_string(), query_to_string(definition)));
                cur = body;
            }
            let defs_str =
                defs.iter().map(|(n, d)| format!("{n} AS ({d})")).collect::<Vec<_>>().join(", ");
            format!("WITH {defs_str} {}", query_to_string(cur))
        }
        SqlQuery::OrderBy { input, keys } => {
            let keys_str = keys
                .iter()
                .map(|(e, asc)| format!("{}{}", expr_to_string(e), if *asc { "" } else { " DESC" }))
                .collect::<Vec<_>>()
                .join(", ");
            format!("{} ORDER BY {keys_str}", query_to_string(input))
        }
        SqlQuery::Union(a, b) => {
            format!("{} UNION {}", query_to_string(a), query_to_string(b))
        }
        SqlQuery::UnionAll(a, b) => {
            format!("{} UNION ALL {}", query_to_string(a), query_to_string(b))
        }
    }
}

/// Renders either a plain `FROM` item or a parenthesized subquery.
fn from_or_sub(q: &SqlQuery) -> String {
    match q {
        SqlQuery::Table(_) | SqlQuery::Rename { .. } | SqlQuery::Join { .. } => from_item(q),
        other => format!("({}) AS sub", query_to_string(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphiti_common::CmpOp;

    #[test]
    fn render_join_chain() {
        let q = SqlQuery::table("emp")
            .rename("n")
            .join(
                SqlQuery::table("work_at").rename("e"),
                SqlPred::col_eq(SqlExpr::col("n", "id"), SqlExpr::col("e", "SRC")),
            )
            .select(SqlPred::cmp(SqlExpr::col("n", "id"), CmpOp::Eq, SqlExpr::value(1)))
            .project(vec![SelectItem::aliased(SqlExpr::col("n", "name"), "name")]);
        let sql = query_to_string(&q);
        assert!(sql.contains("SELECT n.name AS name"));
        assert!(sql.contains("emp AS n JOIN work_at AS e ON n.id = e.SRC"));
        assert!(sql.contains("WHERE n.id = 1"));
    }

    #[test]
    fn render_group_by_and_cte() {
        let inner =
            SqlQuery::table("emp").project(vec![SelectItem::expr(SqlExpr::col("emp", "id"))]);
        let q = SqlQuery::With {
            name: "T1".into(),
            definition: Box::new(inner),
            body: Box::new(SqlQuery::GroupBy {
                input: Box::new(SqlQuery::table("T1")),
                keys: vec![SqlExpr::name("id")],
                items: vec![
                    SelectItem::expr(SqlExpr::name("id")),
                    SelectItem::aliased(SqlExpr::count_star(), "cnt"),
                ],
                having: SqlPred::true_(),
            }),
        };
        let sql = query_to_string(&q);
        assert!(sql.starts_with("WITH T1 AS ("));
        assert!(sql.contains("GROUP BY id"));
        assert!(sql.contains("Count(*) AS cnt"));
    }

    #[test]
    fn render_in_subquery_and_union() {
        let sub = SqlQuery::table("s").project(vec![SelectItem::expr(SqlExpr::col("s", "SID"))]);
        let q = SqlQuery::table("t")
            .select(SqlPred::InQuery(vec![SqlExpr::col("t", "SID")], Box::new(sub)))
            .project(vec![SelectItem::expr(SqlExpr::col("t", "SID"))]);
        let q = SqlQuery::Union(Box::new(q.clone()), Box::new(q));
        let sql = query_to_string(&q);
        assert!(sql.contains("IN (SELECT s.SID FROM s)"));
        assert!(sql.contains(" UNION "));
    }
}
