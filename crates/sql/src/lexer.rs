//! Tokenizer for the concrete SQL surface syntax.

use graphiti_common::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// End of input.
    Eof,
}

impl Token {
    /// Returns `true` if this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes SQL source text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let chars: Vec<char> = input.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < chars.len() && chars[i + 1] == '-' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if i + 1 < chars.len() && chars[i + 1] == '=' => {
                tokens.push(Token::Ne);
                i += 2;
            }
            '<' => {
                if i + 1 < chars.len() && chars[i + 1] == '>' {
                    tokens.push(Token::Ne);
                    i += 2;
                } else if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != quote {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(Error::parse("sql", "unterminated string literal"));
                }
                i += 1;
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    tokens.push(Token::Float(text.parse().map_err(|_| {
                        Error::parse("sql", format!("bad float literal `{text}`"))
                    })?));
                } else {
                    tokens.push(Token::Int(text.parse().map_err(|_| {
                        Error::parse("sql", format!("bad integer literal `{text}`"))
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(Error::parse("sql", format!("unexpected character `{other}`"))),
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_select() {
        let toks =
            tokenize("SELECT c2.CID, Count(*) FROM Cs AS c2 WHERE c2.CID >= 1 -- comment").unwrap();
        assert!(toks.iter().any(|t| t.is_kw("select")));
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::Ge));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn tokenize_strings_and_operators() {
        let toks = tokenize("WHERE name <> 'O Brien' AND x != 2").unwrap();
        assert_eq!(toks.iter().filter(|t| **t == Token::Ne).count(), 2);
        assert!(toks.contains(&Token::Str("O Brien".into())));
    }

    #[test]
    fn errors() {
        assert!(tokenize("SELECT 'oops").is_err());
        assert!(tokenize("SELECT #").is_err());
    }
}
