//! Featherweight SQL abstract syntax (Figure 10 of the paper).
//!
//! The AST is the relational-algebra-style language of the paper:
//!
//! ```text
//! Query Q ::= R | Π_L(Q) | σ_φ(Q) | ρ_R(Q) | Q ∪ Q | Q ⊎ Q | Q ⊗ Q
//!           | GroupBy(Q, Ē, L, φ) | With(Q, R, Q) | OrderBy(Q, ā, b)
//! L ::= E | ρ_a(E) | L, L
//! E ::= a | v | Cast(φ) | Agg(E) | E ⊕ E
//! φ ::= b | E ⊙ E | IsNull(E) | E ∈ v̄ | E ∈ Q | φ∧φ | φ∨φ | ¬φ
//! ⊗ ::= × | ⋈_φ | left/right/full outer joins
//! ```
//!
//! Extensions beyond the paper's figure, all used by real benchmark queries:
//! `DISTINCT`, `EXISTS(Q)` predicates, and tuple-`IN` over a subquery (the
//! form produced by the `P-Exists` transpilation rule).

use graphiti_common::{AggKind, BinArith, CmpOp, Ident, Value};
use serde::{Deserialize, Serialize};

/// A (possibly qualified) column reference, e.g. `c2.CID` or `CID`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Optional table qualifier.
    pub qualifier: Option<Ident>,
    /// Column name.
    pub name: Ident,
}

impl ColumnRef {
    /// An unqualified column reference.
    pub fn unqualified(name: impl Into<Ident>) -> Self {
        ColumnRef { qualifier: None, name: name.into() }
    }

    /// A qualified column reference.
    pub fn qualified(qualifier: impl Into<Ident>, name: impl Into<Ident>) -> Self {
        ColumnRef { qualifier: Some(qualifier.into()), name: name.into() }
    }

    /// Renders the reference as `qualifier.name` or `name`.
    pub fn render(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.to_string(),
        }
    }
}

/// A SQL scalar expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SqlExpr {
    /// A column reference.
    Col(ColumnRef),
    /// A literal value.
    Value(Value),
    /// `Cast(φ)` — predicate to `1`/`0`/`NULL` (also covers `CASE WHEN φ THEN 1 ELSE 0 END`).
    Cast(Box<SqlPred>),
    /// Aggregate call; the boolean is `DISTINCT`.
    Agg(AggKind, Box<SqlExpr>, bool),
    /// Binary arithmetic.
    Arith(Box<SqlExpr>, BinArith, Box<SqlExpr>),
    /// The `*` of `COUNT(*)`.
    Star,
}

impl SqlExpr {
    /// Convenience constructor for a qualified column.
    pub fn col(qualifier: impl Into<Ident>, name: impl Into<Ident>) -> Self {
        SqlExpr::Col(ColumnRef::qualified(qualifier, name))
    }

    /// Convenience constructor for an unqualified column.
    pub fn name(name: impl Into<Ident>) -> Self {
        SqlExpr::Col(ColumnRef::unqualified(name))
    }

    /// Convenience constructor for a literal.
    pub fn value(v: impl Into<Value>) -> Self {
        SqlExpr::Value(v.into())
    }

    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        SqlExpr::Agg(AggKind::Count, Box::new(SqlExpr::Star), false)
    }

    /// A non-distinct aggregate.
    pub fn agg(kind: AggKind, e: SqlExpr) -> Self {
        SqlExpr::Agg(kind, Box::new(e), false)
    }

    /// Returns `true` if the expression contains an aggregate.
    pub fn has_agg(&self) -> bool {
        match self {
            SqlExpr::Agg(..) => true,
            SqlExpr::Arith(a, _, b) => a.has_agg() || b.has_agg(),
            SqlExpr::Cast(p) => p.has_agg(),
            _ => false,
        }
    }

    /// AST node count (Table 1 size metric).
    pub fn size(&self) -> usize {
        match self {
            SqlExpr::Col(_) | SqlExpr::Value(_) | SqlExpr::Star => 1,
            SqlExpr::Cast(p) => 1 + p.size(),
            SqlExpr::Agg(_, e, _) => 1 + e.size(),
            SqlExpr::Arith(a, _, b) => 1 + a.size() + b.size(),
        }
    }

    /// All column references in the expression.
    pub fn columns(&self) -> Vec<ColumnRef> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<ColumnRef>) {
        match self {
            SqlExpr::Col(c) => out.push(c.clone()),
            SqlExpr::Cast(p) => p.collect_columns(out),
            SqlExpr::Agg(_, e, _) => e.collect_columns(out),
            SqlExpr::Arith(a, _, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            SqlExpr::Value(_) | SqlExpr::Star => {}
        }
    }
}

/// A SQL predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SqlPred {
    /// Boolean constant.
    Bool(bool),
    /// Comparison.
    Cmp(Box<SqlExpr>, CmpOp, Box<SqlExpr>),
    /// `E IS NULL`.
    IsNull(Box<SqlExpr>),
    /// `E IN (v1, ..., vn)` over literal values.
    InList(Box<SqlExpr>, Vec<Value>),
    /// `(E1, ..., En) IN (SELECT ...)` — tuple membership in a subquery.
    InQuery(Vec<SqlExpr>, Box<SqlQuery>),
    /// `EXISTS (SELECT ...)`.
    Exists(Box<SqlQuery>),
    /// Conjunction.
    And(Box<SqlPred>, Box<SqlPred>),
    /// Disjunction.
    Or(Box<SqlPred>, Box<SqlPred>),
    /// Negation.
    Not(Box<SqlPred>),
}

impl SqlPred {
    /// `⊤`.
    pub fn true_() -> Self {
        SqlPred::Bool(true)
    }

    /// Convenience constructor for comparisons.
    pub fn cmp(a: SqlExpr, op: CmpOp, b: SqlExpr) -> Self {
        SqlPred::Cmp(Box::new(a), op, Box::new(b))
    }

    /// Convenience constructor for column equality `a = b`.
    pub fn col_eq(a: SqlExpr, b: SqlExpr) -> Self {
        SqlPred::cmp(a, CmpOp::Eq, b)
    }

    /// Conjunction that simplifies `⊤ ∧ p` to `p`.
    pub fn and(a: SqlPred, b: SqlPred) -> Self {
        match (a, b) {
            (SqlPred::Bool(true), p) | (p, SqlPred::Bool(true)) => p,
            (a, b) => SqlPred::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction.
    pub fn or(a: SqlPred, b: SqlPred) -> Self {
        SqlPred::Or(Box::new(a), Box::new(b))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(p: SqlPred) -> Self {
        SqlPred::Not(Box::new(p))
    }

    /// Conjunction of an iterator of predicates (`⊤` if empty).
    pub fn conjunction(preds: impl IntoIterator<Item = SqlPred>) -> Self {
        preds.into_iter().fold(SqlPred::Bool(true), SqlPred::and)
    }

    /// Splits a predicate into its top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<&SqlPred> {
        match self {
            SqlPred::And(a, b) => {
                let mut out = a.conjuncts();
                out.extend(b.conjuncts());
                out
            }
            _ => vec![self],
        }
    }

    /// Returns `true` if the predicate contains an aggregate.
    pub fn has_agg(&self) -> bool {
        match self {
            SqlPred::Cmp(a, _, b) => a.has_agg() || b.has_agg(),
            SqlPred::IsNull(e) => e.has_agg(),
            SqlPred::InList(e, _) => e.has_agg(),
            SqlPred::InQuery(es, _) => es.iter().any(SqlExpr::has_agg),
            SqlPred::And(a, b) | SqlPred::Or(a, b) => a.has_agg() || b.has_agg(),
            SqlPred::Not(p) => p.has_agg(),
            SqlPred::Bool(_) | SqlPred::Exists(_) => false,
        }
    }

    /// Returns `true` if the predicate contains a subquery.
    pub fn has_subquery(&self) -> bool {
        match self {
            SqlPred::InQuery(..) | SqlPred::Exists(_) => true,
            SqlPred::And(a, b) | SqlPred::Or(a, b) => a.has_subquery() || b.has_subquery(),
            SqlPred::Not(p) => p.has_subquery(),
            _ => false,
        }
    }

    /// AST node count (Table 1 size metric).
    pub fn size(&self) -> usize {
        match self {
            SqlPred::Bool(_) => 1,
            SqlPred::Cmp(a, _, b) => 1 + a.size() + b.size(),
            SqlPred::IsNull(e) => 1 + e.size(),
            SqlPred::InList(e, vs) => 1 + e.size() + vs.len(),
            SqlPred::InQuery(es, q) => 1 + es.iter().map(SqlExpr::size).sum::<usize>() + q.size(),
            SqlPred::Exists(q) => 1 + q.size(),
            SqlPred::And(a, b) | SqlPred::Or(a, b) => 1 + a.size() + b.size(),
            SqlPred::Not(p) => 1 + p.size(),
        }
    }

    fn collect_columns(&self, out: &mut Vec<ColumnRef>) {
        match self {
            SqlPred::Cmp(a, _, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            SqlPred::IsNull(e) | SqlPred::InList(e, _) => e.collect_columns(out),
            SqlPred::InQuery(es, _) => es.iter().for_each(|e| e.collect_columns(out)),
            SqlPred::And(a, b) | SqlPred::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            SqlPred::Not(p) => p.collect_columns(out),
            SqlPred::Bool(_) | SqlPred::Exists(_) => {}
        }
    }

    /// Column references appearing (outside subqueries) in the predicate.
    pub fn columns(&self) -> Vec<ColumnRef> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }
}

/// One item of a projection list: an expression with an optional alias
/// (`ρ_a(E)` in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: SqlExpr,
    /// Output column name; defaults to a rendering of the expression.
    pub alias: Option<Ident>,
}

impl SelectItem {
    /// An item without an alias.
    pub fn expr(expr: SqlExpr) -> Self {
        SelectItem { expr, alias: None }
    }

    /// An aliased item.
    pub fn aliased(expr: SqlExpr, alias: impl Into<Ident>) -> Self {
        SelectItem { expr, alias: Some(alias.into()) }
    }

    /// The output column name.
    pub fn output_name(&self) -> String {
        match &self.alias {
            Some(a) => a.to_string(),
            None => crate::pretty::expr_to_string(&self.expr),
        }
    }
}

/// Join operators (`⊗` in Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinKind {
    /// Cartesian product `×`.
    Cross,
    /// Inner join `⋈_φ`.
    Inner,
    /// Left outer join.
    Left,
    /// Right outer join.
    Right,
    /// Full outer join.
    Full,
}

/// A Featherweight SQL query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SqlQuery {
    /// A base relation or CTE reference.
    Table(Ident),
    /// Projection `Π_L(Q)`; `distinct` adds `SELECT DISTINCT`.
    Project {
        /// Input query.
        input: Box<SqlQuery>,
        /// Projection list.
        items: Vec<SelectItem>,
        /// Whether duplicate rows are removed.
        distinct: bool,
    },
    /// Selection `σ_φ(Q)`.
    Select {
        /// Input query.
        input: Box<SqlQuery>,
        /// Filter predicate.
        pred: SqlPred,
    },
    /// Renaming `ρ_T(Q)`: gives the result the table alias `T`.
    Rename {
        /// Input query.
        input: Box<SqlQuery>,
        /// New table alias.
        alias: Ident,
    },
    /// Join `Q ⊗_φ Q`.
    Join {
        /// Left input.
        left: Box<SqlQuery>,
        /// Right input.
        right: Box<SqlQuery>,
        /// Join flavour.
        kind: JoinKind,
        /// Join predicate (`⊤` for cross joins).
        pred: SqlPred,
    },
    /// Set union `∪` (duplicates removed).
    Union(Box<SqlQuery>, Box<SqlQuery>),
    /// Bag union `⊎` (`UNION ALL`).
    UnionAll(Box<SqlQuery>, Box<SqlQuery>),
    /// `GroupBy(Q, Ē, L, φ)`: grouping keys, projection list, `HAVING`.
    GroupBy {
        /// Input query.
        input: Box<SqlQuery>,
        /// Grouping key expressions.
        keys: Vec<SqlExpr>,
        /// Projection list (may contain aggregates).
        items: Vec<SelectItem>,
        /// `HAVING` predicate.
        having: SqlPred,
    },
    /// `With(Q_def, R, Q_body)`: a common table expression.
    With {
        /// CTE name.
        name: Ident,
        /// CTE definition.
        definition: Box<SqlQuery>,
        /// Body that may reference the CTE.
        body: Box<SqlQuery>,
    },
    /// `OrderBy(Q, ā, b)`.
    OrderBy {
        /// Input query.
        input: Box<SqlQuery>,
        /// Sort keys: expression plus ascending flag.
        keys: Vec<(SqlExpr, bool)>,
    },
}

impl SqlQuery {
    /// A base-table scan.
    pub fn table(name: impl Into<Ident>) -> Self {
        SqlQuery::Table(name.into())
    }

    /// `ρ_alias(self)`.
    pub fn rename(self, alias: impl Into<Ident>) -> Self {
        SqlQuery::Rename { input: Box::new(self), alias: alias.into() }
    }

    /// `σ_pred(self)`.
    pub fn select(self, pred: SqlPred) -> Self {
        SqlQuery::Select { input: Box::new(self), pred }
    }

    /// `Π_items(self)`.
    pub fn project(self, items: Vec<SelectItem>) -> Self {
        SqlQuery::Project { input: Box::new(self), items, distinct: false }
    }

    /// Inner join with a predicate.
    pub fn join(self, right: SqlQuery, pred: SqlPred) -> Self {
        SqlQuery::Join { left: Box::new(self), right: Box::new(right), kind: JoinKind::Inner, pred }
    }

    /// Left outer join with a predicate.
    pub fn left_join(self, right: SqlQuery, pred: SqlPred) -> Self {
        SqlQuery::Join { left: Box::new(self), right: Box::new(right), kind: JoinKind::Left, pred }
    }

    /// Cross join.
    pub fn cross_join(self, right: SqlQuery) -> Self {
        SqlQuery::Join {
            left: Box::new(self),
            right: Box::new(right),
            kind: JoinKind::Cross,
            pred: SqlPred::Bool(true),
        }
    }

    /// AST node count (the Table 1 "SQL Size" metric).
    pub fn size(&self) -> usize {
        match self {
            SqlQuery::Table(_) => 1,
            SqlQuery::Project { input, items, .. } => {
                1 + input.size() + items.iter().map(|i| i.expr.size()).sum::<usize>()
            }
            SqlQuery::Select { input, pred } => 1 + input.size() + pred.size(),
            SqlQuery::Rename { input, .. } => 1 + input.size(),
            SqlQuery::Join { left, right, pred, .. } => {
                1 + left.size() + right.size() + pred.size()
            }
            SqlQuery::Union(a, b) | SqlQuery::UnionAll(a, b) => 1 + a.size() + b.size(),
            SqlQuery::GroupBy { input, keys, items, having } => {
                1 + input.size()
                    + keys.iter().map(SqlExpr::size).sum::<usize>()
                    + items.iter().map(|i| i.expr.size()).sum::<usize>()
                    + having.size()
            }
            SqlQuery::With { definition, body, .. } => 1 + definition.size() + body.size(),
            SqlQuery::OrderBy { input, keys } => {
                1 + input.size() + keys.iter().map(|(e, _)| e.size()).sum::<usize>()
            }
        }
    }

    /// Returns `true` if the query uses aggregation anywhere.
    pub fn has_agg(&self) -> bool {
        match self {
            SqlQuery::Table(_) => false,
            SqlQuery::Project { input, items, .. } => {
                items.iter().any(|i| i.expr.has_agg()) || input.has_agg()
            }
            SqlQuery::Select { input, pred } => pred.has_agg() || input.has_agg(),
            SqlQuery::Rename { input, .. } => input.has_agg(),
            SqlQuery::Join { left, right, .. } => left.has_agg() || right.has_agg(),
            SqlQuery::Union(a, b) | SqlQuery::UnionAll(a, b) => a.has_agg() || b.has_agg(),
            SqlQuery::GroupBy { .. } => true,
            SqlQuery::With { definition, body, .. } => definition.has_agg() || body.has_agg(),
            SqlQuery::OrderBy { input, .. } => input.has_agg(),
        }
    }

    /// Returns `true` if the query uses an outer join anywhere.
    pub fn has_outer_join(&self) -> bool {
        match self {
            SqlQuery::Table(_) => false,
            SqlQuery::Project { input, .. }
            | SqlQuery::Select { input, .. }
            | SqlQuery::Rename { input, .. }
            | SqlQuery::OrderBy { input, .. } => input.has_outer_join(),
            SqlQuery::Join { left, right, kind, .. } => {
                matches!(kind, JoinKind::Left | JoinKind::Right | JoinKind::Full)
                    || left.has_outer_join()
                    || right.has_outer_join()
            }
            SqlQuery::Union(a, b) | SqlQuery::UnionAll(a, b) => {
                a.has_outer_join() || b.has_outer_join()
            }
            SqlQuery::GroupBy { input, .. } => input.has_outer_join(),
            SqlQuery::With { definition, body, .. } => {
                definition.has_outer_join() || body.has_outer_join()
            }
        }
    }

    /// Names of the base tables referenced by the query (excluding CTEs).
    pub fn base_tables(&self) -> Vec<Ident> {
        fn walk(q: &SqlQuery, ctes: &mut Vec<Ident>, out: &mut Vec<Ident>) {
            match q {
                SqlQuery::Table(name) => {
                    if !ctes.contains(name) && !out.contains(name) {
                        out.push(name.clone());
                    }
                }
                SqlQuery::Project { input, .. }
                | SqlQuery::Select { input, .. }
                | SqlQuery::Rename { input, .. }
                | SqlQuery::OrderBy { input, .. }
                | SqlQuery::GroupBy { input, .. } => walk(input, ctes, out),
                SqlQuery::Join { left, right, .. }
                | SqlQuery::Union(left, right)
                | SqlQuery::UnionAll(left, right) => {
                    walk(left, ctes, out);
                    walk(right, ctes, out);
                }
                SqlQuery::With { name, definition, body } => {
                    walk(definition, ctes, out);
                    ctes.push(name.clone());
                    walk(body, ctes, out);
                    ctes.pop();
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut Vec::new(), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_size() {
        let q = SqlQuery::table("emp")
            .rename("n")
            .join(
                SqlQuery::table("work_at").rename("e"),
                SqlPred::col_eq(SqlExpr::col("n", "id"), SqlExpr::col("e", "SRC")),
            )
            .select(SqlPred::cmp(SqlExpr::col("n", "id"), CmpOp::Gt, SqlExpr::value(0)))
            .project(vec![SelectItem::aliased(SqlExpr::col("n", "name"), "name")]);
        assert!(q.size() > 8);
        assert!(!q.has_agg());
        assert!(!q.has_outer_join());
        assert_eq!(q.base_tables(), vec![Ident::new("emp"), Ident::new("work_at")]);
    }

    #[test]
    fn conjuncts_and_conjunction() {
        let p = SqlPred::conjunction(vec![
            SqlPred::col_eq(SqlExpr::name("a"), SqlExpr::name("b")),
            SqlPred::col_eq(SqlExpr::name("c"), SqlExpr::name("d")),
            SqlPred::Bool(true),
        ]);
        assert_eq!(p.conjuncts().len(), 2);
        assert_eq!(SqlPred::true_().conjuncts().len(), 1);
    }

    #[test]
    fn agg_and_outer_join_detection() {
        let q = SqlQuery::GroupBy {
            input: Box::new(SqlQuery::table("t").left_join(SqlQuery::table("s"), SqlPred::true_())),
            keys: vec![SqlExpr::name("a")],
            items: vec![SelectItem::expr(SqlExpr::count_star())],
            having: SqlPred::true_(),
        };
        assert!(q.has_agg());
        assert!(q.has_outer_join());
    }

    #[test]
    fn cte_names_are_not_base_tables() {
        let q = SqlQuery::With {
            name: "T1".into(),
            definition: Box::new(SqlQuery::table("emp")),
            body: Box::new(SqlQuery::table("T1").join(SqlQuery::table("dept"), SqlPred::true_())),
        };
        let tables = q.base_tables();
        assert!(tables.contains(&Ident::new("emp")));
        assert!(tables.contains(&Ident::new("dept")));
        assert!(!tables.contains(&Ident::new("T1")));
    }

    #[test]
    fn select_item_output_names() {
        assert_eq!(SelectItem::aliased(SqlExpr::col("t", "a"), "x").output_name(), "x");
        assert_eq!(SelectItem::expr(SqlExpr::col("t", "a")).output_name(), "t.a");
        assert_eq!(SelectItem::expr(SqlExpr::count_star()).output_name(), "Count(*)");
    }
}
