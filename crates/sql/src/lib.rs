//! Featherweight SQL for the Graphiti reproduction.
//!
//! This crate implements the relational query language of the paper
//! (Section 3.3, Figure 10) together with everything needed to *execute* it,
//! standing in for the SQL engines and checkers the paper builds on:
//!
//! * [`ast`] — the algebraic Featherweight SQL AST with AST-size metrics.
//! * [`parser`] — a lexer and recursive-descent parser from SQL text to the
//!   algebra (`SELECT`/`FROM`/`WHERE`/`GROUP BY`/`HAVING`/`ORDER BY`/
//!   `UNION`/`WITH`, joins, subqueries).
//! * [`pretty`] — renders the algebra back to SQL text (used for the Fig. 7
//!   style transpilation output).
//! * [`optimize`] — selection pushdown into join trees so textbook
//!   `FROM a, b WHERE ...` queries do not materialize Cartesian products.
//! * [`compile`] — lowers expressions/predicates into positional programs
//!   (column references resolved to row indexes once per operator).
//! * [`eval`] — a bag-semantics evaluator with three-valued `NULL` logic,
//!   hash equi-joins, outer joins, grouping, and correlated subqueries;
//!   [`eval_query`] runs compiled programs, [`eval_query_unoptimized`]
//!   retains the naive per-row interpreter as the ablation baseline.
//! * [`vectorized`] — columnar, batch-at-a-time execution of compiled
//!   plans over [`ColumnTable`](graphiti_relational::ColumnTable)s
//!   ([`eval_vectorized`]), differentially tested against [`eval_compiled`]
//!   which remains the row-at-a-time oracle path.
//!
//! # Example
//!
//! ```
//! use graphiti_sql::{parse_query, eval_query};
//! use graphiti_relational::{RelInstance, Table};
//! use graphiti_common::Value;
//!
//! let mut inst = RelInstance::new();
//! inst.insert_table("emp", Table::with_rows(
//!     ["id", "name"],
//!     vec![vec![Value::Int(1), Value::str("Ada")], vec![Value::Int(2), Value::str("Bob")]],
//! ));
//! let q = parse_query("SELECT e.name FROM emp AS e WHERE e.id = 1").unwrap();
//! let result = eval_query(&inst, &q).unwrap();
//! assert_eq!(result.rows, vec![vec![Value::str("Ada")]]);
//! ```

pub mod ast;
pub mod compile;
pub mod eval;
pub mod lexer;
pub mod optimize;
pub mod parser;
pub mod plan;
pub mod pretty;
pub mod vectorized;

pub use ast::{ColumnRef, JoinKind, SelectItem, SqlExpr, SqlPred, SqlQuery};
pub use eval::{eval_compiled, eval_query, eval_query_unoptimized, resolve_column};
pub use optimize::optimize;
pub use parser::parse_query;
pub use plan::{compile_query, CompiledQuery};
pub use pretty::query_to_string;
pub use vectorized::{eval_vectorized, eval_vectorized_profiled};
