//! A best-effort baseline Cypher-to-SQL transpiler.
//!
//! This crate is the stand-in for **OpenCypherTranspiler** in the Table 5
//! comparison (Appendix E of the paper).  Like the original tool it covers
//! only a slice of Cypher and offers no soundness guarantee; its known
//! weaknesses deliberately mirror the three failure modes reported in the
//! paper:
//!
//! 1. a large *unsupported* surface: `Count(*)`-style aggregates, `WITH`,
//!    chained/multiple `MATCH` clauses, `EXISTS`, set operations, `ORDER BY`
//!    and undirected edges are all rejected;
//! 2. occasionally *ill-formed output*: when a `WHERE` predicate mentions a
//!    bare variable (e.g. `u IS NOT NULL`) the generated SQL references an
//!    alias that is never bound in the `FROM` clause (Appendix E, item 2);
//! 3. occasionally *incorrect output*: `OPTIONAL MATCH` is translated with
//!    the `LEFT JOIN` oriented the wrong way (Appendix E, item 3).
//!
//! The transpiler produces SQL *text*; the experiment harness classifies
//! each output as unsupported / syntactically invalid / incorrect / correct
//! by re-parsing it and checking it against Graphiti's sound transpilation.

use graphiti_common::{Error, Result};
use graphiti_core::{SdtContext, SRC_ATTR, TGT_ATTR};
use graphiti_cypher::ast as cy;
use graphiti_cypher::pretty as cypretty;

/// Transpiles a Cypher query to SQL text on a best-effort basis.
///
/// Returns `Err(Error::Unsupported)` for queries outside the (deliberately
/// narrow) supported fragment; the returned SQL may be ill-formed or
/// semantically incorrect for some supported queries, mirroring the baseline
/// tool evaluated in the paper.
pub fn transpile_best_effort(ctx: &SdtContext, query: &cy::Query) -> Result<String> {
    let ret = match query {
        cy::Query::Return(r) => r,
        cy::Query::OrderBy { .. } => {
            return Err(Error::unsupported("baseline: ORDER BY is not supported"))
        }
        cy::Query::Union(..) | cy::Query::UnionAll(..) => {
            return Err(Error::unsupported("baseline: UNION is not supported"))
        }
    };
    if ret.distinct {
        return Err(Error::unsupported("baseline: RETURN DISTINCT is not supported"));
    }
    // Aggregates over `*` (Count(*), Avg(*)) are not supported — Appendix E,
    // item 1.
    if ret.items.iter().any(contains_star_agg) {
        return Err(Error::unsupported("baseline: Count(*) / Avg(*) are not supported"));
    }
    let (pattern, pred, optional) = match &ret.clause {
        cy::Clause::Match { prev: None, pattern, pred } => (pattern, pred, false),
        cy::Clause::OptMatch { prev, pattern, pred } => match prev.as_ref() {
            // Only the `MATCH (single node) OPTIONAL MATCH (path)` shape is
            // handled, and (incorrectly) ignores the anchoring MATCH.
            cy::Clause::Match { prev: None, pattern: anchor, .. } if anchor.steps.is_empty() => {
                (pattern, pred, true)
            }
            _ => {
                return Err(Error::unsupported(
                    "baseline: OPTIONAL MATCH after a path MATCH is not supported",
                ))
            }
        },
        cy::Clause::Match { prev: Some(_), .. } => {
            return Err(Error::unsupported("baseline: multiple MATCH clauses are not supported"))
        }
        cy::Clause::With { .. } => {
            return Err(Error::unsupported("baseline: WITH is not supported"))
        }
    };
    if pattern.edges().any(|e| e.dir == cy::Direction::Undirected) {
        return Err(Error::unsupported("baseline: undirected relationships are not supported"));
    }
    if has_exists(pred) {
        return Err(Error::unsupported("baseline: EXISTS subqueries are not supported"));
    }

    // FROM clause: one aliased table per pattern element, joined along the
    // path.  For OPTIONAL MATCH the baseline joins the optional pattern with
    // plain inner joins (it ignores the optionality and the anchoring MATCH),
    // which is the "misused OPTIONAL MATCH" bug of Appendix D item 2 /
    // Appendix E item 3: rows without a match are silently dropped.
    let _ = optional;
    let mut from = String::new();
    let mut prev_var = pattern.start.var.clone();
    let mut prev_pk = ctx.pk_of(pattern.start.label.as_str())?.clone();
    from.push_str(&format!("{} AS {}", ctx.table_of(pattern.start.label.as_str())?, prev_var));
    let join_kw = "JOIN";
    for (edge, node) in &pattern.steps {
        let edge_table = ctx.table_of(edge.label.as_str())?;
        let node_table = ctx.table_of(node.label.as_str())?;
        let node_pk = ctx.pk_of(node.label.as_str())?.clone();
        let (edge_prev, edge_next) = match edge.dir {
            cy::Direction::Right => (SRC_ATTR, TGT_ATTR),
            cy::Direction::Left => (TGT_ATTR, SRC_ATTR),
            cy::Direction::Undirected => unreachable!("rejected above"),
        };
        from.push_str(&format!(
            " {join_kw} {edge_table} AS {edge_var} ON {edge_var}.{edge_prev} = {prev_var}.{prev_pk}",
            edge_var = edge.var
        ));
        from.push_str(&format!(
            " {join_kw} {node_table} AS {node_var} ON {edge_var}.{edge_next} = {node_var}.{node_pk}",
            edge_var = edge.var,
            node_var = node.var
        ));
        prev_var = node.var.clone();
        prev_pk = node_pk;
    }

    // WHERE clause: inline property constraints plus the (rendered)
    // predicate.  Predicates over bare variables are rendered as-is, which
    // yields SQL that references an undefined alias — Appendix E item 2.
    let mut conjuncts: Vec<String> = Vec::new();
    for node in pattern.nodes() {
        for (k, v) in &node.props {
            conjuncts.push(format!("{}.{} = {}", node.var, k, sql_value(v)));
        }
    }
    for edge in pattern.edges() {
        for (k, v) in &edge.props {
            conjuncts.push(format!("{}.{} = {}", edge.var, k, sql_value(v)));
        }
    }
    if pred != &cy::Pred::True {
        conjuncts.push(render_pred(pred));
    }

    let items: Vec<String> = ret
        .items
        .iter()
        .zip(ret.names.iter())
        .map(|(e, n)| {
            let rendered = render_expr(e);
            if n.as_str() == rendered {
                rendered
            } else {
                format!("{rendered} AS {n}")
            }
        })
        .collect();

    let mut sql = format!("SELECT {} FROM {from}", items.join(", "));
    if !conjuncts.is_empty() {
        sql.push_str(&format!(" WHERE {}", conjuncts.join(" AND ")));
    }
    if ret.items.iter().any(cy::Expr::has_agg) {
        let group_cols: Vec<String> =
            ret.items.iter().filter(|e| !e.has_agg()).map(render_expr).collect();
        if !group_cols.is_empty() {
            sql.push_str(&format!(" GROUP BY {}", group_cols.join(", ")));
        }
    }
    Ok(sql)
}

fn contains_star_agg(e: &cy::Expr) -> bool {
    match e {
        cy::Expr::Agg(_, inner, _) => matches!(inner.as_ref(), cy::Expr::Star),
        cy::Expr::Arith(a, _, b) => contains_star_agg(a) || contains_star_agg(b),
        cy::Expr::Cast(_) => false,
        _ => false,
    }
}

fn has_exists(p: &cy::Pred) -> bool {
    match p {
        cy::Pred::Exists(_) => true,
        cy::Pred::And(a, b) | cy::Pred::Or(a, b) => has_exists(a) || has_exists(b),
        cy::Pred::Not(inner) => has_exists(inner),
        _ => false,
    }
}

fn sql_value(v: &graphiti_common::Value) -> String {
    graphiti_sql::pretty::value_to_string(v)
}

fn render_expr(e: &cy::Expr) -> String {
    // The Cypher rendering of property accesses, aggregates, and arithmetic
    // happens to be valid SQL for the fragment the baseline accepts; bare
    // variables are rendered verbatim, which is where ill-formed output
    // comes from.
    cypretty::expr_to_string(e)
}

fn render_pred(p: &cy::Pred) -> String {
    match p {
        cy::Pred::True => "TRUE".to_string(),
        cy::Pred::False => "FALSE".to_string(),
        cy::Pred::Cmp(a, op, b) => format!("{} {} {}", render_expr(a), op.as_sql(), render_expr(b)),
        cy::Pred::IsNull(e) => format!("{} IS NULL", render_expr(e)),
        cy::Pred::In(e, vs) => {
            let items: Vec<String> = vs.iter().map(sql_value).collect();
            format!("{} IN ({})", render_expr(e), items.join(", "))
        }
        cy::Pred::Exists(_) => "TRUE".to_string(),
        cy::Pred::And(a, b) => format!("({} AND {})", render_pred(a), render_pred(b)),
        cy::Pred::Or(a, b) => format!("({} OR {})", render_pred(a), render_pred(b)),
        cy::Pred::Not(inner) => format!("NOT ({})", render_pred(inner)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphiti_common::Value;
    use graphiti_core::{infer_sdt, transpile_query};
    use graphiti_cypher::{eval_query as eval_cypher, parse_query};
    use graphiti_graph::{EdgeType, GraphInstance, GraphSchema, NodeType};
    use graphiti_sql::{eval_query as eval_sql, parse_query as parse_sql};
    use graphiti_transformer::apply_to_graph;

    fn emp_schema() -> GraphSchema {
        GraphSchema::new()
            .with_node(NodeType::new("EMP", ["id", "name"]))
            .with_node(NodeType::new("DEPT", ["dnum", "dname"]))
            .with_edge(EdgeType::new("WORK_AT", "EMP", "DEPT", ["wid"]))
    }

    fn emp_graph() -> GraphInstance {
        let mut g = GraphInstance::new();
        let a = g.add_node("EMP", [("id", Value::Int(1)), ("name", Value::str("A"))]);
        let b = g.add_node("EMP", [("id", Value::Int(2)), ("name", Value::str("B"))]);
        let cs = g.add_node("DEPT", [("dnum", Value::Int(1)), ("dname", Value::str("CS"))]);
        let _ee = g.add_node("DEPT", [("dnum", Value::Int(2)), ("dname", Value::str("EE"))]);
        g.add_edge("WORK_AT", a, cs, [("wid", Value::Int(10))]);
        g.add_edge("WORK_AT", b, cs, [("wid", Value::Int(11))]);
        g
    }

    #[test]
    fn simple_path_queries_are_translated_correctly() {
        let ctx = infer_sdt(&emp_schema()).unwrap();
        let q = parse_query(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WHERE n.id = 1 RETURN n.name, m.dname",
        )
        .unwrap();
        let sql_text = transpile_best_effort(&ctx, &q).unwrap();
        let sql = parse_sql(&sql_text).expect("baseline output should parse");
        let induced =
            apply_to_graph(&ctx.sdt, &ctx.graph_schema, &emp_graph(), &ctx.induced_schema).unwrap();
        let got = eval_sql(&induced, &sql).unwrap();
        let want = eval_cypher(&emp_schema(), &emp_graph(), &q).unwrap();
        assert!(got.equivalent(&want));
    }

    #[test]
    fn count_star_and_with_are_unsupported() {
        let ctx = infer_sdt(&emp_schema()).unwrap();
        for text in [
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname, Count(*)",
            "MATCH (n:EMP) WITH n MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname",
            "MATCH (n:EMP) RETURN n.name UNION MATCH (m:DEPT) RETURN m.dname",
            "MATCH (n:EMP)-[e:WORK_AT]-(m:DEPT) RETURN n.name",
            "MATCH (n:EMP) RETURN n.name ORDER BY n.name",
            "MATCH (m:DEPT) WHERE EXISTS ((n:EMP)-[e:WORK_AT]->(m:DEPT)) RETURN m.dname",
        ] {
            let q = parse_query(text).unwrap();
            let err = transpile_best_effort(&ctx, &q).unwrap_err();
            assert!(err.is_unsupported(), "{text} should be unsupported");
        }
    }

    #[test]
    fn aggregate_without_star_is_supported_and_correct() {
        let ctx = infer_sdt(&emp_schema()).unwrap();
        let q = parse_query(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname AS name, Count(n.id) AS num",
        )
        .unwrap();
        let sql_text = transpile_best_effort(&ctx, &q).unwrap();
        let sql = parse_sql(&sql_text).unwrap();
        let induced =
            apply_to_graph(&ctx.sdt, &ctx.graph_schema, &emp_graph(), &ctx.induced_schema).unwrap();
        let got = eval_sql(&induced, &sql).unwrap();
        let want = eval_cypher(&emp_schema(), &emp_graph(), &q).unwrap();
        assert!(got.equivalent(&want));
    }

    #[test]
    fn optional_match_translation_is_incorrect() {
        // Appendix E item 3 / Appendix D item 2: the baseline's LEFT JOIN
        // orientation drops the rows that Cypher's OPTIONAL MATCH keeps.
        let ctx = infer_sdt(&emp_schema()).unwrap();
        let mut g = emp_graph();
        g.add_node("EMP", [("id", Value::Int(3)), ("name", Value::str("C"))]);
        let q = parse_query(
            "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname",
        )
        .unwrap();
        let sql_text = transpile_best_effort(&ctx, &q).unwrap();
        let sql = parse_sql(&sql_text).expect("output parses");
        let induced = apply_to_graph(&ctx.sdt, &ctx.graph_schema, &g, &ctx.induced_schema).unwrap();
        let got = eval_sql(&induced, &sql).unwrap();
        let want = eval_cypher(&emp_schema(), &g, &q).unwrap();
        // The sound transpiler agrees with Cypher; the baseline does not.
        let sound = transpile_query(&ctx, &q).unwrap();
        let sound_result = eval_sql(&induced, &sound).unwrap();
        assert!(sound_result.equivalent(&want));
        assert!(!got.equivalent(&want));
    }

    #[test]
    fn bare_variable_predicates_yield_invalid_sql() {
        // Appendix E item 2: the rendered predicate references `m` as a
        // column, which no SQL table provides.
        let ctx = infer_sdt(&emp_schema()).unwrap();
        let q =
            parse_query("MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WHERE NOT m IS NULL RETURN n.name")
                .unwrap();
        let sql_text = transpile_best_effort(&ctx, &q).unwrap();
        let induced =
            apply_to_graph(&ctx.sdt, &ctx.graph_schema, &emp_graph(), &ctx.induced_schema).unwrap();
        let usable = parse_sql(&sql_text).and_then(|sql| eval_sql(&induced, &sql));
        assert!(usable.is_err(), "expected ill-formed SQL, got a usable query");
    }
}
