//! Fast corpus smoke test: everything in the corpus is well-formed, with no
//! checking budgets involved — parsing and counting only.

use graphiti_benchmarks::{full_corpus, small_corpus, Category};
use std::collections::BTreeSet;

#[test]
fn full_corpus_ids_are_unique_and_counts_match_table1() {
    let corpus = full_corpus();
    let total: usize = Category::all().iter().map(|c| c.paper_count()).sum();
    assert_eq!(corpus.len(), total, "full corpus must match the Table 1 total");
    let ids: BTreeSet<&str> = corpus.iter().map(|b| b.id.as_str()).collect();
    assert_eq!(ids.len(), corpus.len(), "benchmark ids must be unique");
}

#[test]
fn every_benchmark_parses() {
    for bench in full_corpus() {
        bench.cypher().unwrap_or_else(|e| panic!("{}: cypher does not parse: {e}", bench.id));
        bench.sql().unwrap_or_else(|e| panic!("{}: sql does not parse: {e}", bench.id));
        bench
            .transformer()
            .unwrap_or_else(|e| panic!("{}: transformer does not parse: {e}", bench.id));
        bench
            .graph_schema
            .validate()
            .unwrap_or_else(|e| panic!("{}: graph schema invalid: {e}", bench.id));
    }
}

#[test]
fn small_corpus_returns_exactly_the_scaled_count() {
    // Expected totals computed by hand from the Table 1 per-category counts
    // (12, 26, 7, 60, 100, 205) scaled down with a floor of 2 per category,
    // independently of the implementation's formula.
    for (scale, expected) in [(1usize, 410usize), (5, 82), (10, 42), (100, 12)] {
        let corpus = small_corpus(scale);
        assert_eq!(
            corpus.len(),
            expected,
            "small_corpus({scale}) must return exactly {expected} entries"
        );
        let ids: BTreeSet<&str> = corpus.iter().map(|b| b.id.as_str()).collect();
        assert_eq!(ids.len(), corpus.len(), "small_corpus({scale}) ids must be unique");
        for cat in Category::all() {
            let n = corpus.iter().filter(|b| b.category == cat).count();
            assert!(n >= 2, "small_corpus({scale}) must keep >= 2 {cat:?} entries, got {n}");
        }
    }
}
