//! Deterministic benchmark generation.
//!
//! The paper's VeriEQL, Mediator, and GPT-Translate categories are built
//! from existing SQL suites by (manually or automatically) translating
//! queries to Cypher; the Mediator category in particular uses the *induced*
//! relational schemas as the SQL-side schemas.  We rebuild those categories
//! the same way: Cypher queries are drawn from schema-generic templates,
//! the correct SQL side is obtained from Graphiti's own sound transpiler
//! over the induced schema (then rendered to SQL text), and a calibrated
//! fraction of pairs is made *incorrect* by mutating the SQL — reproducing
//! the error profile of LLM translations reported in the paper (≈13% for
//! GPT-Translate, a handful for the manually-translated VeriEQL set).

use crate::corpus::{Benchmark, Category};
use crate::schemas::{all_domains, Domain};
use graphiti_common::Value;
use graphiti_core::{infer_sdt, transpile_query};
use graphiti_graph::GraphSchema;
use graphiti_relational::RelSchema;
use graphiti_sql::{SqlExpr, SqlPred, SqlQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Renders the identity transformer for a relational schema: every table
/// maps to itself.  Used when the target schema *is* the induced schema.
pub fn identity_transformer_text(schema: &RelSchema) -> String {
    schema
        .relations
        .iter()
        .map(|rel| {
            let vars: Vec<String> = (0..rel.arity()).map(|i| format!("v{i}")).collect();
            format!("{}({}) -> {}({})", rel.name, vars.join(", "), rel.name, vars.join(", "))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Generates `count` benchmarks for a category.  `offset` keeps ids unique
/// when hand-written benchmarks already occupy the first slots.
pub fn generate_category(category: Category, count: usize, offset: usize) -> Vec<Benchmark> {
    let domains = all_domains();
    let buggy_quota = buggy_quota(category, count);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let domain = &domains[(offset + i) % domains.len()];
        let make_buggy = i < buggy_quota;
        let seed = category_seed(category) ^ ((offset + i) as u64).wrapping_mul(0x9E37_79B9);
        out.push(generate_one(category, domain, offset + i, make_buggy, seed));
    }
    out
}

/// How many generated pairs in this category should carry an injected bug,
/// matching the non-equivalence counts of Table 2.
fn buggy_quota(category: Category, count: usize) -> usize {
    let (paper_buggy, paper_total) = match category {
        Category::VeriEql => (4, 60),
        Category::GptTranslate => (27, 205),
        _ => (0, 1),
    };
    (count * paper_buggy) / paper_total
}

fn category_seed(category: Category) -> u64 {
    match category {
        Category::StackOverflow => 0x5101,
        Category::Tutorial => 0x7102,
        Category::Academic => 0xAC03,
        Category::VeriEql => 0x7E04,
        Category::Mediator => 0x3E05,
        Category::GptTranslate => 0x6906,
    }
}

fn generate_one(
    category: Category,
    domain: &Domain,
    index: usize,
    make_buggy: bool,
    seed: u64,
) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(seed);
    let ctx = infer_sdt(&domain.graph_schema).expect("domain schema must be valid");
    let cypher_text = render_template(&domain.graph_schema, category, &mut rng);
    let cypher = graphiti_cypher::parse_query(&cypher_text)
        .unwrap_or_else(|e| panic!("generated Cypher must parse ({cypher_text}): {e}"));
    let mut sql = transpile_query(&ctx, &cypher).expect("generated Cypher must transpile");
    let mut equivalent = true;
    if make_buggy {
        if let Some(mutated) = mutate(&sql, &mut rng) {
            sql = mutated;
            equivalent = false;
        }
    }
    let sql_text = graphiti_sql::query_to_string(&sql);
    Benchmark {
        id: format!("{}/{}-{index:03}", category.name().to_ascii_lowercase(), domain.name),
        category,
        graph_schema: domain.graph_schema.clone(),
        target_schema: ctx.induced_schema.clone(),
        cypher_text,
        sql_text,
        transformer_text: identity_transformer_text(&ctx.induced_schema),
        expected_equivalent: equivalent,
    }
}

// ------------------------------------------------------------- templates

/// Schema-generic Cypher templates.  `S`/`T` are the source/target labels of
/// an edge type `E`; `k1`/`k2` are property keys (the default key first).
fn render_template(schema: &GraphSchema, category: Category, rng: &mut StdRng) -> String {
    let edge = &schema.edge_types[rng.gen_range(0..schema.edge_types.len())];
    let src = schema.node_type(edge.src.as_str()).expect("edge source exists");
    let tgt = schema.node_type(edge.tgt.as_str()).expect("edge target exists");
    let e = edge.label.as_str();
    let s = src.label.as_str();
    let t = tgt.label.as_str();
    let s_k1 = src.keys[0].as_str();
    let s_k2 = src.keys.get(1).unwrap_or(&src.keys[0]).as_str();
    let t_k1 = tgt.keys[0].as_str();
    let t_k2 = tgt.keys.get(1).unwrap_or(&tgt.keys[0]).as_str();
    let c1: i64 = rng.gen_range(0..12);
    let c2: i64 = rng.gen_range(0..12);

    // Mediator-style benchmarks must stay inside the aggregation-free,
    // outer-join-free, equality-only fragment handled by the deductive
    // backend; the other categories sample from everything.
    let template_id = if category == Category::Mediator {
        [0usize, 1, 2][rng.gen_range(0..3usize)]
    } else {
        rng.gen_range(0..10)
    };
    match template_id {
        0 => format!("MATCH (a:{s}) RETURN a.{s_k1} AS c0, a.{s_k2} AS c1"),
        1 => format!("MATCH (a:{s})-[r:{e}]->(b:{t}) RETURN a.{s_k1} AS c0, b.{t_k1} AS c1"),
        2 => format!(
            "MATCH (a:{s})-[r:{e}]->(b:{t}) WHERE a.{s_k1} = {c1} \
             RETURN a.{s_k2} AS c0, b.{t_k2} AS c1"
        ),
        3 => format!("MATCH (a:{s})-[r:{e}]->(b:{t}) RETURN b.{t_k2} AS c0, Count(a) AS c1"),
        4 => format!("MATCH (a:{s})-[r:{e}]->(b:{t}) WHERE b.{t_k1} > {c1} RETURN a.{s_k1} AS c0"),
        5 => format!(
            "MATCH (a:{s}) OPTIONAL MATCH (a:{s})-[r:{e}]->(b:{t}) \
             RETURN a.{s_k1} AS c0, b.{t_k1} AS c1"
        ),
        6 => format!(
            "MATCH (a:{s})-[r:{e}]->(b:{t}) MATCH (c:{s})-[r2:{e}]->(b:{t}) \
             WHERE a.{s_k1} < c.{s_k1} RETURN a.{s_k1} AS c0, c.{s_k1} AS c1"
        ),
        7 => format!(
            "MATCH (a:{s}) RETURN a.{s_k1} AS c0 UNION ALL MATCH (b:{t}) RETURN b.{t_k1} AS c0"
        ),
        8 => format!("MATCH (a:{s})-[r:{e}]->(b:{t}) RETURN a.{s_k2} AS c0, Sum(b.{t_k1}) AS c1"),
        _ => format!(
            "MATCH (a:{s})-[r:{e}]->(b:{t}) WHERE a.{s_k1} IN [{c1}, {c2}] \
             RETURN a.{s_k2} AS c0, b.{t_k2} AS c1"
        ),
    }
}

// ------------------------------------------------------------- mutations

/// Injects a semantics-changing bug into a SQL query, mirroring the bug
/// classes catalogued in Appendix D (wrong constants, dropped predicates,
/// wrong aggregation function, dropped output columns).
pub fn mutate(q: &SqlQuery, rng: &mut StdRng) -> Option<SqlQuery> {
    let strategies: [fn(&SqlQuery) -> Option<SqlQuery>; 4] =
        [mutate_constant, mutate_drop_filter, mutate_aggregate, mutate_drop_column];
    let start = rng.gen_range(0..strategies.len());
    for i in 0..strategies.len() {
        if let Some(mutated) = strategies[(start + i) % strategies.len()](q) {
            return Some(mutated);
        }
    }
    // Last resort (always applicable, always semantics-changing on some
    // instance): double every row's multiplicity.
    Some(SqlQuery::UnionAll(Box::new(q.clone()), Box::new(q.clone())))
}

fn map_query(q: &SqlQuery, f: &mut dyn FnMut(&SqlQuery) -> Option<SqlQuery>) -> SqlQuery {
    if let Some(replaced) = f(q) {
        return replaced;
    }
    match q {
        SqlQuery::Table(n) => SqlQuery::Table(n.clone()),
        SqlQuery::Project { input, items, distinct } => SqlQuery::Project {
            input: Box::new(map_query(input, f)),
            items: items.clone(),
            distinct: *distinct,
        },
        SqlQuery::Select { input, pred } => {
            SqlQuery::Select { input: Box::new(map_query(input, f)), pred: pred.clone() }
        }
        SqlQuery::Rename { input, alias } => {
            SqlQuery::Rename { input: Box::new(map_query(input, f)), alias: alias.clone() }
        }
        SqlQuery::Join { left, right, kind, pred } => SqlQuery::Join {
            left: Box::new(map_query(left, f)),
            right: Box::new(map_query(right, f)),
            kind: *kind,
            pred: pred.clone(),
        },
        SqlQuery::Union(a, b) => {
            SqlQuery::Union(Box::new(map_query(a, f)), Box::new(map_query(b, f)))
        }
        SqlQuery::UnionAll(a, b) => {
            SqlQuery::UnionAll(Box::new(map_query(a, f)), Box::new(map_query(b, f)))
        }
        SqlQuery::GroupBy { input, keys, items, having } => SqlQuery::GroupBy {
            input: Box::new(map_query(input, f)),
            keys: keys.clone(),
            items: items.clone(),
            having: having.clone(),
        },
        SqlQuery::With { name, definition, body } => SqlQuery::With {
            name: name.clone(),
            definition: Box::new(map_query(definition, f)),
            body: Box::new(map_query(body, f)),
        },
        SqlQuery::OrderBy { input, keys } => {
            SqlQuery::OrderBy { input: Box::new(map_query(input, f)), keys: keys.clone() }
        }
    }
}

/// Changes the first integer constant found in a selection predicate.
fn mutate_constant(q: &SqlQuery) -> Option<SqlQuery> {
    let mut changed = false;
    let result = map_query(q, &mut |node| match node {
        SqlQuery::Select { input, pred } if !changed => {
            let mutated = mutate_pred_constant(pred)?;
            changed = true;
            Some(SqlQuery::Select { input: input.clone(), pred: mutated })
        }
        _ => None,
    });
    changed.then_some(result)
}

fn mutate_pred_constant(p: &SqlPred) -> Option<SqlPred> {
    match p {
        SqlPred::Cmp(a, op, b) => {
            if let SqlExpr::Value(Value::Int(i)) = b.as_ref() {
                return Some(SqlPred::Cmp(
                    a.clone(),
                    *op,
                    Box::new(SqlExpr::Value(Value::Int(i + 1))),
                ));
            }
            if let SqlExpr::Value(Value::Int(i)) = a.as_ref() {
                return Some(SqlPred::Cmp(
                    Box::new(SqlExpr::Value(Value::Int(i + 1))),
                    *op,
                    b.clone(),
                ));
            }
            None
        }
        SqlPred::InList(e, vs) if !vs.is_empty() => {
            let mut vs = vs.clone();
            vs.pop();
            Some(SqlPred::InList(e.clone(), vs))
        }
        SqlPred::And(a, b) => {
            if let Some(ma) = mutate_pred_constant(a) {
                Some(SqlPred::And(Box::new(ma), b.clone()))
            } else {
                mutate_pred_constant(b).map(|mb| SqlPred::And(a.clone(), Box::new(mb)))
            }
        }
        _ => None,
    }
}

/// Drops the outermost selection filter entirely.
fn mutate_drop_filter(q: &SqlQuery) -> Option<SqlQuery> {
    let mut changed = false;
    let result = map_query(q, &mut |node| match node {
        SqlQuery::Select { input, pred } if !changed && !matches!(pred, SqlPred::Bool(true)) => {
            changed = true;
            Some((**input).clone())
        }
        _ => None,
    });
    changed.then_some(result)
}

/// Swaps the aggregation function of the first aggregate projection item.
fn mutate_aggregate(q: &SqlQuery) -> Option<SqlQuery> {
    use graphiti_common::AggKind;
    let mut changed = false;
    let result = map_query(q, &mut |node| match node {
        SqlQuery::GroupBy { input, keys, items, having } if !changed => {
            let mut items = items.clone();
            for item in &mut items {
                if let SqlExpr::Agg(kind, inner, distinct) = &item.expr {
                    let new_kind = match kind {
                        AggKind::Count => AggKind::Sum,
                        AggKind::Sum => AggKind::Count,
                        AggKind::Min => AggKind::Max,
                        AggKind::Max => AggKind::Min,
                        AggKind::Avg => AggKind::Sum,
                    };
                    let new_inner = if matches!(inner.as_ref(), SqlExpr::Star) {
                        // SUM(*) is not valid SQL; aggregate the first
                        // grouping key instead.
                        Box::new(keys.first().cloned().unwrap_or(SqlExpr::Value(Value::Int(1))))
                    } else {
                        inner.clone()
                    };
                    item.expr = SqlExpr::Agg(new_kind, new_inner, *distinct);
                    changed = true;
                    break;
                }
            }
            changed.then_some(SqlQuery::GroupBy {
                input: input.clone(),
                keys: keys.clone(),
                items,
                having: having.clone(),
            })
        }
        _ => None,
    });
    changed.then_some(result)
}

/// Drops the last projected column (changing the output arity).
fn mutate_drop_column(q: &SqlQuery) -> Option<SqlQuery> {
    match q {
        SqlQuery::Project { input, items, distinct } if items.len() > 1 => {
            Some(SqlQuery::Project {
                input: input.clone(),
                items: items[..items.len() - 1].to_vec(),
                distinct: *distinct,
            })
        }
        SqlQuery::GroupBy { input, keys, items, having } if items.len() > 1 => {
            Some(SqlQuery::GroupBy {
                input: input.clone(),
                keys: keys.clone(),
                items: items[..items.len() - 1].to_vec(),
                having: having.clone(),
            })
        }
        SqlQuery::OrderBy { input, keys } => mutate_drop_column(input)
            .map(|q| SqlQuery::OrderBy { input: Box::new(q), keys: keys.clone() }),
        SqlQuery::UnionAll(a, b) => match (mutate_drop_column(a), mutate_drop_column(b)) {
            (Some(ma), Some(mb)) => Some(SqlQuery::UnionAll(Box::new(ma), Box::new(mb))),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphiti_sql::parse_query as parse_sql;

    #[test]
    fn identity_transformer_round_trips() {
        let domain = crate::schemas::employees();
        let ctx = infer_sdt(&domain.graph_schema).unwrap();
        let text = identity_transformer_text(&ctx.induced_schema);
        let t = graphiti_transformer::parse_transformer(&text).unwrap();
        assert_eq!(t.rule_count(), ctx.induced_schema.relations.len());
        assert!(t.is_safe());
    }

    #[test]
    fn generated_benchmarks_parse_and_transpile() {
        for cat in Category::all() {
            for b in generate_category(cat, 6, 0) {
                let cypher = b.cypher().unwrap_or_else(|e| panic!("{}: {e}", b.id));
                assert!(parse_sql(&b.sql_text).is_ok(), "{}: {}", b.id, b.sql_text);
                let t = b.transformer().unwrap();
                assert!(t.is_safe());
                let reduction = graphiti_core::reduce(&b.graph_schema, &cypher, &t).unwrap();
                assert!(reduction.transpiled.size() > 0);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_category(Category::GptTranslate, 10, 3);
        let b = generate_category(Category::GptTranslate, 10, 3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.cypher_text, y.cypher_text);
            assert_eq!(x.sql_text, y.sql_text);
            assert_eq!(x.expected_equivalent, y.expected_equivalent);
        }
    }

    #[test]
    fn buggy_quotas_match_table_2() {
        assert_eq!(buggy_quota(Category::VeriEql, 60), 4);
        assert_eq!(buggy_quota(Category::GptTranslate, 205), 27);
        assert_eq!(buggy_quota(Category::Mediator, 100), 0);
        assert_eq!(buggy_quota(Category::StackOverflow, 8), 0);
    }

    #[test]
    fn mediator_benchmarks_stay_in_the_deductive_fragment() {
        for b in generate_category(Category::Mediator, 12, 0) {
            let sql = b.sql().unwrap();
            assert!(!sql.has_agg(), "{} uses aggregation", b.id);
            assert!(!sql.has_outer_join(), "{} uses outer joins", b.id);
        }
    }

    #[test]
    fn mutations_change_semantics_syntactically() {
        let mut rng = StdRng::seed_from_u64(99);
        let q =
            parse_sql("SELECT a.x AS c0, Count(*) AS c1 FROM t AS a WHERE a.x = 3 GROUP BY a.x")
                .unwrap();
        let mutated = mutate(&q, &mut rng).expect("mutation applies");
        assert_ne!(q, mutated);
    }
}
