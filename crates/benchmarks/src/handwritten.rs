//! Hand-written benchmarks reconstructing the concrete query pairs printed
//! in the paper (the motivating example of Section 2, the Neo4j-tutorial
//! `OPTIONAL MATCH` bug of Appendix D, ...) plus representative
//! StackOverflow/Tutorial/Academic pairs.

use crate::corpus::{Benchmark, Category};
use crate::schemas::{self, Domain};

fn bench(
    id: &str,
    category: Category,
    domain: &Domain,
    cypher: &str,
    sql: &str,
    expected_equivalent: bool,
) -> Benchmark {
    Benchmark {
        id: id.to_string(),
        category,
        graph_schema: domain.graph_schema.clone(),
        target_schema: domain.target_schema.clone(),
        cypher_text: cypher.to_string(),
        sql_text: sql.to_string(),
        transformer_text: domain.transformer_text.clone(),
        expected_equivalent,
    }
}

/// The hand-written benchmarks for a category (may be fewer than the
/// category's Table 1 count; the generator fills the remainder).
pub fn handwritten_for(category: Category) -> Vec<Benchmark> {
    match category {
        Category::Academic => academic(),
        Category::Tutorial => tutorial(),
        Category::StackOverflow => stackoverflow(),
        _ => Vec::new(),
    }
}

fn academic() -> Vec<Benchmark> {
    let bio = schemas::biomedical();
    vec![
        // Section 2 / Figure 4: the published pair that is *not* equivalent
        // (the Cypher query double-counts paths through shared sentences).
        bench(
            "academic/motivating-example",
            Category::Academic,
            &bio,
            "MATCH (c1:CONCEPT {CID: 1})-[r1:CS]->(p1:PA)-[r2:SP]->(s:SENTENCE) \
             WITH s \
             MATCH (s:SENTENCE)<-[r3:SP]-(p2:PA)<-[r4:CS]-(c2:CONCEPT) \
             RETURN c2.CID AS cid, Count(*) AS freq",
            "SELECT c2.CID AS cid, Count(*) AS freq FROM Cs AS c2, Pa AS p2, Sp AS s2 \
             WHERE s2.PID = p2.PID AND p2.CSID = c2.CSID AND s2.SID IN ( \
               SELECT s1.SID FROM Cs AS c1, Pa AS p1, Sp AS s1 \
               WHERE s1.PID = p1.PID AND p1.CSID = c1.CSID AND c1.CID = 1 ) \
             GROUP BY CID",
            false,
        ),
        bench(
            "academic/concept-lookup",
            Category::Academic,
            &bio,
            "MATCH (c:CONCEPT) WHERE c.CID = 1 RETURN c.Name AS name",
            "SELECT c.NAME AS name FROM Concept AS c WHERE c.CID = 1",
            true,
        ),
        bench(
            "academic/sentences-per-article",
            Category::Academic,
            &bio,
            "MATCH (s:SENTENCE) RETURN s.PMID AS pmid, Count(s.SID) AS n",
            "SELECT s.PMID AS pmid, Count(s.SID) AS n FROM Sentence AS s GROUP BY s.PMID",
            true,
        ),
    ]
}

fn tutorial() -> Vec<Benchmark> {
    let retail = schemas::retail();
    vec![
        // Appendix D item 2: the Neo4j tutorial pair where OPTIONAL MATCH
        // over a three-node path is not equivalent to a chain of LEFT JOINs.
        bench(
            "tutorial/neo4j-optional-match",
            Category::Tutorial,
            &retail,
            "MATCH (c:Customer {CompanyName: 'Drachenblut Delikatessen'}) \
             OPTIONAL MATCH (p:Product)<-[od:CONTAINS]-(o:Order)<-[pu:PURCHASED]-(c) \
             RETURN p.ProductName AS pname, Sum(od.UnitPrice * od.Quantity) AS Volume",
            "SELECT P.ProductName AS pname, Sum(OD.UnitPrice * OD.Quantity) AS Volume \
             FROM Customers AS C \
             LEFT JOIN Orders AS O ON C.CustomerID = O.CustomerID2 \
             LEFT JOIN OrderDetails AS OD ON O.OrderID = OD.OrderID2 \
             LEFT JOIN Products AS P ON OD.ProductID2 = P.ProductID \
             WHERE C.CompanyName = 'Drachenblut Delikatessen' GROUP BY P.ProductName",
            false,
        ),
        bench(
            "tutorial/products-per-order",
            Category::Tutorial,
            &retail,
            "MATCH (o:Order)-[od:CONTAINS]->(p:Product) \
             RETURN o.OrderID AS oid, Count(p) AS cnt",
            "SELECT od.OrderID2 AS oid, Count(*) AS cnt FROM OrderDetails AS od \
             GROUP BY od.OrderID2",
            true,
        ),
        // The "customers without existing orders" example from the Neo4j
        // guide (reference [37] of the paper), written correctly.
        bench(
            "tutorial/customers-without-orders",
            Category::Tutorial,
            &retail,
            "MATCH (c:Customer) WHERE NOT EXISTS ((c)-[pu:PURCHASED]->(o:Order)) \
             RETURN c.CompanyName AS name",
            "SELECT c.CompanyName AS name FROM Customers AS c \
             WHERE NOT EXISTS (SELECT o.OrderID FROM Orders AS o WHERE o.CustomerID2 = c.CustomerID)",
            true,
        ),
    ]
}

fn stackoverflow() -> Vec<Benchmark> {
    let social = schemas::social();
    let movies = schemas::movies();
    let university = schemas::university();
    vec![
        bench(
            "stackoverflow/users-with-posts",
            Category::StackOverflow,
            &social,
            "MATCH (u:USR)-[p:POSTED]->(pic:PIC) RETURN DISTINCT u.UsrName AS name",
            "SELECT DISTINCT u.UName AS name FROM Users AS u JOIN Posts AS p ON p.Poster = u.UId",
            true,
        ),
        bench(
            "stackoverflow/actors-in-recent-movies",
            Category::StackOverflow,
            &movies,
            "MATCH (a:ACTOR)-[r:ACTS_IN]->(m:MOVIE) WHERE m.ReleaseYear > 2000 \
             RETURN a.ActName AS name, m.Title AS title",
            "SELECT a.AName AS name, m.MTitle AS title FROM Actors AS a \
             JOIN Casting AS c ON c.CastActor = a.AId \
             JOIN Movies AS m ON c.CastMovie = m.MId WHERE m.MYear > 2000",
            true,
        ),
        bench(
            "stackoverflow/courses-per-student",
            Category::StackOverflow,
            &university,
            "MATCH (s:STUDENT)-[e:ENROLLED]->(c:COURSE) \
             RETURN s.StuName AS name, Count(c) AS n",
            "SELECT s.SName AS name, Count(*) AS n FROM Students AS s \
             JOIN Enrollments AS e ON e.EStu = s.SId GROUP BY s.SName",
            true,
        ),
        // The single StackOverflow bug of Table 2: the asker's SQL uses an
        // inner join while the intended Cypher uses OPTIONAL MATCH.
        bench(
            "stackoverflow/optional-vs-inner-join",
            Category::StackOverflow,
            &university,
            "MATCH (s:STUDENT) OPTIONAL MATCH (s:STUDENT)-[e:ENROLLED]->(c:COURSE) \
             RETURN s.StuName AS name, c.CrsTitle AS title",
            "SELECT s.SName AS name, c.CTitle AS title FROM Students AS s \
             JOIN Enrollments AS e ON e.EStu = s.SId JOIN Courses AS c ON e.ECrs = c.CId",
            false,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphiti_core::reduce;

    #[test]
    fn handwritten_benchmarks_reduce_successfully() {
        for cat in Category::all() {
            for b in handwritten_for(cat) {
                let cypher = b.cypher().unwrap_or_else(|e| panic!("{}: {e}", b.id));
                let sql = b.sql().unwrap_or_else(|e| panic!("{}: {e}", b.id));
                let transformer = b.transformer().unwrap_or_else(|e| panic!("{}: {e}", b.id));
                let reduction = reduce(&b.graph_schema, &cypher, &transformer)
                    .unwrap_or_else(|e| panic!("{}: {e}", b.id));
                assert!(reduction.transpiled.size() > 0);
                assert!(sql.size() > 0);
            }
        }
    }

    #[test]
    fn category_assignment_and_bug_counts() {
        assert_eq!(handwritten_for(Category::Academic).len(), 3);
        assert_eq!(handwritten_for(Category::Tutorial).len(), 3);
        assert_eq!(handwritten_for(Category::StackOverflow).len(), 4);
        let buggy =
            |c: Category| handwritten_for(c).iter().filter(|b| !b.expected_equivalent).count();
        assert_eq!(buggy(Category::Academic), 1);
        assert_eq!(buggy(Category::Tutorial), 1);
        assert_eq!(buggy(Category::StackOverflow), 1);
        assert_eq!(handwritten_for(Category::Mediator).len(), 0);
    }
}
