//! The benchmark corpus: categories, the `Benchmark` record, and corpus
//! assembly mirroring Table 1 of the paper.

use crate::generator::{generate_category, identity_transformer_text};
use crate::handwritten;
use graphiti_common::Result;
use graphiti_cypher::Query as CypherQuery;
use graphiti_graph::GraphSchema;
use graphiti_relational::RelSchema;
use graphiti_sql::SqlQuery;
use graphiti_transformer::Transformer;
use serde::{Deserialize, Serialize};

/// The six benchmark categories of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Query pairs from StackOverflow posts.
    StackOverflow,
    /// Query pairs from tutorials (including the Neo4j "Cypher for SQL
    /// users" guide).
    Tutorial,
    /// Query pairs from academic papers.
    Academic,
    /// SQL queries from the VeriEQL benchmark suite, manually translated to
    /// Cypher.
    VeriEql,
    /// SQL query pairs from the Mediator evaluation set, rephrased as
    /// Cypher-vs-SQL pairs over induced schemas.
    Mediator,
    /// SQL queries transpiled to Cypher by an LLM-style noisy translator.
    GptTranslate,
}

impl Category {
    /// All categories, in Table 1 order.
    pub fn all() -> [Category; 6] {
        [
            Category::StackOverflow,
            Category::Tutorial,
            Category::Academic,
            Category::VeriEql,
            Category::Mediator,
            Category::GptTranslate,
        ]
    }

    /// Display name used in the tables.
    pub fn name(&self) -> &'static str {
        match self {
            Category::StackOverflow => "StackOverflow",
            Category::Tutorial => "Tutorial",
            Category::Academic => "Academic",
            Category::VeriEql => "VeriEQL",
            Category::Mediator => "Mediator",
            Category::GptTranslate => "GPT-Translate",
        }
    }

    /// The number of benchmarks this category contributes in Table 1.
    pub fn paper_count(&self) -> usize {
        match self {
            Category::StackOverflow => 12,
            Category::Tutorial => 26,
            Category::Academic => 7,
            Category::VeriEql => 60,
            Category::Mediator => 100,
            Category::GptTranslate => 205,
        }
    }
}

/// One benchmark: a (Cypher, SQL) pair over explicit schemas plus the user
/// transformer relating them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Benchmark {
    /// Stable identifier, e.g. `academic/motivating-example`.
    pub id: String,
    /// The category the pair belongs to.
    pub category: Category,
    /// The property-graph schema.
    pub graph_schema: GraphSchema,
    /// The target relational schema.
    pub target_schema: RelSchema,
    /// Cypher query text.
    pub cypher_text: String,
    /// SQL query text over the target schema.
    pub sql_text: String,
    /// Transformer text (graph labels → target tables).
    pub transformer_text: String,
    /// Ground truth: whether the pair is intended/known to be equivalent.
    pub expected_equivalent: bool,
}

impl Benchmark {
    /// Parses the Cypher side.
    pub fn cypher(&self) -> Result<CypherQuery> {
        graphiti_cypher::parse_query(&self.cypher_text)
    }

    /// Parses the SQL side.
    pub fn sql(&self) -> Result<SqlQuery> {
        graphiti_sql::parse_query(&self.sql_text)
    }

    /// Parses the transformer.
    pub fn transformer(&self) -> Result<Transformer> {
        graphiti_transformer::parse_transformer(&self.transformer_text)
    }
}

/// Builds the full 410-benchmark corpus with the same per-category counts as
/// Table 1 of the paper.
pub fn full_corpus() -> Vec<Benchmark> {
    corpus_with_counts(&Category::all().map(|c| (c, c.paper_count())))
}

/// Builds a smaller corpus (same proportions, scaled down) for quick runs
/// and tests: `scale` is a divisor applied to the per-category counts.
pub fn small_corpus(scale: usize) -> Vec<Benchmark> {
    let scale = scale.max(1);
    corpus_with_counts(&Category::all().map(|c| (c, (c.paper_count() / scale).max(2))))
}

/// Builds a corpus with explicit per-category counts.
pub fn corpus_with_counts(counts: &[(Category, usize)]) -> Vec<Benchmark> {
    let mut out = Vec::new();
    for (category, count) in counts {
        let mut items = handwritten::handwritten_for(*category);
        items.truncate(*count);
        let missing = count.saturating_sub(items.len());
        if missing > 0 {
            items.extend(generate_category(*category, missing, items.len()));
        }
        out.extend(items);
    }
    out
}

/// Re-export of the identity-transformer helper (used by examples and the
/// harness when the target schema *is* the induced schema).
pub fn identity_transformer_for(schema: &RelSchema) -> String {
    identity_transformer_text(schema)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_corpus_matches_table_1_counts() {
        let corpus = full_corpus();
        assert_eq!(corpus.len(), 410);
        for cat in Category::all() {
            let n = corpus.iter().filter(|b| b.category == cat).count();
            assert_eq!(n, cat.paper_count(), "count for {}", cat.name());
        }
    }

    #[test]
    fn all_benchmarks_parse() {
        // Parsing all 410 queries is cheap; evaluating/checking them is left
        // to the experiment harness.
        for b in full_corpus() {
            assert!(b.cypher().is_ok(), "cypher of {} does not parse: {}", b.id, b.cypher_text);
            assert!(b.sql().is_ok(), "sql of {} does not parse: {}", b.id, b.sql_text);
            assert!(b.transformer().is_ok(), "transformer of {} does not parse", b.id);
            assert!(b.graph_schema.validate().is_ok(), "graph schema of {}", b.id);
            assert!(b.target_schema.validate().is_ok(), "target schema of {}", b.id);
        }
    }

    #[test]
    fn ids_are_unique() {
        let corpus = full_corpus();
        let mut ids: Vec<&str> = corpus.iter().map(|b| b.id.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len());
    }

    #[test]
    fn small_corpus_has_all_categories() {
        let corpus = small_corpus(20);
        for cat in Category::all() {
            assert!(corpus.iter().any(|b| b.category == cat));
        }
    }

    #[test]
    fn corpus_contains_known_buggy_pairs() {
        let corpus = full_corpus();
        let buggy = corpus.iter().filter(|b| !b.expected_equivalent).count();
        // 1 StackOverflow + 1 Tutorial + 1 Academic + 4 VeriEQL + 0 Mediator
        // + 27 GPT-Translate = 34, as in Table 2.
        assert_eq!(buggy, 34);
    }
}
