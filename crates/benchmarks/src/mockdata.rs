//! Mock database instances for the execution-time experiment (Table 4).
//!
//! The paper generates mock relational instances with 10k–1M tuples per
//! table and compares the execution time of transpiled vs manually-written
//! SQL.  We generate scalable property-graph instances, derive the induced
//! relational instance through the SDT and the target relational instance
//! through the user transformer, so the two queries of a benchmark run over
//! data that satisfies `Φ_rdt(R') = R` by construction.

use graphiti_common::Value;
use graphiti_core::SdtContext;
use graphiti_graph::{GraphInstance, GraphSchema, NodeId};
use graphiti_relational::{RelInstance, RelSchema};
use graphiti_transformer::{apply_to_graph, Transformer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Generates a property-graph instance with `nodes_per_label` nodes per node
/// type and roughly `edges_per_node` outgoing edges per source node.
///
/// Property values are small integers and short strings drawn from a pool
/// that includes the constants used by the hand-written benchmarks (company
/// names, years, ...) so that selective predicates still match some rows.
pub fn generate_graph(
    schema: &GraphSchema,
    nodes_per_label: usize,
    edges_per_node: usize,
    seed: u64,
) -> GraphInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = GraphInstance::new();
    let mut ids_by_label: HashMap<String, Vec<NodeId>> = HashMap::new();
    let string_pool = [
        "Drachenblut Delikatessen",
        "Atropine",
        "Aspirin",
        "Alice",
        "Bob",
        "Carol",
        "CS",
        "EE",
        "Widget",
        "Gadget",
    ];
    for node_ty in &schema.node_types {
        let mut ids = Vec::with_capacity(nodes_per_label);
        for i in 0..nodes_per_label {
            let mut props: Vec<(String, Value)> = Vec::with_capacity(node_ty.keys.len());
            for (ki, key) in node_ty.keys.iter().enumerate() {
                let value = if ki == 0 {
                    // Default (primary) key: unique per label.
                    Value::Int(i as i64)
                } else if rng.gen_bool(0.5) {
                    Value::Int(rng.gen_range(0..2500))
                } else {
                    Value::str(string_pool[rng.gen_range(0..string_pool.len())])
                };
                props.push((key.as_str().to_string(), value));
            }
            ids.push(graph.add_node(node_ty.label.clone(), props));
        }
        ids_by_label.insert(node_ty.label.as_str().to_string(), ids);
    }
    let mut edge_counter: i64 = 0;
    for edge_ty in &schema.edge_types {
        let sources = ids_by_label.get(edge_ty.src.as_str()).cloned().unwrap_or_default();
        let targets = ids_by_label.get(edge_ty.tgt.as_str()).cloned().unwrap_or_default();
        if targets.is_empty() {
            continue;
        }
        for &src in &sources {
            for _ in 0..edges_per_node {
                let tgt = targets[rng.gen_range(0..targets.len())];
                let mut props: Vec<(String, Value)> = Vec::with_capacity(edge_ty.keys.len());
                for (ki, key) in edge_ty.keys.iter().enumerate() {
                    let value = if ki == 0 {
                        edge_counter += 1;
                        Value::Int(edge_counter)
                    } else {
                        Value::Int(rng.gen_range(0..50))
                    };
                    props.push((key.as_str().to_string(), value));
                }
                graph.add_edge(edge_ty.label.clone(), src, tgt, props);
            }
        }
    }
    graph
}

/// Everything Table 4 needs for one benchmark: the graph, the induced
/// relational instance (for the transpiled query) and the target relational
/// instance (for the manually-written query).
#[derive(Debug, Clone)]
pub struct MockDatabases {
    /// The generated property graph.
    pub graph: GraphInstance,
    /// Its image under the standard database transformer.
    pub induced: RelInstance,
    /// Its image under the user transformer (the target schema instance).
    pub target: RelInstance,
}

/// Builds matched induced/target instances from a generated graph.
pub fn build_databases(
    ctx: &SdtContext,
    user_transformer: &Transformer,
    target_schema: &RelSchema,
    nodes_per_label: usize,
    edges_per_node: usize,
    seed: u64,
) -> graphiti_common::Result<MockDatabases> {
    let graph = generate_graph(&ctx.graph_schema, nodes_per_label, edges_per_node, seed);
    let induced = apply_to_graph(&ctx.sdt, &ctx.graph_schema, &graph, &ctx.induced_schema)?;
    let target = apply_to_graph(user_transformer, &ctx.graph_schema, &graph, target_schema)?;
    Ok(MockDatabases { graph, induced, target })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemas;
    use graphiti_core::infer_sdt;

    #[test]
    fn generated_graphs_are_schema_valid() {
        for domain in schemas::all_domains() {
            let g = generate_graph(&domain.graph_schema, 30, 2, 11);
            assert!(g.validate(&domain.graph_schema).is_ok(), "domain {}", domain.name);
            assert_eq!(
                g.node_count(),
                30 * domain.graph_schema.node_types.len(),
                "domain {}",
                domain.name
            );
            assert!(g.edge_count() > 0);
        }
    }

    #[test]
    fn databases_are_consistent_with_schemas() {
        let domain = schemas::employees();
        let ctx = infer_sdt(&domain.graph_schema).unwrap();
        let dbs =
            build_databases(&ctx, &domain.transformer().unwrap(), &domain.target_schema, 50, 2, 42)
                .unwrap();
        assert!(dbs.induced.validate(&ctx.induced_schema).is_ok());
        // The target instance has one Assignment row per WORK_AT edge.
        assert_eq!(dbs.target.table("Assignment").unwrap().len(), dbs.graph.edge_count());
        assert_eq!(dbs.target.table("Employee").unwrap().len(), 50);
    }

    #[test]
    fn generation_is_deterministic() {
        let domain = schemas::movies();
        let a = generate_graph(&domain.graph_schema, 20, 3, 5);
        let b = generate_graph(&domain.graph_schema, 20, 3, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn scale_parameter_controls_size() {
        let domain = schemas::university();
        let small = generate_graph(&domain.graph_schema, 10, 1, 1);
        let large = generate_graph(&domain.graph_schema, 100, 2, 1);
        assert!(large.node_count() > small.node_count());
        assert!(large.edge_count() > small.edge_count());
    }
}
