//! Benchmark corpus and workload generation for the Graphiti evaluation.
//!
//! The paper evaluates Graphiti on 410 (Cypher, SQL) query pairs drawn from
//! six sources (Table 1).  The original pairs are not redistributable, so
//! this crate rebuilds a corpus with the same structure:
//!
//! * [`schemas`] — six benchmark domains (graph schema, natural target
//!   relational schema, and the transformer connecting them);
//! * [`handwritten`] — faithful reconstructions of the query pairs printed
//!   in the paper (the Section 2 motivating example, the Neo4j-tutorial
//!   `OPTIONAL MATCH` bug, ...) plus representative StackOverflow /
//!   Tutorial / Academic pairs;
//! * [`generator`] — deterministic generation of the VeriEQL / Mediator /
//!   GPT-Translate categories, with a calibrated fraction of injected
//!   translation bugs (34 non-equivalent pairs in the full corpus, as in
//!   Table 2);
//! * [`corpus`] — corpus assembly with the Table 1 per-category counts;
//! * [`mockdata`] — scalable mock database instances for the execution-time
//!   experiment (Table 4).

pub mod corpus;
pub mod generator;
pub mod handwritten;
pub mod mockdata;
pub mod schemas;

pub use corpus::{corpus_with_counts, full_corpus, small_corpus, Benchmark, Category};
pub use generator::{generate_category, identity_transformer_text, mutate};
pub use mockdata::{build_databases, generate_graph, MockDatabases};
pub use schemas::{all_domains, Domain};
