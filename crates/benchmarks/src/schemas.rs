//! Domain schemas used by the benchmark corpus.
//!
//! Each [`Domain`] bundles a graph schema, a "natural" target relational
//! schema (the kind a DBA would write, with different table/column names
//! than the induced schema), and the database transformer connecting them —
//! the three schema-level inputs of every benchmark in the paper's corpus.

use graphiti_common::Result;
use graphiti_graph::{EdgeType, GraphSchema, NodeType};
use graphiti_relational::{Constraint, RelSchema, Relation};
use graphiti_transformer::{parse_transformer, Transformer};

/// A benchmark domain: schemas on both sides plus the transformer.
#[derive(Debug, Clone)]
pub struct Domain {
    /// Short identifier (used in benchmark ids).
    pub name: &'static str,
    /// The property-graph schema.
    pub graph_schema: GraphSchema,
    /// The target relational schema.
    pub target_schema: RelSchema,
    /// Textual form of the user transformer (graph labels → target tables).
    pub transformer_text: String,
}

impl Domain {
    /// Parses the transformer text.
    pub fn transformer(&self) -> Result<Transformer> {
        parse_transformer(&self.transformer_text)
    }
}

/// The biomedical SemMedDB-style domain of the motivating example (Fig. 2).
pub fn biomedical() -> Domain {
    let graph_schema = GraphSchema::new()
        .with_node(NodeType::new("CONCEPT", ["CID", "Name"]))
        .with_node(NodeType::new("PA", ["PID", "PCSID"]))
        .with_node(NodeType::new("SENTENCE", ["SID", "PMID"]))
        .with_edge(EdgeType::new("CS", "CONCEPT", "PA", ["CSEID", "CSID"]))
        .with_edge(EdgeType::new("SP", "PA", "SENTENCE", ["SPID", "SPSID"]));
    let target_schema = RelSchema::new()
        .with_relation(Relation::new("Concept", ["CID", "NAME"]))
        .with_relation(Relation::new("Cs", ["CID", "CSID"]))
        .with_relation(Relation::new("Pa", ["PID", "CSID"]))
        .with_relation(Relation::new("Sp", ["SPID", "SID", "PID"]))
        .with_relation(Relation::new("Sentence", ["SID", "PMID"]))
        .with_constraint(Constraint::pk("Concept", "CID"))
        .with_constraint(Constraint::pk("Pa", "PID"))
        .with_constraint(Constraint::pk("Sp", "SPID"))
        .with_constraint(Constraint::pk("Sentence", "SID"));
    // Figure 5, adapted to this crate's edge-fact convention (property keys
    // first, then source and target default keys).
    let transformer_text = "\
CONCEPT(cid, name) -> Concept(cid, name)
CONCEPT(cid, _), CS(cseid, csid, cid, pid), PA(pid, _) -> Cs(cid, csid)
PA(pid, pcsid) -> Pa(pid, pcsid)
PA(pid, _), SP(spid, spsid, pid, sid), SENTENCE(sid, _) -> Sp(spid, sid, pid)
SENTENCE(sid, pmid) -> Sentence(sid, pmid)"
        .to_string();
    Domain { name: "biomedical", graph_schema, target_schema, transformer_text }
}

/// A small human-resources domain (Fig. 14): employees working at
/// departments.
pub fn employees() -> Domain {
    let graph_schema = GraphSchema::new()
        .with_node(NodeType::new("EMP", ["id", "ename"]))
        .with_node(NodeType::new("DEPT", ["dnum", "dname"]))
        .with_edge(EdgeType::new("WORK_AT", "EMP", "DEPT", ["wid"]));
    let target_schema = RelSchema::new()
        .with_relation(Relation::new("Employee", ["EmpId", "EmpName"]))
        .with_relation(Relation::new("Department", ["DeptNo", "DeptName"]))
        .with_relation(Relation::new("Assignment", ["AId", "EmpRef", "DeptRef"]))
        .with_constraint(Constraint::pk("Employee", "EmpId"))
        .with_constraint(Constraint::pk("Department", "DeptNo"))
        .with_constraint(Constraint::pk("Assignment", "AId"))
        .with_constraint(Constraint::fk("Assignment", "EmpRef", "Employee", "EmpId"))
        .with_constraint(Constraint::fk("Assignment", "DeptRef", "Department", "DeptNo"));
    let transformer_text = "\
EMP(id, ename) -> Employee(id, ename)
DEPT(dnum, dname) -> Department(dnum, dname)
WORK_AT(wid, src, tgt) -> Assignment(wid, src, tgt)"
        .to_string();
    Domain { name: "employees", graph_schema, target_schema, transformer_text }
}

/// A retail/Northwind-style domain: customers purchasing orders that contain
/// products (used by the Neo4j-tutorial benchmarks).
pub fn retail() -> Domain {
    let graph_schema = GraphSchema::new()
        .with_node(NodeType::new("Customer", ["CustomerID", "CompanyName"]))
        .with_node(NodeType::new("Order", ["OrderID", "OrderDate"]))
        .with_node(NodeType::new("Product", ["ProductID", "ProductName"]))
        .with_edge(EdgeType::new("PURCHASED", "Customer", "Order", ["PuId"]))
        .with_edge(EdgeType::new(
            "CONTAINS",
            "Order",
            "Product",
            ["OdId", "UnitPrice", "Quantity"],
        ));
    let target_schema = RelSchema::new()
        .with_relation(Relation::new("Customers", ["CustomerID", "CompanyName"]))
        .with_relation(Relation::new("Orders", ["OrderID", "OrderDate", "CustomerID2"]))
        .with_relation(Relation::new(
            "OrderDetails",
            ["OdId", "UnitPrice", "Quantity", "OrderID2", "ProductID2"],
        ))
        .with_relation(Relation::new("Products", ["ProductID", "ProductName"]))
        .with_constraint(Constraint::pk("Customers", "CustomerID"))
        .with_constraint(Constraint::pk("Orders", "OrderID"))
        .with_constraint(Constraint::pk("OrderDetails", "OdId"))
        .with_constraint(Constraint::pk("Products", "ProductID"))
        .with_constraint(Constraint::fk("Orders", "CustomerID2", "Customers", "CustomerID"))
        .with_constraint(Constraint::fk("OrderDetails", "OrderID2", "Orders", "OrderID"))
        .with_constraint(Constraint::fk("OrderDetails", "ProductID2", "Products", "ProductID"));
    let transformer_text = "\
Customer(cid, cname) -> Customers(cid, cname)
Order(oid, odate), PURCHASED(puid, cid, oid) -> Orders(oid, odate, cid)
CONTAINS(odid, price, qty, oid, pid) -> OrderDetails(odid, price, qty, oid, pid)
Product(pid, pname) -> Products(pid, pname)"
        .to_string();
    Domain { name: "retail", graph_schema, target_schema, transformer_text }
}

/// A social-network domain: users posting pictures and following each other.
pub fn social() -> Domain {
    let graph_schema = GraphSchema::new()
        .with_node(NodeType::new("USR", ["UsrId", "UsrName"]))
        .with_node(NodeType::new("PIC", ["PicId", "PicSize"]))
        .with_edge(EdgeType::new("POSTED", "USR", "PIC", ["PostId", "PostDate"]))
        .with_edge(EdgeType::new("FOLLOWS", "USR", "USR", ["FId"]));
    let target_schema = RelSchema::new()
        .with_relation(Relation::new("Users", ["UId", "UName"]))
        .with_relation(Relation::new("Pictures", ["PId", "PSize"]))
        .with_relation(Relation::new("Posts", ["PostKey", "PostWhen", "Poster", "Picture"]))
        .with_relation(Relation::new("Followers", ["FKey", "Follower", "Followee"]))
        .with_constraint(Constraint::pk("Users", "UId"))
        .with_constraint(Constraint::pk("Pictures", "PId"))
        .with_constraint(Constraint::pk("Posts", "PostKey"))
        .with_constraint(Constraint::pk("Followers", "FKey"))
        .with_constraint(Constraint::fk("Posts", "Poster", "Users", "UId"))
        .with_constraint(Constraint::fk("Posts", "Picture", "Pictures", "PId"))
        .with_constraint(Constraint::fk("Followers", "Follower", "Users", "UId"))
        .with_constraint(Constraint::fk("Followers", "Followee", "Users", "UId"));
    let transformer_text = "\
USR(uid, uname) -> Users(uid, uname)
PIC(pid, psize) -> Pictures(pid, psize)
POSTED(postid, postdate, uid, pid) -> Posts(postid, postdate, uid, pid)
FOLLOWS(fid, a, b) -> Followers(fid, a, b)"
        .to_string();
    Domain { name: "social", graph_schema, target_schema, transformer_text }
}

/// A university domain: students enrolling in courses taught by lecturers.
pub fn university() -> Domain {
    let graph_schema = GraphSchema::new()
        .with_node(NodeType::new("STUDENT", ["StuId", "StuName", "Year"]))
        .with_node(NodeType::new("COURSE", ["CrsId", "CrsTitle", "Credits"]))
        .with_edge(EdgeType::new("ENROLLED", "STUDENT", "COURSE", ["EnrId", "Grade"]));
    let target_schema = RelSchema::new()
        .with_relation(Relation::new("Students", ["SId", "SName", "SYear"]))
        .with_relation(Relation::new("Courses", ["CId", "CTitle", "CCredits"]))
        .with_relation(Relation::new("Enrollments", ["EId", "EGrade", "EStu", "ECrs"]))
        .with_constraint(Constraint::pk("Students", "SId"))
        .with_constraint(Constraint::pk("Courses", "CId"))
        .with_constraint(Constraint::pk("Enrollments", "EId"))
        .with_constraint(Constraint::fk("Enrollments", "EStu", "Students", "SId"))
        .with_constraint(Constraint::fk("Enrollments", "ECrs", "Courses", "CId"));
    let transformer_text = "\
STUDENT(sid, sname, year) -> Students(sid, sname, year)
COURSE(cid, ctitle, credits) -> Courses(cid, ctitle, credits)
ENROLLED(eid, grade, sid, cid) -> Enrollments(eid, grade, sid, cid)"
        .to_string();
    Domain { name: "university", graph_schema, target_schema, transformer_text }
}

/// A movies domain: actors acting in movies.
pub fn movies() -> Domain {
    let graph_schema = GraphSchema::new()
        .with_node(NodeType::new("ACTOR", ["ActId", "ActName", "Dob"]))
        .with_node(NodeType::new("MOVIE", ["MovId", "Title", "ReleaseYear"]))
        .with_edge(EdgeType::new("ACTS_IN", "ACTOR", "MOVIE", ["RoleId", "Role"]));
    let target_schema = RelSchema::new()
        .with_relation(Relation::new("Actors", ["AId", "AName", "ADob"]))
        .with_relation(Relation::new("Movies", ["MId", "MTitle", "MYear"]))
        .with_relation(Relation::new("Casting", ["CastId", "CastRole", "CastActor", "CastMovie"]))
        .with_constraint(Constraint::pk("Actors", "AId"))
        .with_constraint(Constraint::pk("Movies", "MId"))
        .with_constraint(Constraint::pk("Casting", "CastId"))
        .with_constraint(Constraint::fk("Casting", "CastActor", "Actors", "AId"))
        .with_constraint(Constraint::fk("Casting", "CastMovie", "Movies", "MId"));
    let transformer_text = "\
ACTOR(aid, aname, dob) -> Actors(aid, aname, dob)
MOVIE(mid, title, year) -> Movies(mid, title, year)
ACTS_IN(rid, role, aid, mid) -> Casting(rid, role, aid, mid)"
        .to_string();
    Domain { name: "movies", graph_schema, target_schema, transformer_text }
}

/// All benchmark domains.
pub fn all_domains() -> Vec<Domain> {
    vec![biomedical(), employees(), retail(), social(), university(), movies()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphiti_core::infer_sdt;

    #[test]
    fn all_domains_are_well_formed() {
        for d in all_domains() {
            assert!(d.graph_schema.validate().is_ok(), "graph schema of {}", d.name);
            assert!(d.target_schema.validate().is_ok(), "target schema of {}", d.name);
            let t = d.transformer().unwrap_or_else(|e| panic!("transformer of {}: {e}", d.name));
            assert!(t.is_safe(), "transformer of {}", d.name);
            assert!(infer_sdt(&d.graph_schema).is_ok(), "SDT of {}", d.name);
        }
    }

    #[test]
    fn transformer_heads_match_target_tables() {
        for d in all_domains() {
            let t = d.transformer().unwrap();
            for head in t.head_names() {
                assert!(
                    d.target_schema.has_relation(head.as_str()),
                    "{}: head `{head}` is not a target table",
                    d.name
                );
            }
        }
    }

    #[test]
    fn transformer_arities_match_target_tables() {
        for d in all_domains() {
            let t = d.transformer().unwrap();
            for rule in &t.rules {
                let rel = d.target_schema.relation(rule.head.name.as_str()).unwrap();
                assert_eq!(
                    rel.arity(),
                    rule.head.arity(),
                    "{}: rule head `{}` arity mismatch",
                    d.name,
                    rule.head.name
                );
            }
        }
    }
}
