//! Deductive verification backend (the Mediator substitute).
//!
//! Mediator proves full (unbounded) equivalence of SQL queries over
//! different schemas connected by a transformer, for a fragment without
//! aggregation or outer joins.  This backend reproduces that behaviour with
//! a classical decision procedure instead of SMT:
//!
//! 1. The residual transformer's rules are read as *view definitions*: each
//!    target table is a union of conjunctive queries over the induced
//!    schema.  The target-side query is unfolded through these views so that
//!    both queries range over the induced schema.
//! 2. Both queries are normalized into unions of conjunctive queries (UCQs):
//!    select-project-join-rename trees with equality predicates only.
//! 3. Two UCQs are equivalent under bag semantics iff their conjunctive
//!    queries can be matched up to isomorphism; the backend searches for
//!    such a matching and reports `Verified` when it finds one.
//!
//! Anything outside the fragment (aggregation, outer joins, `DISTINCT`,
//! subqueries, non-equality predicates, arithmetic) yields `Unknown`, as
//! does failure to find an isomorphism — the procedure is sound but
//! incomplete and never produces counterexamples, exactly like Mediator.

use graphiti_common::{CmpOp, Error, Result, Value};
use graphiti_core::{CheckOutcome, SqlEquivChecker};
use graphiti_relational::RelSchema;
use graphiti_sql::{ColumnRef, JoinKind, SelectItem, SqlExpr, SqlPred, SqlQuery};
use graphiti_transformer::{Term, Transformer};
use std::collections::HashMap;

/// Configuration of the deductive checker.
#[derive(Debug, Clone)]
pub struct DeductiveChecker {
    /// Upper bound on CQ atoms before the isomorphism search gives up (a
    /// safeguard against pathological inputs).
    pub max_atoms: usize,
}

impl Default for DeductiveChecker {
    fn default() -> Self {
        DeductiveChecker::new()
    }
}

impl DeductiveChecker {
    /// Creates a checker with the default limits.
    pub fn new() -> Self {
        DeductiveChecker { max_atoms: 24 }
    }

    /// Returns `true` if the query lies in the supported fragment
    /// (aggregation-free, outer-join-free, subquery-free, `DISTINCT`-free).
    pub fn supports(&self, q: &SqlQuery) -> bool {
        fragment_ok(q)
    }
}

fn fragment_ok(q: &SqlQuery) -> bool {
    match q {
        SqlQuery::Table(_) => true,
        SqlQuery::Project { input, items, distinct } => {
            !*distinct
                && items.iter().all(|i| matches!(i.expr, SqlExpr::Col(_) | SqlExpr::Value(_)))
                && fragment_ok(input)
        }
        SqlQuery::Select { input, pred } => pred_ok(pred) && fragment_ok(input),
        SqlQuery::Rename { input, .. } => fragment_ok(input),
        SqlQuery::Join { left, right, kind, pred } => {
            matches!(kind, JoinKind::Inner | JoinKind::Cross)
                && pred_ok(pred)
                && fragment_ok(left)
                && fragment_ok(right)
        }
        SqlQuery::UnionAll(a, b) => fragment_ok(a) && fragment_ok(b),
        SqlQuery::Union(..) => false,
        SqlQuery::GroupBy { .. } => false,
        SqlQuery::OrderBy { .. } => false,
        SqlQuery::With { definition, body, .. } => fragment_ok(definition) && fragment_ok(body),
    }
}

fn pred_ok(p: &SqlPred) -> bool {
    match p {
        SqlPred::Bool(_) => true,
        SqlPred::Cmp(a, op, b) => {
            *op == CmpOp::Eq
                && matches!(a.as_ref(), SqlExpr::Col(_) | SqlExpr::Value(_))
                && matches!(b.as_ref(), SqlExpr::Col(_) | SqlExpr::Value(_))
        }
        SqlPred::And(a, b) => pred_ok(a) && pred_ok(b),
        _ => false,
    }
}

// ------------------------------------------------------------- CQ structure

/// A conjunctive query in normal form.
#[derive(Debug, Clone)]
struct Cq {
    /// Atoms: `(table, slot per column)`.
    atoms: Vec<(String, Vec<usize>)>,
    /// Union-find parent array over slots.
    parent: Vec<usize>,
    /// Constant attached to a slot class, if any.
    consts: HashMap<usize, Value>,
    /// Output slots (projection), in order.
    output: Vec<Slot>,
    /// Output column names (for name resolution only; ignored by
    /// isomorphism).
    out_names: Vec<String>,
}

/// An output slot: either a variable slot or a constant column.
#[derive(Debug, Clone, PartialEq)]
enum Slot {
    Var(usize),
    Const(Value),
}

impl Cq {
    fn new_slot(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        id
    }

    fn find(&self, mut x: usize) -> usize {
        while self.parent[x] != x {
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> Result<()> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return Ok(());
        }
        let ca = self.consts.get(&ra).cloned();
        let cb = self.consts.get(&rb).cloned();
        if let (Some(x), Some(y)) = (&ca, &cb) {
            if !x.strict_eq(y) {
                return Err(Error::checker("unsatisfiable conjunctive query"));
            }
        }
        self.parent[ra] = rb;
        if let Some(x) = ca {
            self.consts.insert(rb, x);
        }
        Ok(())
    }

    fn set_const(&mut self, slot: usize, v: Value) -> Result<()> {
        let r = self.find(slot);
        if let Some(existing) = self.consts.get(&r) {
            if !existing.strict_eq(&v) {
                return Err(Error::checker("unsatisfiable conjunctive query"));
            }
        }
        self.consts.insert(r, v);
        Ok(())
    }

    /// Resolves an output column reference to its slot.
    fn resolve(&self, cref: &ColumnRef) -> Option<Slot> {
        let idx = graphiti_sql::resolve_column(&self.out_names, cref)?;
        Some(self.output[idx].clone())
    }

    /// Canonicalizes slots through the union-find so later comparisons can
    /// use the roots directly.
    fn canonical(&self) -> CanonicalCq {
        let root_const = |slot: usize| self.consts.get(&self.find(slot)).cloned();
        CanonicalCq {
            atoms: self
                .atoms
                .iter()
                .map(|(t, slots)| {
                    (
                        t.to_ascii_lowercase(),
                        slots.iter().map(|&s| (self.find(s), root_const(s))).collect::<Vec<_>>(),
                    )
                })
                .collect(),
            output: self
                .output
                .iter()
                .map(|s| match s {
                    Slot::Var(v) => (Some(self.find(*v)), root_const(*v)),
                    Slot::Const(c) => (None, Some(c.clone())),
                })
                .collect(),
        }
    }
}

/// One canonical atom: table name plus, per position, the slot root and
/// its constant.
type CanonicalAtom = (String, Vec<(usize, Option<Value>)>);

/// A CQ with union-find roots resolved, ready for isomorphism checking.
#[derive(Debug, Clone)]
struct CanonicalCq {
    /// Atoms: table name plus, per position, the slot root and its constant.
    atoms: Vec<CanonicalAtom>,
    /// Output positions: slot root (None for pure constants) and constant.
    output: Vec<(Option<usize>, Option<Value>)>,
}

// ---------------------------------------------------------- normalization

struct Normalizer<'a> {
    /// Views: table name (lower-cased) -> UCQ definition.
    views: HashMap<String, Vec<Cq>>,
    /// Base schema used to determine column names of base tables.
    schema: &'a RelSchema,
}

impl<'a> Normalizer<'a> {
    fn normalize(&self, q: &SqlQuery) -> Result<Vec<Cq>> {
        match q {
            SqlQuery::Table(name) => {
                if let Some(view) = self.views.get(&name.as_str().to_ascii_lowercase()) {
                    // Re-qualify the view's output columns with the table name.
                    return Ok(view
                        .iter()
                        .map(|cq| {
                            let mut cq = cq.clone();
                            cq.out_names = cq
                                .out_names
                                .iter()
                                .map(|c| format!("{name}.{}", unqualified(c)))
                                .collect();
                            cq
                        })
                        .collect());
                }
                let rel = self.schema.relation(name.as_str()).ok_or_else(|| {
                    Error::checker(format!("unknown table `{name}` during normalization"))
                })?;
                let mut cq = Cq {
                    atoms: Vec::new(),
                    parent: Vec::new(),
                    consts: HashMap::new(),
                    output: Vec::new(),
                    out_names: Vec::new(),
                };
                let slots: Vec<usize> = rel.attrs.iter().map(|_| cq.new_slot()).collect();
                cq.atoms.push((rel.name.as_str().to_string(), slots.clone()));
                cq.output = slots.into_iter().map(Slot::Var).collect();
                cq.out_names =
                    rel.attrs.iter().map(|a| format!("{}.{}", name, a.as_str())).collect();
                Ok(vec![cq])
            }
            SqlQuery::Rename { input, alias } => {
                let mut cqs = self.normalize(input)?;
                for cq in &mut cqs {
                    cq.out_names = cq
                        .out_names
                        .iter()
                        .map(|c| format!("{alias}.{}", unqualified(c)))
                        .collect();
                }
                Ok(cqs)
            }
            SqlQuery::Select { input, pred } => {
                let cqs = self.normalize(input)?;
                let mut out = Vec::new();
                for cq in cqs {
                    match apply_pred(cq, pred) {
                        Ok(cq) => out.push(cq),
                        Err(_) => { /* unsatisfiable disjunct: drop */ }
                    }
                }
                Ok(out)
            }
            SqlQuery::Project { input, items, distinct } => {
                if *distinct {
                    return Err(Error::unsupported("DISTINCT is outside the deductive fragment"));
                }
                let cqs = self.normalize(input)?;
                let mut out = Vec::new();
                for cq in cqs {
                    let mut projected = cq.clone();
                    let mut output = Vec::new();
                    let mut names = Vec::new();
                    for item in items {
                        match &item.expr {
                            SqlExpr::Col(c) => {
                                let slot = cq.resolve(c).ok_or_else(|| {
                                    Error::checker(format!(
                                        "cannot resolve column `{}` during normalization",
                                        c.render()
                                    ))
                                })?;
                                output.push(slot);
                            }
                            SqlExpr::Value(v) => output.push(Slot::Const(v.clone())),
                            _ => {
                                return Err(Error::unsupported(
                                    "only plain columns are supported in the deductive fragment",
                                ))
                            }
                        }
                        names.push(item.output_name());
                    }
                    projected.output = output;
                    projected.out_names = names;
                    out.push(projected);
                }
                Ok(out)
            }
            SqlQuery::Join { left, right, kind, pred } => {
                if !matches!(kind, JoinKind::Inner | JoinKind::Cross) {
                    return Err(Error::unsupported(
                        "outer joins are outside the deductive fragment",
                    ));
                }
                let lefts = self.normalize(left)?;
                let rights = self.normalize(right)?;
                let mut out = Vec::new();
                for l in &lefts {
                    for r in &rights {
                        let combined = combine(l, r);
                        if let Ok(cq) = apply_pred(combined, pred) {
                            out.push(cq)
                        }
                    }
                }
                Ok(out)
            }
            SqlQuery::UnionAll(a, b) => {
                let mut out = self.normalize(a)?;
                out.extend(self.normalize(b)?);
                Ok(out)
            }
            SqlQuery::With { name, definition, body } => {
                let def = self.normalize(definition)?;
                let mut extended = Normalizer { views: self.views.clone(), schema: self.schema };
                extended.views.insert(name.as_str().to_ascii_lowercase(), def);
                extended.normalize(body)
            }
            SqlQuery::Union(..) | SqlQuery::GroupBy { .. } | SqlQuery::OrderBy { .. } => {
                Err(Error::unsupported("query is outside the deductive fragment"))
            }
        }
    }
}

fn unqualified(name: &str) -> &str {
    name.rsplit_once('.').map(|(_, s)| s).unwrap_or(name)
}

/// Concatenates two CQs (used by joins), offsetting the right CQ's slots.
fn combine(l: &Cq, r: &Cq) -> Cq {
    let offset = l.parent.len();
    let mut cq = l.clone();
    cq.parent.extend(r.parent.iter().map(|p| p + offset));
    for (slot, v) in &r.consts {
        cq.consts.insert(slot + offset, v.clone());
    }
    cq.atoms.extend(
        r.atoms.iter().map(|(t, slots)| (t.clone(), slots.iter().map(|s| s + offset).collect())),
    );
    cq.output.extend(r.output.iter().map(|s| match s {
        Slot::Var(v) => Slot::Var(v + offset),
        Slot::Const(c) => Slot::Const(c.clone()),
    }));
    cq.out_names.extend(r.out_names.iter().cloned());
    cq
}

/// Applies an equality-only predicate to a CQ, merging slots / binding
/// constants.  Fails (Err) when the CQ becomes unsatisfiable.
fn apply_pred(mut cq: Cq, pred: &SqlPred) -> Result<Cq> {
    match pred {
        SqlPred::Bool(true) => Ok(cq),
        SqlPred::Bool(false) => Err(Error::checker("unsatisfiable")),
        SqlPred::And(a, b) => {
            let cq = apply_pred(cq, a)?;
            apply_pred(cq, b)
        }
        SqlPred::Cmp(a, CmpOp::Eq, b) => {
            let resolve = |cq: &Cq, e: &SqlExpr| -> Result<Slot> {
                match e {
                    SqlExpr::Col(c) => cq
                        .resolve(c)
                        .ok_or_else(|| Error::checker(format!("cannot resolve `{}`", c.render()))),
                    SqlExpr::Value(v) => Ok(Slot::Const(v.clone())),
                    _ => Err(Error::unsupported("non-column expression in predicate")),
                }
            };
            let sa = resolve(&cq, a)?;
            let sb = resolve(&cq, b)?;
            match (sa, sb) {
                (Slot::Var(x), Slot::Var(y)) => cq.union(x, y)?,
                (Slot::Var(x), Slot::Const(v)) | (Slot::Const(v), Slot::Var(x)) => {
                    cq.set_const(x, v)?
                }
                (Slot::Const(x), Slot::Const(y)) => {
                    if !x.strict_eq(&y) {
                        return Err(Error::checker("unsatisfiable"));
                    }
                }
            }
            Ok(cq)
        }
        _ => Err(Error::unsupported("predicate outside the deductive fragment")),
    }
}

// ------------------------------------------------------------ isomorphism

/// Checks whether two canonical CQs are isomorphic: there is a bijection
/// between their atoms (over the same tables) inducing a consistent
/// bijection on slot roots that preserves constants and maps the output
/// multiset onto the other output multiset.
fn cq_isomorphic(a: &CanonicalCq, b: &CanonicalCq) -> bool {
    if a.atoms.len() != b.atoms.len() || a.output.len() != b.output.len() {
        return false;
    }
    let mut used = vec![false; b.atoms.len()];
    let mut mapping: HashMap<usize, usize> = HashMap::new();
    let mut reverse: HashMap<usize, usize> = HashMap::new();
    atoms_match(a, b, 0, &mut used, &mut mapping, &mut reverse)
}

fn atoms_match(
    a: &CanonicalCq,
    b: &CanonicalCq,
    idx: usize,
    used: &mut Vec<bool>,
    mapping: &mut HashMap<usize, usize>,
    reverse: &mut HashMap<usize, usize>,
) -> bool {
    if idx == a.atoms.len() {
        return outputs_match(a, b, mapping);
    }
    let (table, slots) = &a.atoms[idx];
    for j in 0..b.atoms.len() {
        if used[j] || &b.atoms[j].0 != table || b.atoms[j].1.len() != slots.len() {
            continue;
        }
        // Try to extend the slot mapping.
        let mut added: Vec<(usize, usize)> = Vec::new();
        let mut ok = true;
        for ((sa, ca), (sb, cb)) in slots.iter().zip(b.atoms[j].1.iter()) {
            let consts_agree = match (ca, cb) {
                (Some(x), Some(y)) => x.strict_eq(y),
                (None, None) => true,
                _ => false,
            };
            if !consts_agree {
                ok = false;
                break;
            }
            match (mapping.get(sa), reverse.get(sb)) {
                (Some(&m), _) if m != *sb => {
                    ok = false;
                    break;
                }
                (_, Some(&r)) if r != *sa => {
                    ok = false;
                    break;
                }
                (None, None) => {
                    mapping.insert(*sa, *sb);
                    reverse.insert(*sb, *sa);
                    added.push((*sa, *sb));
                }
                _ => {}
            }
        }
        if ok {
            used[j] = true;
            if atoms_match(a, b, idx + 1, used, mapping, reverse) {
                return true;
            }
            used[j] = false;
        }
        for (sa, sb) in added {
            mapping.remove(&sa);
            reverse.remove(&sb);
        }
    }
    false
}

fn outputs_match(a: &CanonicalCq, b: &CanonicalCq, mapping: &HashMap<usize, usize>) -> bool {
    // Table equivalence ignores column order (Definition 4.4), so compare
    // outputs as multisets after applying the slot mapping.
    let project = |out: &[(Option<usize>, Option<Value>)], map: bool| -> Vec<String> {
        let mut items: Vec<String> = out
            .iter()
            .map(|(slot, c)| match (slot, c) {
                (Some(s), _) => {
                    let s = if map { mapping.get(s).copied().unwrap_or(usize::MAX) } else { *s };
                    format!("slot:{s}")
                }
                (None, Some(v)) => format!("const:{v}"),
                (None, None) => "null".to_string(),
            })
            .collect();
        items.sort();
        items
    };
    project(&a.output, true) == project(&b.output, false)
}

// ------------------------------------------------------------ view building

/// Builds view definitions (UCQs over the induced schema) for each target
/// table from the residual transformer's rules.
fn views_from_rdt(
    rdt: &Transformer,
    induced_schema: &RelSchema,
    target_schema: &RelSchema,
) -> Result<HashMap<String, Vec<Cq>>> {
    let mut views: HashMap<String, Vec<Cq>> = HashMap::new();
    for rule in &rdt.rules {
        let mut cq = Cq {
            atoms: Vec::new(),
            parent: Vec::new(),
            consts: HashMap::new(),
            output: Vec::new(),
            out_names: Vec::new(),
        };
        let mut var_slots: HashMap<String, usize> = HashMap::new();
        for atom in &rule.body {
            let rel = induced_schema.relation(atom.name.as_str()).ok_or_else(|| {
                Error::checker(format!(
                    "residual transformer references unknown induced table `{}`",
                    atom.name
                ))
            })?;
            if rel.arity() != atom.arity() {
                return Err(Error::checker(format!(
                    "residual rule uses `{}` with arity {} but the table has {}",
                    atom.name,
                    atom.arity(),
                    rel.arity()
                )));
            }
            let mut slots = Vec::new();
            for term in &atom.terms {
                let slot = match term {
                    Term::Var(v) => {
                        *var_slots.entry(v.as_str().to_string()).or_insert_with(|| cq.new_slot())
                    }
                    Term::Wildcard => cq.new_slot(),
                    Term::Const(value) => {
                        let s = cq.new_slot();
                        cq.set_const(s, value.clone())?;
                        s
                    }
                };
                slots.push(slot);
            }
            cq.atoms.push((rel.name.as_str().to_string(), slots));
        }
        let target_rel = target_schema
            .relation(rule.head.name.as_str())
            .ok_or_else(|| Error::checker(format!("unknown target table `{}`", rule.head.name)))?;
        if target_rel.arity() != rule.head.arity() {
            return Err(Error::checker(format!(
                "residual rule head `{}` has arity {} but the table has {}",
                rule.head.name,
                rule.head.arity(),
                target_rel.arity()
            )));
        }
        for (term, attr) in rule.head.terms.iter().zip(target_rel.attrs.iter()) {
            match term {
                Term::Var(v) => {
                    let slot = var_slots.get(v.as_str()).ok_or_else(|| {
                        Error::checker(format!("unsafe residual rule: unbound head variable `{v}`"))
                    })?;
                    cq.output.push(Slot::Var(*slot));
                }
                Term::Const(value) => cq.output.push(Slot::Const(value.clone())),
                Term::Wildcard => {
                    return Err(Error::checker("wildcard in residual rule head"));
                }
            }
            cq.out_names.push(attr.as_str().to_string());
        }
        views.entry(target_rel.name.as_str().to_ascii_lowercase()).or_default().push(cq);
    }
    Ok(views)
}

impl SqlEquivChecker for DeductiveChecker {
    fn check_sql(
        &self,
        induced_schema: &RelSchema,
        induced_query: &SqlQuery,
        target_schema: &RelSchema,
        target_query: &SqlQuery,
        rdt: &Transformer,
    ) -> Result<CheckOutcome> {
        if !self.supports(induced_query) || !self.supports(target_query) {
            return Ok(CheckOutcome::Unknown(
                "query is outside the aggregation-free, outer-join-free fragment".to_string(),
            ));
        }
        let views = match views_from_rdt(rdt, induced_schema, target_schema) {
            Ok(v) => v,
            Err(e) => return Ok(CheckOutcome::Unknown(e.to_string())),
        };
        let induced_normalizer = Normalizer { views: HashMap::new(), schema: induced_schema };
        let target_normalizer = Normalizer { views, schema: target_schema };
        let left = match induced_normalizer.normalize(induced_query) {
            Ok(cqs) => cqs,
            Err(e) => return Ok(CheckOutcome::Unknown(e.to_string())),
        };
        let right = match target_normalizer.normalize(target_query) {
            Ok(cqs) => cqs,
            Err(e) => return Ok(CheckOutcome::Unknown(e.to_string())),
        };
        if left.iter().chain(right.iter()).any(|cq| cq.atoms.len() > self.max_atoms) {
            return Ok(CheckOutcome::Unknown("conjunctive query too large".to_string()));
        }
        if left.len() != right.len() {
            return Ok(CheckOutcome::Unknown(
                "different numbers of conjunctive queries".to_string(),
            ));
        }
        let left: Vec<CanonicalCq> = left.iter().map(Cq::canonical).collect();
        let right: Vec<CanonicalCq> = right.iter().map(Cq::canonical).collect();
        // Find a perfect matching of isomorphic CQs (greedy with backtracking).
        let mut used = vec![false; right.len()];
        if match_ucqs(&left, &right, 0, &mut used) {
            Ok(CheckOutcome::Verified)
        } else {
            Ok(CheckOutcome::Unknown("no isomorphism between normal forms found".to_string()))
        }
    }

    fn name(&self) -> &'static str {
        "deductive-verifier"
    }
}

fn match_ucqs(
    left: &[CanonicalCq],
    right: &[CanonicalCq],
    idx: usize,
    used: &mut Vec<bool>,
) -> bool {
    if idx == left.len() {
        return true;
    }
    for j in 0..right.len() {
        if used[j] {
            continue;
        }
        if cq_isomorphic(&left[idx], &right[j]) {
            used[j] = true;
            if match_ucqs(left, right, idx + 1, used) {
                return true;
            }
            used[j] = false;
        }
    }
    false
}

/// Re-exported helper so the experiment harness can classify which
/// benchmarks fall into the supported fragment without running the checker.
pub fn in_supported_fragment(q: &SqlQuery) -> bool {
    fragment_ok(q)
}

/// Helper used in tests and the harness: a `SelectItem` list that projects
/// the given qualified columns verbatim.
pub fn columns(items: &[(&str, &str)]) -> Vec<SelectItem> {
    items.iter().map(|(q, n)| SelectItem::expr(SqlExpr::col(*q, *n))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphiti_core::{check_equivalence, CheckOutcome};
    use graphiti_cypher::parse_query as parse_cypher;
    use graphiti_graph::{EdgeType, GraphSchema, NodeType};
    use graphiti_relational::{Constraint, RelSchema, Relation};
    use graphiti_sql::parse_query as parse_sql;
    use graphiti_transformer::parse_transformer;

    fn emp_schema() -> GraphSchema {
        GraphSchema::new()
            .with_node(NodeType::new("EMP", ["id", "name"]))
            .with_node(NodeType::new("DEPT", ["dnum", "dname"]))
            .with_edge(EdgeType::new("WORK_AT", "EMP", "DEPT", ["wid"]))
    }

    fn target_schema() -> RelSchema {
        RelSchema::new()
            .with_relation(Relation::new("Employee", ["EmpId", "EmpName"]))
            .with_relation(Relation::new("Department", ["DeptNo", "DeptName"]))
            .with_relation(Relation::new("Assignment", ["AId", "EmpId2", "DeptNo2"]))
            .with_constraint(Constraint::pk("Employee", "EmpId"))
            .with_constraint(Constraint::pk("Department", "DeptNo"))
            .with_constraint(Constraint::pk("Assignment", "AId"))
    }

    fn user_transformer() -> Transformer {
        parse_transformer(
            "EMP(id, name) -> Employee(id, name)\n\
             DEPT(dnum, dname) -> Department(dnum, dname)\n\
             WORK_AT(wid, src, tgt) -> Assignment(wid, src, tgt)",
        )
        .unwrap()
    }

    #[test]
    fn verifies_equivalent_join_queries() {
        let cypher = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WHERE n.id = 1 RETURN n.name, m.dname",
        )
        .unwrap();
        // Hand-written SQL over the target schema, with joins written in a
        // different order and different aliases.
        let sql = parse_sql(
            "SELECT d.DeptName, e.EmpName FROM Department AS d \
             JOIN Assignment AS a ON a.DeptNo2 = d.DeptNo \
             JOIN Employee AS e ON e.EmpId = a.EmpId2 WHERE e.EmpId = 1",
        )
        .unwrap();
        let outcome = check_equivalence(
            &emp_schema(),
            &cypher,
            &target_schema(),
            &sql,
            &user_transformer(),
            &DeductiveChecker::new(),
        )
        .unwrap();
        assert!(matches!(outcome, CheckOutcome::Verified), "got {outcome:?}");
    }

    #[test]
    fn different_filters_are_not_verified() {
        let cypher = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WHERE n.id = 1 RETURN n.name, m.dname",
        )
        .unwrap();
        let sql = parse_sql(
            "SELECT e.EmpName, d.DeptName FROM Department AS d \
             JOIN Assignment AS a ON a.DeptNo2 = d.DeptNo \
             JOIN Employee AS e ON e.EmpId = a.EmpId2 WHERE e.EmpId = 2",
        )
        .unwrap();
        let outcome = check_equivalence(
            &emp_schema(),
            &cypher,
            &target_schema(),
            &sql,
            &user_transformer(),
            &DeductiveChecker::new(),
        )
        .unwrap();
        assert!(matches!(outcome, CheckOutcome::Unknown(_)), "got {outcome:?}");
    }

    #[test]
    fn aggregation_is_outside_the_fragment() {
        let cypher =
            parse_cypher("MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname, Count(*)").unwrap();
        let sql = parse_sql(
            "SELECT d.DeptName, Count(*) FROM Department AS d \
             JOIN Assignment AS a ON a.DeptNo2 = d.DeptNo GROUP BY d.DeptName",
        )
        .unwrap();
        let outcome = check_equivalence(
            &emp_schema(),
            &cypher,
            &target_schema(),
            &sql,
            &user_transformer(),
            &DeductiveChecker::new(),
        )
        .unwrap();
        assert!(matches!(outcome, CheckOutcome::Unknown(_)));
    }

    #[test]
    fn union_all_of_projections_is_verified() {
        let cypher = parse_cypher(
            "MATCH (n:EMP) RETURN n.id AS x UNION ALL MATCH (m:DEPT) RETURN m.dnum AS x",
        )
        .unwrap();
        let sql = parse_sql(
            "SELECT d.DeptNo AS x FROM Department AS d UNION ALL SELECT e.EmpId AS x FROM Employee AS e",
        )
        .unwrap();
        let outcome = check_equivalence(
            &emp_schema(),
            &cypher,
            &target_schema(),
            &sql,
            &user_transformer(),
            &DeductiveChecker::new(),
        )
        .unwrap();
        assert!(matches!(outcome, CheckOutcome::Verified), "got {outcome:?}");
    }

    #[test]
    fn multi_rule_views_unfold() {
        // Target table that merges employees and departments; the Cypher
        // query reads both node types.
        let target = RelSchema::new().with_relation(Relation::new("Everyone", ["key"]));
        let transformer =
            parse_transformer("EMP(id, _) -> Everyone(id)\nDEPT(dnum, _) -> Everyone(dnum)")
                .unwrap();
        let cypher = parse_cypher(
            "MATCH (n:EMP) RETURN n.id AS key UNION ALL MATCH (m:DEPT) RETURN m.dnum AS key",
        )
        .unwrap();
        let sql = parse_sql("SELECT t.key FROM Everyone AS t").unwrap();
        let outcome = check_equivalence(
            &emp_schema(),
            &cypher,
            &target,
            &sql,
            &transformer,
            &DeductiveChecker::new(),
        )
        .unwrap();
        assert!(matches!(outcome, CheckOutcome::Verified), "got {outcome:?}");
    }

    #[test]
    fn fragment_detection() {
        let checker = DeductiveChecker::new();
        let ok = parse_sql("SELECT a.x FROM t AS a JOIN s AS b ON a.x = b.y").unwrap();
        assert!(checker.supports(&ok));
        let agg = parse_sql("SELECT Count(*) FROM t").unwrap();
        assert!(!checker.supports(&agg));
        let outer = parse_sql("SELECT a.x FROM t AS a LEFT JOIN s AS b ON a.x = b.y").unwrap();
        assert!(!checker.supports(&outer));
        let neq = parse_sql("SELECT a.x FROM t AS a WHERE a.x > 3").unwrap();
        assert!(!checker.supports(&neq));
    }
}
