//! Bounded model checking backend (the VeriEQL substitute).
//!
//! VeriEQL encodes bounded symbolic tables into SMT; we do not have an SMT
//! solver available, so this backend explores the same search space
//! *enumeratively*: it generates relational instances of the induced schema
//! with up to `bound` rows per table (respecting primary keys, foreign keys,
//! and not-null constraints), pushes each instance through the residual
//! transformer to obtain the corresponding target instance, executes both
//! queries with the reference SQL evaluator, and compares the result tables
//! under Definition 4.4.
//!
//! Like VeriEQL, the checker either produces a concrete counterexample or
//! reports "no counterexample up to bound k" — it never proves full
//! equivalence.  Value domains are seeded with the constants appearing in
//! the two queries so that constant-guarded paths are exercised.

use graphiti_common::{Result, Value};
use graphiti_core::{CheckOutcome, Counterexample, SqlEquivChecker};
use graphiti_relational::{Constraint, RelInstance, RelSchema, Table};
use graphiti_sql::{eval_query, SqlPred, SqlQuery};
use graphiti_transformer::{apply_to_relational, Transformer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Configuration of the bounded checker.
#[derive(Debug, Clone)]
pub struct BoundedChecker {
    /// Largest per-table row count to explore.
    pub max_bound: usize,
    /// Number of randomized instances generated per bound.
    pub instances_per_bound: usize,
    /// Wall-clock budget; the search stops (reporting the bound reached) when
    /// it is exhausted.
    pub time_budget: Duration,
    /// RNG seed, for reproducible experiments.
    pub seed: u64,
}

impl Default for BoundedChecker {
    fn default() -> Self {
        BoundedChecker {
            max_bound: 6,
            instances_per_bound: 120,
            time_budget: Duration::from_secs(10),
            seed: 0xC0FFEE,
        }
    }
}

impl BoundedChecker {
    /// A checker with a specific time budget (and default bounds).
    pub fn with_budget(time_budget: Duration) -> Self {
        BoundedChecker { time_budget, ..Default::default() }
    }

    /// Generates one random instance of `schema` with at most `bound` rows
    /// per table.
    pub fn generate_instance(
        &self,
        schema: &RelSchema,
        bound: usize,
        domain: &ValueDomain,
        rng: &mut StdRng,
    ) -> RelInstance {
        let mut inst = RelInstance::empty_of(schema);
        // Fill tables without foreign keys first so that FK targets exist.
        let mut order: Vec<usize> = (0..schema.relations.len()).collect();
        order.sort_by_key(|&i| schema.foreign_keys(schema.relations[i].name.as_str()).len());
        for idx in order {
            let rel = &schema.relations[idx];
            let name = rel.name.as_str();
            let pk = schema.primary_key(name).cloned();
            let fks = schema.foreign_keys(name);
            let not_nulls: Vec<&str> = schema
                .constraints
                .iter()
                .filter_map(|c| match c {
                    Constraint::NotNull { relation, attr } if relation.eq_ignore_case(name) => {
                        Some(attr.as_str())
                    }
                    _ => None,
                })
                .collect();
            let rows = rng.gen_range(0..=bound);
            let mut table = Table::new(rel.attrs.iter().map(|a| a.as_str().to_string()));
            let mut used_pks: Vec<Value> = Vec::new();
            // Resolve each attribute's FK target (table + column index)
            // once per relation, not once per generated row — the
            // per-row `column_index` scan was the generator's hot spot.
            let fk_targets: Vec<Option<(&Table, usize)>> = rel
                .attrs
                .iter()
                .map(|attr| {
                    let (_, ref_rel, ref_attr) = fks.iter().find(|(a, _, _)| a == &attr)?;
                    let t = inst.table(ref_rel.as_str())?;
                    let idx = t.column_index(ref_attr.as_str())?;
                    Some((t, idx))
                })
                .collect();
            'rows: for row_idx in 0..rows {
                let mut row = Vec::with_capacity(rel.arity());
                for (attr_pos, attr) in rel.attrs.iter().enumerate() {
                    let is_pk = pk.as_ref().map(|p| p == attr).unwrap_or(false);
                    let fk = fks.iter().find(|(a, _, _)| *a == attr);
                    let value = if is_pk {
                        // Unique small integers, occasionally drawn from the
                        // constant pool to make constant predicates fire.
                        let mut v = domain.pick_key(rng, attr.as_str(), row_idx);
                        let mut attempts = 0;
                        while used_pks.contains(&v) && attempts < 8 {
                            v = Value::Int(rng.gen_range(0..(4 * bound as i64 + 4)));
                            attempts += 1;
                        }
                        if used_pks.contains(&v) {
                            continue 'rows;
                        }
                        used_pks.push(v.clone());
                        v
                    } else if fk.is_some() {
                        // Pick an existing referenced value from the
                        // pre-resolved target table/column.
                        let referenced = fk_targets[attr_pos].and_then(|(t, idx)| {
                            if t.rows.is_empty() {
                                None
                            } else {
                                let pick = rng.gen_range(0..t.rows.len());
                                Some(t.rows[pick][idx].clone())
                            }
                        });
                        match referenced {
                            Some(v) => v,
                            None => continue 'rows,
                        }
                    } else {
                        let nullable = !not_nulls.contains(&attr.as_str());
                        domain.pick_value(rng, attr.as_str(), nullable)
                    };
                    row.push(value);
                }
                table.push_row(row);
            }
            inst.insert_table(name.to_string(), table);
        }
        inst
    }
}

/// The pool of values used to populate generated instances.
#[derive(Debug, Clone, Default)]
pub struct ValueDomain {
    ints: Vec<i64>,
    strings: Vec<String>,
    /// Constants seen in comparisons against a specific (unqualified,
    /// lower-cased) column name, which dramatically improves the odds of
    /// triggering constant-guarded query paths.
    per_column: std::collections::HashMap<String, Vec<Value>>,
}

impl ValueDomain {
    /// Builds a domain seeded with the constants of the given queries.
    pub fn from_queries(queries: &[&SqlQuery]) -> Self {
        let mut domain = ValueDomain {
            ints: vec![0, 1, 2],
            strings: vec!["a".into(), "b".into()],
            per_column: Default::default(),
        };
        for q in queries {
            collect_query_constants(q, &mut domain);
        }
        domain.ints.sort_unstable();
        domain.ints.dedup();
        domain.strings.sort();
        domain.strings.dedup();
        domain
    }

    fn note_column_constant(&mut self, column: &str, value: &Value) {
        let key = column.rsplit('.').next().unwrap_or(column).to_ascii_lowercase();
        self.per_column.entry(key).or_default().push(value.clone());
    }

    fn column_pool(&self, attr: &str) -> Option<&[Value]> {
        self.per_column.get(&attr.to_ascii_lowercase()).map(|v| v.as_slice())
    }

    fn pick_key(&self, rng: &mut StdRng, attr: &str, row_idx: usize) -> Value {
        if let Some(pool) = self.column_pool(attr) {
            if rng.gen_bool(0.6) {
                return pool[rng.gen_range(0..pool.len())].clone();
            }
        }
        if !self.ints.is_empty() && rng.gen_bool(0.5) {
            Value::Int(self.ints[rng.gen_range(0..self.ints.len())])
        } else {
            Value::Int(row_idx as i64)
        }
    }

    fn pick_value(&self, rng: &mut StdRng, attr: &str, nullable: bool) -> Value {
        if nullable && rng.gen_bool(0.08) {
            return Value::Null;
        }
        if let Some(pool) = self.column_pool(attr) {
            if rng.gen_bool(0.6) {
                return pool[rng.gen_range(0..pool.len())].clone();
            }
        }
        if !self.strings.is_empty() && rng.gen_bool(0.3) {
            return Value::str(&self.strings[rng.gen_range(0..self.strings.len())]);
        }
        if self.ints.is_empty() {
            Value::Int(rng.gen_range(0..4))
        } else {
            Value::Int(self.ints[rng.gen_range(0..self.ints.len())])
        }
    }
}

fn collect_query_constants(q: &SqlQuery, domain: &mut ValueDomain) {
    fn from_value(v: &Value, domain: &mut ValueDomain) {
        match v {
            Value::Int(i) => {
                // Include neighbours so that strict comparisons can be
                // satisfied on both sides.
                domain.ints.extend([*i - 1, *i, *i + 1]);
            }
            Value::Float(f) => domain.ints.push(*f as i64),
            Value::Str(s) => domain.strings.push(s.to_string()),
            _ => {}
        }
    }
    fn from_expr(e: &graphiti_sql::SqlExpr, domain: &mut ValueDomain) {
        use graphiti_sql::SqlExpr as E;
        match e {
            E::Value(v) => from_value(v, domain),
            E::Cast(p) => from_pred(p, domain),
            E::Agg(_, inner, _) => from_expr(inner, domain),
            E::Arith(a, _, b) => {
                from_expr(a, domain);
                from_expr(b, domain);
            }
            _ => {}
        }
    }
    fn from_pred(p: &SqlPred, domain: &mut ValueDomain) {
        use graphiti_sql::SqlExpr as E;
        match p {
            SqlPred::Cmp(a, _, b) => {
                // Remember column-vs-constant comparisons per column name.
                if let (E::Col(c), E::Value(v)) = (a.as_ref(), b.as_ref()) {
                    domain.note_column_constant(&c.render(), v);
                }
                if let (E::Value(v), E::Col(c)) = (a.as_ref(), b.as_ref()) {
                    domain.note_column_constant(&c.render(), v);
                }
                from_expr(a, domain);
                from_expr(b, domain);
            }
            SqlPred::IsNull(e) => from_expr(e, domain),
            SqlPred::InList(e, vs) => {
                if let E::Col(c) = e.as_ref() {
                    for v in vs {
                        domain.note_column_constant(&c.render(), v);
                    }
                }
                from_expr(e, domain);
                vs.iter().for_each(|v| from_value(v, domain));
            }
            SqlPred::InQuery(es, sub) => {
                es.iter().for_each(|e| from_expr(e, domain));
                collect_query_constants(sub, domain);
            }
            SqlPred::Exists(sub) => collect_query_constants(sub, domain),
            SqlPred::And(a, b) | SqlPred::Or(a, b) => {
                from_pred(a, domain);
                from_pred(b, domain);
            }
            SqlPred::Not(inner) => from_pred(inner, domain),
            SqlPred::Bool(_) => {}
        }
    }
    match q {
        SqlQuery::Table(_) => {}
        SqlQuery::Project { input, items, .. } => {
            items.iter().for_each(|i| from_expr(&i.expr, domain));
            collect_query_constants(input, domain);
        }
        SqlQuery::Select { input, pred } => {
            from_pred(pred, domain);
            collect_query_constants(input, domain);
        }
        SqlQuery::Rename { input, .. } | SqlQuery::OrderBy { input, .. } => {
            collect_query_constants(input, domain);
        }
        SqlQuery::Join { left, right, pred, .. } => {
            from_pred(pred, domain);
            collect_query_constants(left, domain);
            collect_query_constants(right, domain);
        }
        SqlQuery::Union(a, b) | SqlQuery::UnionAll(a, b) => {
            collect_query_constants(a, domain);
            collect_query_constants(b, domain);
        }
        SqlQuery::GroupBy { input, keys, items, having } => {
            keys.iter().for_each(|k| from_expr(k, domain));
            items.iter().for_each(|i| from_expr(&i.expr, domain));
            from_pred(having, domain);
            collect_query_constants(input, domain);
        }
        SqlQuery::With { definition, body, .. } => {
            collect_query_constants(definition, domain);
            collect_query_constants(body, domain);
        }
    }
}

/// Statistics reported by the bounded checker alongside its verdict.
#[derive(Debug, Clone, Default)]
pub struct BmcStats {
    /// Largest bound fully explored.
    pub checked_bound: usize,
    /// Number of instances evaluated.
    pub instances: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl BoundedChecker {
    /// Runs the bounded check and additionally returns search statistics
    /// (used by the Table 2 harness).
    pub fn check_with_stats(
        &self,
        induced_schema: &RelSchema,
        induced_query: &SqlQuery,
        target_schema: &RelSchema,
        target_query: &SqlQuery,
        rdt: &Transformer,
    ) -> Result<(CheckOutcome, BmcStats)> {
        let start = Instant::now();
        let mut stats = BmcStats::default();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let domain = ValueDomain::from_queries(&[induced_query, target_query]);
        let ordered = is_ordered(induced_query) && is_ordered(target_query);
        // Keep sweeping bounds 1..=max_bound with fresh random instances
        // until either a counterexample is found or the time budget runs out
        // (VeriEQL similarly keeps growing its bound within the time limit).
        'search: loop {
            for bound in 1..=self.max_bound {
                for _ in 0..self.instances_per_bound {
                    if start.elapsed() > self.time_budget {
                        break 'search;
                    }
                    let induced = self.generate_instance(induced_schema, bound, &domain, &mut rng);
                    stats.instances += 1;
                    let target = match apply_to_relational(rdt, &induced, target_schema) {
                        Ok(t) => t,
                        Err(_) => continue,
                    };
                    let left = match eval_query(&induced, induced_query) {
                        Ok(t) => t,
                        Err(_) => continue,
                    };
                    let right = match eval_query(&target, target_query) {
                        Ok(t) => t,
                        Err(_) => continue,
                    };
                    let same = if ordered {
                        left.equivalent_ordered(&right)
                    } else {
                        left.equivalent(&right)
                    };
                    if !same {
                        stats.elapsed = start.elapsed();
                        stats.checked_bound = stats.checked_bound.max(bound);
                        let cex = Counterexample {
                            induced_instance: induced,
                            target_instance: target,
                            graph_instance: None,
                            graph_side_result: left,
                            relational_side_result: right,
                        };
                        return Ok((CheckOutcome::Refuted(Box::new(cex)), stats));
                    }
                }
                stats.checked_bound = stats.checked_bound.max(bound);
            }
            if start.elapsed() > self.time_budget {
                break;
            }
        }
        stats.elapsed = start.elapsed();
        Ok((CheckOutcome::BoundedEquivalent { bound: stats.checked_bound }, stats))
    }
}

fn is_ordered(q: &SqlQuery) -> bool {
    matches!(q, SqlQuery::OrderBy { .. })
}

impl SqlEquivChecker for BoundedChecker {
    fn check_sql(
        &self,
        induced_schema: &RelSchema,
        induced_query: &SqlQuery,
        target_schema: &RelSchema,
        target_query: &SqlQuery,
        rdt: &Transformer,
    ) -> Result<CheckOutcome> {
        self.check_with_stats(induced_schema, induced_query, target_schema, target_query, rdt)
            .map(|(outcome, _)| outcome)
    }

    fn name(&self) -> &'static str {
        "bounded-model-checker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphiti_core::{check_equivalence, infer_sdt, reduce};
    use graphiti_cypher::parse_query as parse_cypher;
    use graphiti_graph::{EdgeType, GraphSchema, NodeType};
    use graphiti_sql::parse_query as parse_sql;
    use graphiti_transformer::parse_transformer;

    fn emp_schema() -> GraphSchema {
        GraphSchema::new()
            .with_node(NodeType::new("EMP", ["id", "name"]))
            .with_node(NodeType::new("DEPT", ["dnum", "dname"]))
            .with_edge(EdgeType::new("WORK_AT", "EMP", "DEPT", ["wid"]))
    }

    /// Target relational schema with different table/column names than the
    /// induced one, plus the transformer connecting them.
    fn target_schema() -> graphiti_relational::RelSchema {
        use graphiti_relational::{Constraint, RelSchema, Relation};
        RelSchema::new()
            .with_relation(Relation::new("Employee", ["EmpId", "EmpName"]))
            .with_relation(Relation::new("Department", ["DeptNo", "DeptName"]))
            .with_relation(Relation::new("Assignment", ["AId", "EmpId2", "DeptNo2"]))
            .with_constraint(Constraint::pk("Employee", "EmpId"))
            .with_constraint(Constraint::pk("Department", "DeptNo"))
            .with_constraint(Constraint::pk("Assignment", "AId"))
    }

    fn user_transformer() -> graphiti_transformer::Transformer {
        parse_transformer(
            "EMP(id, name) -> Employee(id, name)\n\
             DEPT(dnum, dname) -> Department(dnum, dname)\n\
             WORK_AT(wid, src, tgt) -> Assignment(wid, src, tgt)",
        )
        .unwrap()
    }

    fn quick_checker() -> BoundedChecker {
        BoundedChecker {
            max_bound: 4,
            instances_per_bound: 400,
            time_budget: Duration::from_secs(30),
            seed: 7,
        }
    }

    #[test]
    fn equivalent_pair_is_bounded_verified() {
        let cypher = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname AS name, Count(n) AS num",
        )
        .unwrap();
        let sql = parse_sql(
            "SELECT d.DeptName AS name, Count(*) AS num FROM Employee AS e \
             JOIN Assignment AS a ON e.EmpId = a.EmpId2 \
             JOIN Department AS d ON a.DeptNo2 = d.DeptNo GROUP BY d.DeptName",
        )
        .unwrap();
        let outcome = check_equivalence(
            &emp_schema(),
            &cypher,
            &target_schema(),
            &sql,
            &user_transformer(),
            &quick_checker(),
        )
        .unwrap();
        assert!(outcome.is_equivalent_verdict(), "unexpected outcome: {outcome:?}");
    }

    #[test]
    fn inequivalent_pair_is_refuted_with_graph_counterexample() {
        let cypher = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname AS name, Count(n) AS num",
        )
        .unwrap();
        // Bug: counts departments per employee name instead (grouping by the
        // wrong column) — not equivalent.
        let sql = parse_sql(
            "SELECT e.EmpName AS name, Count(*) AS num FROM Employee AS e \
             JOIN Assignment AS a ON e.EmpId = a.EmpId2 \
             JOIN Department AS d ON a.DeptNo2 = d.DeptNo GROUP BY e.EmpName",
        )
        .unwrap();
        let outcome = check_equivalence(
            &emp_schema(),
            &cypher,
            &target_schema(),
            &sql,
            &user_transformer(),
            &quick_checker(),
        )
        .unwrap();
        match outcome {
            CheckOutcome::Refuted(cex) => {
                let g = cex.graph_instance.expect("graph counterexample");
                assert!(g.node_count() > 0);
                assert!(!cex.graph_side_result.equivalent(&cex.relational_side_result));
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn appendix_d_item_3_wrong_variable_bug_is_refuted() {
        // The VeriEQL-category bug from Appendix D: the Cypher query fails to
        // introduce a second DEPT node, so its filter collapses to
        // `t0.EmpNo = 5` on the joined department.
        let graph_schema = GraphSchema::new()
            .with_node(NodeType::new("EMPN", ["EmpNo", "EName", "DeptNoRef"]))
            .with_node(NodeType::new("DEPTN", ["DeptNo", "DName"]))
            .with_edge(EdgeType::new("WORK_IN", "EMPN", "DEPTN", ["wid"]));
        let target = {
            use graphiti_relational::{Constraint, RelSchema, Relation};
            RelSchema::new()
                .with_relation(Relation::new("EMP", ["EmpNo", "EName", "DeptNo"]))
                .with_relation(Relation::new("DEPT", ["DeptNo", "DName"]))
                .with_constraint(Constraint::pk("EMP", "EmpNo"))
                .with_constraint(Constraint::pk("DEPT", "DeptNo"))
        };
        let transformer =
            parse_transformer("EMPN(e, n, d) -> EMP(e, n, d)\nDEPTN(d, n) -> DEPT(d, n)").unwrap();
        let sql = parse_sql(
            "SELECT t0.EmpNo, t0.DeptNo, t1.DeptNo AS DeptNo0 FROM ( \
               SELECT EmpNo, EName, DeptNo, DeptNo + EmpNo AS f9 FROM EMP WHERE EmpNo = 10 \
             ) AS t0 JOIN (SELECT DeptNo, DName, DeptNo + 5 AS f2 FROM DEPT) AS t1 \
             ON t0.EmpNo = t1.DeptNo AND t0.f9 = t1.f2",
        )
        .unwrap();
        let cypher = parse_cypher(
            "MATCH (t0:EMPN {EmpNo: 10})-[w:WORK_IN]->(t1:DEPTN) \
             WHERE t1.DeptNo + t0.EmpNo = t1.DeptNo + 5 \
             RETURN t0.EmpNo, t1.DeptNo, t1.DeptNo AS DeptNo0",
        )
        .unwrap();
        let outcome = check_equivalence(
            &graph_schema,
            &cypher,
            &target,
            &sql,
            &transformer,
            &quick_checker(),
        )
        .unwrap();
        assert!(outcome.is_refuted(), "expected refutation, got {outcome:?}");
    }

    #[test]
    fn generated_instances_respect_constraints() {
        let ctx = infer_sdt(&emp_schema()).unwrap();
        let checker = quick_checker();
        let mut rng = StdRng::seed_from_u64(3);
        let domain = ValueDomain::from_queries(&[]);
        for bound in 1..=4 {
            for _ in 0..25 {
                let inst = checker.generate_instance(&ctx.induced_schema, bound, &domain, &mut rng);
                assert!(inst.validate(&ctx.induced_schema).is_ok());
                for (_, t) in inst.tables() {
                    assert!(t.len() <= bound);
                }
            }
        }
    }

    #[test]
    fn stats_report_bound_and_instances() {
        let cypher = parse_cypher("MATCH (n:EMP) RETURN n.id").unwrap();
        let user = user_transformer();
        let reduction = reduce(&emp_schema(), &cypher, &user).unwrap();
        let sql = parse_sql("SELECT e.EmpId FROM Employee AS e").unwrap();
        let checker = quick_checker();
        let (outcome, stats) = checker
            .check_with_stats(
                &reduction.ctx.induced_schema,
                &reduction.transpiled,
                &target_schema(),
                &sql,
                &reduction.rdt,
            )
            .unwrap();
        assert!(outcome.is_equivalent_verdict());
        assert!(stats.instances > 0);
        assert!(stats.checked_bound >= 1);
    }
}
