//! SQL equivalence-checking backends for Graphiti.
//!
//! The paper plugs two off-the-shelf verifiers into its reduction:
//! VeriEQL (a bounded model checker) and Mediator (a deductive verifier).
//! Neither is available as a Rust library, so this crate provides
//! behaviourally equivalent substitutes implementing the
//! [`graphiti_core::SqlEquivChecker`] trait:
//!
//! * [`BoundedChecker`] — enumerative/randomized bounded model checking with
//!   constraint-respecting instance generation and concrete
//!   counterexamples (`bmc` module);
//! * [`DeductiveChecker`] — unbounded verification for the
//!   aggregation-free, outer-join-free fragment via view unfolding through
//!   the residual transformer and union-of-conjunctive-queries isomorphism
//!   (`deductive` module).
//!
//! See DESIGN.md for how these substitutions preserve the shape of the
//! paper's experiments.

pub mod bmc;
pub mod deductive;

pub use bmc::{BmcStats, BoundedChecker, ValueDomain};
pub use deductive::{in_supported_fragment, DeductiveChecker};
