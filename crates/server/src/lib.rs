//! Serving front-end for the graphiti store.
//!
//! This crate turns an embedded [`Graphiti`](graphiti_store::Graphiti)
//! service into a network server, without pulling in an async runtime:
//! a hand-rolled **length-prefixed binary protocol** (the store's own
//! WAL codec behind [`graphiti_store::codec`]) over TCP or unix-domain
//! sockets, one OS thread per connection.
//!
//! * [`protocol`] — the frame format and typed request/response codec.
//!   Decoding is total: hostile bytes become typed errors, never
//!   panics.
//! * [`Server`] — the accept loop.  Admission control is a connection
//!   cap (typed backpressure frame at accept) plus the service's
//!   bounded group-commit queue (typed backpressure reply per commit).
//!   A panicking handler answers with a typed internal-error frame and
//!   closes the session instead of hanging the client.
//! * [`Client`]/[`WireSession`] — the client side, implementing the
//!   same [`Session`](graphiti_store::Session) trait as the in-process
//!   embedding, down to the error vocabulary.  The `_with` connectors
//!   add bounded retries with jittered backoff, per-request deadlines,
//!   and idempotency-tokened commits (exactly-once across retries).
//!
//! The request lifecycle is governed end to end: every socket read
//! runs under a timeout tick, every request carries a deadline budget
//! checked at admission / before the commit queue / before reply
//! serialization, idle and stalled peers are reaped, and shutdown
//! drains in bounded time ([`ServerHandle::shutdown`] returns a
//! [`DrainReport`]).
//!
//! Sessions are **pinned**: a wire session reads the snapshot
//! generation it opened at until it explicitly refreshes; its own
//! commits re-pin it (read-your-writes).  Writes from all connections
//! funnel into the service's group committer, so concurrent commits
//! coalesce into one fsync and one publication.

#![warn(missing_docs)]

pub mod protocol;

mod client;
mod server;

pub use client::{Client, ClientOptions, RetryPolicy, WireSession};
pub use protocol::IntrospectMode;
pub use server::{DrainReport, Server, ServerHandle, ServerOptions, DEADLINE_ENV};
