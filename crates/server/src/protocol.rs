//! The wire protocol: length-prefixed, CRC-framed binary messages.
//!
//! Every message is one **frame**:
//!
//! ```text
//! len: u32 LE | crc: u32 LE | payload (len bytes)
//! ```
//!
//! where `crc` is the store's CRC-32 (IEEE) over the payload — the same
//! checksum and little-endian primitive encoding the WAL uses, via
//! [`graphiti_store::codec`], so there is exactly one binary codec in
//! the system to fuzz and keep honest.  The payload is
//!
//! ```text
//! requests:  kind: u8 | request_id: u64 LE | deadline_ms: u32 LE | body
//! responses: kind: u8 | request_id: u64 LE | body (kind-specific)
//! ```
//!
//! Request ids are chosen by the client and echoed verbatim by the
//! server, which answers every request with exactly one frame (typed
//! reply or [`Response::Error`]).  `deadline_ms` is the request's
//! deadline budget in milliseconds measured from server receipt; `0`
//! means the client sets no deadline and the server applies its
//! default.  Decoding is **total**: truncated, oversized,
//! checksum-corrupt, or otherwise malformed bytes produce a typed
//! [`ApiError::Protocol`] — never a panic, no matter how hostile the
//! input.

use graphiti_common::{ApiError, ApiResult, Error};
use graphiti_engine::{BatchQuery, BatchReport, QueryOutcome, SqlTarget};
use graphiti_relational::Table;
use graphiti_store::codec::{self, Reader};
use graphiti_store::{CommitAck, Delta, ServiceStats};
use std::io::{Read, Write};

/// Protocol revision; a [`Request::Hello`] outside the supported range
/// is refused.  Version 2 added the `deadline_ms` request-header field
/// and the commit idempotency token.  Version 3 adds a `trace_id: u64`
/// request-header field after `deadline_ms` on every post-`Hello`
/// request (the `Hello` frame itself keeps the version-2 layout so the
/// negotiation is decodable before a version is known), the
/// [`Request::Introspect`] and [`Request::QueryProfiled`] kinds, and
/// five appended observability fields on the `Stats` reply.
pub const PROTOCOL_VERSION: u32 = 3;

/// Oldest protocol revision the server still speaks.  A version-2 peer
/// gets version-2 framing back (no trace ids, no appended stats
/// fields); the version-3 request kinds are refused on its connection.
pub const MIN_PROTOCOL_VERSION: u32 = 2;

/// Default ceiling on one frame's payload (16 MiB).  A peer advertising
/// a larger frame is cut off before any allocation happens.
pub const DEFAULT_MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Everything a client can ask.
#[derive(Debug, Clone)]
pub enum Request {
    /// Version handshake; must be the first request on a connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Opens the connection's session, pinned at the latest published
    /// generation (reopening re-pins).
    OpenSession,
    /// Runs one query on the session's pinned snapshot.
    Query(BatchQuery),
    /// Runs a batch on the session's pinned snapshot.
    Batch(Vec<BatchQuery>),
    /// Commits a delta through the server's group-commit write path.
    Commit {
        /// The mutation to apply.
        delta: Delta,
        /// Client-generated idempotency token; `0` means untagged.  A
        /// retried commit resending the same non-zero token is deduped
        /// by the store (the replay returns the original generation).
        token: u128,
    },
    /// Re-pins the session to the latest published generation.
    Refresh,
    /// Fetches service-level counters.
    Stats,
    /// Forces a checkpoint (durable stores only).
    Checkpoint,
    /// Closes the session (the server replies, then the connection
    /// winds down).
    Close,
    /// Fetches the live observability surface (protocol v3+).
    Introspect {
        /// What to render: see [`IntrospectMode`].
        mode: IntrospectMode,
    },
    /// Runs one query with per-operator profiling enabled (protocol
    /// v3+); the reply carries the result rows plus the profile.
    QueryProfiled(BatchQuery),
}

/// What a [`Request::Introspect`] renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntrospectMode {
    /// The metrics registry as Prometheus-style text.
    Metrics,
    /// Recent trace span events as JSON.
    Traces,
    /// The slow-query log as JSON.
    SlowQueries,
}

impl IntrospectMode {
    fn to_wire(self) -> u8 {
        match self {
            IntrospectMode::Metrics => 0,
            IntrospectMode::Traces => 1,
            IntrospectMode::SlowQueries => 2,
        }
    }

    fn from_wire(v: u8) -> ApiResult<IntrospectMode> {
        match v {
            0 => Ok(IntrospectMode::Metrics),
            1 => Ok(IntrospectMode::Traces),
            2 => Ok(IntrospectMode::SlowQueries),
            other => Err(proto_err(format!("unknown introspect mode {other}"))),
        }
    }
}

/// Everything the server can answer.
#[derive(Debug)]
pub enum Response {
    /// Handshake accepted.
    HelloOk {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Session opened and pinned.
    SessionOpen {
        /// The pinned snapshot generation.
        generation: u64,
    },
    /// A query's result table.
    Rows(Table),
    /// A batch's full report (per-query outcomes keep their errors).
    BatchOk(BatchReport),
    /// A commit went through.
    CommitOk {
        /// The commit's own and published generations.
        ack: CommitAck,
        /// The generation the session is pinned at after the commit
        /// (read-your-writes).
        session_generation: u64,
    },
    /// The generation after a [`Request::Refresh`].
    Generation(u64),
    /// Service counters.
    StatsOk(ServiceStats),
    /// Generation covered by the forced checkpoint.
    CheckpointOk(u64),
    /// Session closed.
    Closed,
    /// The rendered observability surface (protocol v3+): Prometheus
    /// text for metrics, JSON for traces and slow queries.
    IntrospectOk(String),
    /// A profiled query's result table plus its per-operator profile,
    /// rendered as JSON (protocol v3+).
    RowsProfiled {
        /// The result rows (identical to the unprofiled query's).
        table: Table,
        /// The [`QueryProfile`](graphiti_obs::profile::QueryProfile) as
        /// a JSON object.
        profile_json: String,
    },
    /// The request failed; the pair round-trips through
    /// [`ApiError::from_wire`].
    Error {
        /// [`ApiError::code`] of the failure.
        code: u16,
        /// Human-readable message.
        message: String,
    },
}

// Request kinds. Response kinds are the request's | 0x80, errors 0xEE.
const K_HELLO: u8 = 0x01;
const K_OPEN: u8 = 0x02;
const K_QUERY: u8 = 0x03;
const K_BATCH: u8 = 0x04;
const K_COMMIT: u8 = 0x05;
const K_REFRESH: u8 = 0x06;
const K_STATS: u8 = 0x07;
const K_CHECKPOINT: u8 = 0x08;
const K_CLOSE: u8 = 0x09;
const K_INTROSPECT: u8 = 0x0A;
const K_QUERY_PROFILED: u8 = 0x0B;
const K_ERROR: u8 = 0xEE;

fn proto_err(detail: impl Into<String>) -> ApiError {
    ApiError::Protocol(detail.into())
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/// Wraps a payload into one wire frame (header + payload bytes).
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    codec::put_u32(&mut out, payload.len() as u32);
    codec::put_u32(&mut out, codec::crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> ApiResult<()> {
    w.write_all(&frame(payload)).map_err(|e| ApiError::Io(e.to_string()))?;
    w.flush().map_err(|e| ApiError::Io(e.to_string()))
}

/// Reads one frame's payload.  `Ok(None)` is a clean end-of-stream (the
/// peer closed between frames); anything torn, oversized, or
/// checksum-corrupt is a typed [`ApiError::Protocol`].
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> ApiResult<Option<Vec<u8>>> {
    let mut header = [0u8; 8];
    let mut filled = 0usize;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(proto_err("connection closed inside a frame header")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ApiError::Io(e.to_string())),
        }
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len == 0 {
        return Err(proto_err("empty frame payload"));
    }
    if len > max_frame {
        return Err(proto_err(format!("oversized frame: {len} bytes exceeds the {max_frame} cap")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            proto_err("connection closed inside a frame payload")
        } else {
            ApiError::Io(e.to_string())
        }
    })?;
    if codec::crc32(&payload) != crc {
        return Err(proto_err("frame checksum mismatch"));
    }
    Ok(Some(payload))
}

// ---------------------------------------------------------------------
// Body primitives
// ---------------------------------------------------------------------

fn put_query(buf: &mut Vec<u8>, q: &BatchQuery) {
    match q {
        BatchQuery::Cypher { text } => {
            buf.push(1);
            codec::put_str(buf, text);
        }
        BatchQuery::Sql { text, target: SqlTarget::Induced } => {
            buf.push(2);
            codec::put_str(buf, text);
        }
        BatchQuery::Sql { text, target: SqlTarget::Named(name) } => {
            buf.push(3);
            codec::put_str(buf, text);
            codec::put_str(buf, name);
        }
    }
}

fn read_query(r: &mut Reader<'_>) -> ApiResult<BatchQuery> {
    let tag = r.u8().map_err(wire_decode)?;
    let text = r.str().map_err(wire_decode)?;
    match tag {
        1 => Ok(BatchQuery::Cypher { text }),
        2 => Ok(BatchQuery::Sql { text, target: SqlTarget::Induced }),
        3 => {
            let name = r.str().map_err(wire_decode)?;
            Ok(BatchQuery::Sql { text, target: SqlTarget::Named(name) })
        }
        other => Err(proto_err(format!("unknown query tag {other}"))),
    }
}

fn put_table(buf: &mut Vec<u8>, t: &Table) {
    codec::put_u32(buf, t.columns.len() as u32);
    for c in &t.columns {
        codec::put_str(buf, c);
    }
    codec::put_u32(buf, t.rows.len() as u32);
    for row in &t.rows {
        for v in row {
            codec::put_value(buf, v);
        }
    }
}

fn read_table(r: &mut Reader<'_>) -> ApiResult<Table> {
    let ncols = r.u32().map_err(wire_decode)? as usize;
    let mut columns = Vec::with_capacity(ncols.min(4096));
    for _ in 0..ncols {
        columns.push(r.str().map_err(wire_decode)?);
    }
    let nrows = r.u32().map_err(wire_decode)? as usize;
    let mut table = Table::new(columns);
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(r.value().map_err(wire_decode)?);
        }
        table.push_row(row);
    }
    Ok(table)
}

/// A decode failure inside a frame body is a protocol error (the frame
/// passed its checksum, so this is a malformed or hostile *payload*).
fn wire_decode(e: Error) -> ApiError {
    proto_err(format!("malformed frame body: {e}"))
}

fn put_stats(buf: &mut Vec<u8>, s: &ServiceStats, version: u32) {
    codec::put_u64(buf, s.generation);
    codec::put_u64(buf, s.commits);
    codec::put_u64(buf, s.rejected_commits);
    codec::put_u64(buf, s.live_nodes);
    codec::put_u64(buf, s.live_edges);
    buf.push(s.fenced as u8);
    codec::put_u64(buf, s.groups_formed);
    codec::put_u64(buf, s.group_members);
    codec::put_u64(buf, s.backpressured);
    codec::put_u64(buf, s.idempotent_replays);
    codec::put_u64(buf, s.deadlines_exceeded);
    codec::put_u64(buf, s.connections_reaped);
    codec::put_u64(buf, s.draining_refusals);
    codec::put_u64(buf, s.drain_micros);
    if version >= 3 {
        // Version 3 appends the observability view; a version-2 reader
        // decoding these extra bytes fails its trailing-bytes check with
        // a typed Protocol error instead of misreading them.
        codec::put_u64(buf, s.queries);
        codec::put_u64(buf, s.query_p95_micros);
        codec::put_u64(buf, s.spans_recorded);
        codec::put_u64(buf, s.spans_dropped);
        codec::put_u64(buf, s.slow_queries);
    }
}

fn read_stats(r: &mut Reader<'_>, version: u32) -> ApiResult<ServiceStats> {
    let mut stats = ServiceStats {
        generation: r.u64().map_err(wire_decode)?,
        commits: r.u64().map_err(wire_decode)?,
        rejected_commits: r.u64().map_err(wire_decode)?,
        live_nodes: r.u64().map_err(wire_decode)?,
        live_edges: r.u64().map_err(wire_decode)?,
        fenced: r.u8().map_err(wire_decode)? != 0,
        groups_formed: r.u64().map_err(wire_decode)?,
        group_members: r.u64().map_err(wire_decode)?,
        backpressured: r.u64().map_err(wire_decode)?,
        idempotent_replays: r.u64().map_err(wire_decode)?,
        deadlines_exceeded: r.u64().map_err(wire_decode)?,
        connections_reaped: r.u64().map_err(wire_decode)?,
        draining_refusals: r.u64().map_err(wire_decode)?,
        drain_micros: r.u64().map_err(wire_decode)?,
        queries: 0,
        query_p95_micros: 0,
        spans_recorded: 0,
        spans_dropped: 0,
        slow_queries: 0,
    };
    if version >= 3 {
        stats.queries = r.u64().map_err(wire_decode)?;
        stats.query_p95_micros = r.u64().map_err(wire_decode)?;
        stats.spans_recorded = r.u64().map_err(wire_decode)?;
        stats.spans_dropped = r.u64().map_err(wire_decode)?;
        stats.slow_queries = r.u64().map_err(wire_decode)?;
    }
    Ok(stats)
}

fn put_report(buf: &mut Vec<u8>, report: &BatchReport) {
    codec::put_u32(buf, report.outcomes.len() as u32);
    for outcome in &report.outcomes {
        match &outcome.result {
            Ok(table) => {
                buf.push(1);
                put_table(buf, table);
            }
            Err(e) => {
                buf.push(0);
                let (code, message) = ApiError::from(e.clone()).to_wire();
                codec::put_u16(buf, code);
                codec::put_str(buf, &message);
            }
        }
        codec::put_u64(buf, outcome.micros);
        buf.push(outcome.cache_hit as u8);
    }
    codec::put_u64(buf, report.wall_micros);
    codec::put_u32(buf, report.workers as u32);
    codec::put_u64(buf, report.cache_hits);
    codec::put_u64(buf, report.cache_misses);
}

fn read_report(r: &mut Reader<'_>) -> ApiResult<BatchReport> {
    let n = r.u32().map_err(wire_decode)? as usize;
    let mut outcomes = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let result = match r.u8().map_err(wire_decode)? {
            1 => Ok(read_table(r)?),
            0 => {
                let code = r.u16().map_err(wire_decode)?;
                let message = r.str().map_err(wire_decode)?;
                Err(Error::from(ApiError::from_wire(code, message)))
            }
            other => return Err(proto_err(format!("unknown outcome tag {other}"))),
        };
        let micros = r.u64().map_err(wire_decode)?;
        let cache_hit = r.u8().map_err(wire_decode)? != 0;
        outcomes.push(QueryOutcome { result, micros, cache_hit, profile: None });
    }
    Ok(BatchReport {
        outcomes,
        wall_micros: r.u64().map_err(wire_decode)?,
        workers: r.u32().map_err(wire_decode)? as usize,
        cache_hits: r.u64().map_err(wire_decode)?,
        cache_misses: r.u64().map_err(wire_decode)?,
    })
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// Encodes a request payload with version-2 framing (no trace id).
/// `deadline_ms` is the request's deadline budget in milliseconds from
/// server receipt; `0` defers to the server default.
pub fn encode_request(request_id: u64, deadline_ms: u32, req: &Request) -> Vec<u8> {
    encode_request_versioned(MIN_PROTOCOL_VERSION, request_id, deadline_ms, 0, req)
}

/// Encodes a request payload for a negotiated protocol `version` (frame
/// it with [`write_frame`]).  On version 3+ every request except
/// [`Request::Hello`] carries `trace_id` after the deadline; `0` asks
/// the server to mint one.  `Hello` always uses the version-2 layout so
/// the handshake decodes before any version is agreed.
pub fn encode_request_versioned(
    version: u32,
    request_id: u64,
    deadline_ms: u32,
    trace_id: u64,
    req: &Request,
) -> Vec<u8> {
    let mut buf = Vec::new();
    let kind = match req {
        Request::Hello { .. } => K_HELLO,
        Request::OpenSession => K_OPEN,
        Request::Query(_) => K_QUERY,
        Request::Batch(_) => K_BATCH,
        Request::Commit { .. } => K_COMMIT,
        Request::Refresh => K_REFRESH,
        Request::Stats => K_STATS,
        Request::Checkpoint => K_CHECKPOINT,
        Request::Close => K_CLOSE,
        Request::Introspect { .. } => K_INTROSPECT,
        Request::QueryProfiled(_) => K_QUERY_PROFILED,
    };
    buf.push(kind);
    codec::put_u64(&mut buf, request_id);
    codec::put_u32(&mut buf, deadline_ms);
    if version >= 3 && kind != K_HELLO {
        codec::put_u64(&mut buf, trace_id);
    }
    match req {
        Request::Hello { version } => codec::put_u32(&mut buf, *version),
        Request::Query(q) => put_query(&mut buf, q),
        Request::Batch(qs) => {
            codec::put_u32(&mut buf, qs.len() as u32);
            for q in qs {
                put_query(&mut buf, q);
            }
        }
        Request::Commit { delta, token } => {
            codec::put_u64(&mut buf, (*token >> 64) as u64);
            codec::put_u64(&mut buf, *token as u64);
            codec::put_delta(&mut buf, delta);
        }
        Request::Introspect { mode } => buf.push(mode.to_wire()),
        Request::QueryProfiled(q) => put_query(&mut buf, q),
        Request::OpenSession
        | Request::Refresh
        | Request::Stats
        | Request::Checkpoint
        | Request::Close => {}
    }
    buf
}

/// Decodes a version-2 request payload into
/// `(request_id, deadline_ms, request)`.
pub fn decode_request(payload: &[u8]) -> (u64, u32, ApiResult<Request>) {
    let (request_id, deadline_ms, _trace, req) =
        decode_request_versioned(payload, MIN_PROTOCOL_VERSION);
    (request_id, deadline_ms, req)
}

/// Decodes a request payload for a negotiated protocol `version` into
/// `(request_id, deadline_ms, trace_id, request)`.  The returned id is
/// `0` when the payload is too short to even carry one — the server
/// still has something to address its error reply to; likewise the
/// deadline and trace id degrade to `0` (server default / untraced).
/// On version 2 the trace id is always `0`.
pub fn decode_request_versioned(
    payload: &[u8],
    version: u32,
) -> (u64, u32, u64, ApiResult<Request>) {
    let mut r = Reader::new(payload);
    let Ok(kind) = r.u8() else {
        return (0, 0, 0, Err(proto_err("empty request payload")));
    };
    let Ok(request_id) = r.u64() else {
        return (0, 0, 0, Err(proto_err("request payload too short for a request id")));
    };
    let Ok(deadline_ms) = r.u32() else {
        return (request_id, 0, 0, Err(proto_err("request payload too short for a deadline")));
    };
    let trace_id = if version >= 3 && kind != K_HELLO {
        match r.u64() {
            Ok(t) => t,
            Err(_) => {
                return (
                    request_id,
                    deadline_ms,
                    0,
                    Err(proto_err("request payload too short for a trace id")),
                );
            }
        }
    } else {
        0
    };
    let req = decode_request_body(kind, &mut r, version);
    let req = req.and_then(|req| {
        if r.is_done() {
            Ok(req)
        } else {
            Err(proto_err("trailing bytes after the request body"))
        }
    });
    (request_id, deadline_ms, trace_id, req)
}

fn decode_request_body(kind: u8, r: &mut Reader<'_>, version: u32) -> ApiResult<Request> {
    if version < 3 && matches!(kind, K_INTROSPECT | K_QUERY_PROFILED) {
        return Err(proto_err(format!(
            "request kind 0x{kind:02x} requires protocol version 3 (negotiated {version})"
        )));
    }
    match kind {
        K_HELLO => Ok(Request::Hello { version: r.u32().map_err(wire_decode)? }),
        K_OPEN => Ok(Request::OpenSession),
        K_QUERY => Ok(Request::Query(read_query(r)?)),
        K_BATCH => {
            let n = r.u32().map_err(wire_decode)? as usize;
            let mut qs = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                qs.push(read_query(r)?);
            }
            Ok(Request::Batch(qs))
        }
        K_COMMIT => {
            let hi = r.u64().map_err(wire_decode)?;
            let lo = r.u64().map_err(wire_decode)?;
            let token = ((hi as u128) << 64) | lo as u128;
            Ok(Request::Commit { delta: r.delta().map_err(wire_decode)?, token })
        }
        K_REFRESH => Ok(Request::Refresh),
        K_STATS => Ok(Request::Stats),
        K_CHECKPOINT => Ok(Request::Checkpoint),
        K_CLOSE => Ok(Request::Close),
        K_INTROSPECT => Ok(Request::Introspect {
            mode: IntrospectMode::from_wire(r.u8().map_err(wire_decode)?)?,
        }),
        K_QUERY_PROFILED => Ok(Request::QueryProfiled(read_query(r)?)),
        other => Err(proto_err(format!("unknown request kind 0x{other:02x}"))),
    }
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// Encodes a response payload with version-2 framing.
pub fn encode_response(request_id: u64, resp: &Response) -> Vec<u8> {
    encode_response_versioned(MIN_PROTOCOL_VERSION, request_id, resp)
}

/// Encodes a response payload for a negotiated protocol `version`
/// (frame it with [`write_frame`]).  The version picks the `Stats`
/// layout: version-2 peers get the original fourteen fields, version-3
/// peers get the appended observability fields too.
pub fn encode_response_versioned(version: u32, request_id: u64, resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    let kind = match resp {
        Response::HelloOk { .. } => K_HELLO | 0x80,
        Response::SessionOpen { .. } => K_OPEN | 0x80,
        Response::Rows(_) => K_QUERY | 0x80,
        Response::BatchOk(_) => K_BATCH | 0x80,
        Response::CommitOk { .. } => K_COMMIT | 0x80,
        Response::Generation(_) => K_REFRESH | 0x80,
        Response::StatsOk(_) => K_STATS | 0x80,
        Response::CheckpointOk(_) => K_CHECKPOINT | 0x80,
        Response::Closed => K_CLOSE | 0x80,
        Response::IntrospectOk(_) => K_INTROSPECT | 0x80,
        Response::RowsProfiled { .. } => K_QUERY_PROFILED | 0x80,
        Response::Error { .. } => K_ERROR,
    };
    buf.push(kind);
    codec::put_u64(&mut buf, request_id);
    match resp {
        Response::HelloOk { version } => codec::put_u32(&mut buf, *version),
        Response::SessionOpen { generation } => codec::put_u64(&mut buf, *generation),
        Response::Rows(table) => put_table(&mut buf, table),
        Response::BatchOk(report) => put_report(&mut buf, report),
        Response::CommitOk { ack, session_generation } => {
            codec::put_u64(&mut buf, ack.generation);
            codec::put_u64(&mut buf, ack.published_generation);
            codec::put_u64(&mut buf, *session_generation);
        }
        Response::Generation(g) => codec::put_u64(&mut buf, *g),
        Response::StatsOk(stats) => put_stats(&mut buf, stats, version),
        Response::CheckpointOk(g) => codec::put_u64(&mut buf, *g),
        Response::Closed => {}
        Response::IntrospectOk(text) => codec::put_str(&mut buf, text),
        Response::RowsProfiled { table, profile_json } => {
            put_table(&mut buf, table);
            codec::put_str(&mut buf, profile_json);
        }
        Response::Error { code, message } => {
            codec::put_u16(&mut buf, *code);
            codec::put_str(&mut buf, message);
        }
    }
    buf
}

/// Decodes a version-2 response payload into `(request_id, response)`.
pub fn decode_response(payload: &[u8]) -> (u64, ApiResult<Response>) {
    decode_response_versioned(payload, MIN_PROTOCOL_VERSION)
}

/// Decodes a response payload for a negotiated protocol `version` into
/// `(request_id, response)`.  A version-2 decoder handed a version-3
/// payload fails typed: extra `Stats` bytes trip the trailing-bytes
/// check and the version-3 response kinds are refused outright.
pub fn decode_response_versioned(payload: &[u8], version: u32) -> (u64, ApiResult<Response>) {
    let mut r = Reader::new(payload);
    let Ok(kind) = r.u8() else {
        return (0, Err(proto_err("empty response payload")));
    };
    let Ok(request_id) = r.u64() else {
        return (0, Err(proto_err("response payload too short for a request id")));
    };
    let resp = decode_response_body(kind, &mut r, version);
    let resp = resp.and_then(|resp| {
        if r.is_done() {
            Ok(resp)
        } else {
            Err(proto_err("trailing bytes after the response body"))
        }
    });
    (request_id, resp)
}

fn decode_response_body(kind: u8, r: &mut Reader<'_>, version: u32) -> ApiResult<Response> {
    if version < 3 && matches!(kind, k if k == K_INTROSPECT | 0x80 || k == K_QUERY_PROFILED | 0x80)
    {
        return Err(proto_err(format!(
            "response kind 0x{kind:02x} requires protocol version 3 (negotiated {version})"
        )));
    }
    match kind {
        k if k == K_HELLO | 0x80 => {
            Ok(Response::HelloOk { version: r.u32().map_err(wire_decode)? })
        }
        k if k == K_OPEN | 0x80 => {
            Ok(Response::SessionOpen { generation: r.u64().map_err(wire_decode)? })
        }
        k if k == K_QUERY | 0x80 => Ok(Response::Rows(read_table(r)?)),
        k if k == K_BATCH | 0x80 => Ok(Response::BatchOk(read_report(r)?)),
        k if k == K_COMMIT | 0x80 => {
            let generation = r.u64().map_err(wire_decode)?;
            let published_generation = r.u64().map_err(wire_decode)?;
            let session_generation = r.u64().map_err(wire_decode)?;
            Ok(Response::CommitOk {
                ack: CommitAck { generation, published_generation },
                session_generation,
            })
        }
        k if k == K_REFRESH | 0x80 => Ok(Response::Generation(r.u64().map_err(wire_decode)?)),
        k if k == K_STATS | 0x80 => Ok(Response::StatsOk(read_stats(r, version)?)),
        k if k == K_CHECKPOINT | 0x80 => Ok(Response::CheckpointOk(r.u64().map_err(wire_decode)?)),
        k if k == K_CLOSE | 0x80 => Ok(Response::Closed),
        k if k == K_INTROSPECT | 0x80 => Ok(Response::IntrospectOk(r.str().map_err(wire_decode)?)),
        k if k == K_QUERY_PROFILED | 0x80 => {
            let table = read_table(r)?;
            let profile_json = r.str().map_err(wire_decode)?;
            Ok(Response::RowsProfiled { table, profile_json })
        }
        k if k == K_ERROR => {
            let code = r.u16().map_err(wire_decode)?;
            let message = r.str().map_err(wire_decode)?;
            Ok(Response::Error { code, message })
        }
        other => Err(proto_err(format!("unknown response kind 0x{other:02x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphiti_common::Value;

    #[test]
    fn frames_round_trip_and_detect_corruption() {
        let payload = encode_request(7, 0, &Request::Refresh);
        let framed = frame(&payload);
        let mut cursor = std::io::Cursor::new(framed.clone());
        let got = read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(got, payload);
        // Clean EOF at a frame boundary.
        assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().is_none());
        // A flipped payload byte fails the checksum.
        let mut bad = framed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        let err = read_frame(&mut std::io::Cursor::new(bad), DEFAULT_MAX_FRAME).unwrap_err();
        assert!(matches!(err, ApiError::Protocol(_)), "{err}");
        // Every truncation is typed, never a panic.
        for cut in 0..framed.len() {
            match read_frame(&mut std::io::Cursor::new(&framed[..cut]), DEFAULT_MAX_FRAME) {
                Ok(None) => assert_eq!(cut, 0, "only the empty prefix is a clean EOF"),
                Ok(Some(_)) => panic!("cut at {cut} decoded a whole frame"),
                Err(ApiError::Protocol(_)) => {}
                Err(other) => panic!("cut at {cut}: unexpected {other}"),
            }
        }
    }

    #[test]
    fn oversized_frames_are_refused_before_allocation() {
        let mut header = Vec::new();
        codec::put_u32(&mut header, u32::MAX);
        codec::put_u32(&mut header, 0);
        let err = read_frame(&mut std::io::Cursor::new(header), 1024).unwrap_err();
        assert!(err.to_string().contains("oversized"), "{err}");
    }

    #[test]
    fn requests_round_trip() {
        let mut delta = Delta::new();
        delta.add_node("EMP", [("id", Value::Int(1)), ("name", Value::str("Ada"))]);
        let reqs = [
            Request::Hello { version: PROTOCOL_VERSION },
            Request::OpenSession,
            Request::Query(BatchQuery::cypher("MATCH (n:EMP) RETURN n.id AS i")),
            Request::Query(BatchQuery::sql_on("aux", "SELECT x FROM side")),
            Request::Batch(vec![
                BatchQuery::sql("SELECT Count(*) AS c FROM EMP AS e"),
                BatchQuery::cypher("MATCH (n:EMP) RETURN n.name AS w"),
            ]),
            Request::Commit { delta, token: (0xFEED_u128 << 64) | 0xBEEF },
            Request::Commit { delta: Delta::new(), token: 0 },
            Request::Refresh,
            Request::Stats,
            Request::Checkpoint,
            Request::Close,
        ];
        for (i, req) in reqs.into_iter().enumerate() {
            let deadline_ms = (i as u32) * 250;
            let payload = encode_request(i as u64, deadline_ms, &req);
            let (id, got_deadline, got) = decode_request(&payload);
            assert_eq!(id, i as u64);
            assert_eq!(got_deadline, deadline_ms);
            let got = got.unwrap_or_else(|e| panic!("decoding {req:?}: {e}"));
            // Delta is not PartialEq; compare the debug projection.
            assert_eq!(format!("{got:?}"), format!("{req:?}"));
        }
    }

    #[test]
    fn responses_round_trip() {
        let mut table = Table::new(["id", "name"]);
        table.push_row(vec![Value::Int(1), Value::str("Ada")]);
        table.push_row(vec![Value::Null, Value::Bool(true)]);
        let resps = [
            Response::HelloOk { version: 1 },
            Response::SessionOpen { generation: 42 },
            Response::Rows(table),
            Response::CommitOk {
                ack: CommitAck { generation: 7, published_generation: 9 },
                session_generation: 9,
            },
            Response::Generation(11),
            Response::StatsOk(ServiceStats {
                generation: 9,
                commits: 7,
                rejected_commits: 1,
                live_nodes: 5,
                live_edges: 2,
                fenced: false,
                groups_formed: 3,
                group_members: 7,
                backpressured: 4,
                idempotent_replays: 2,
                deadlines_exceeded: 6,
                connections_reaped: 1,
                draining_refusals: 3,
                drain_micros: 1234,
                queries: 0,
                query_p95_micros: 0,
                spans_recorded: 0,
                spans_dropped: 0,
                slow_queries: 0,
            }),
            Response::CheckpointOk(9),
            Response::Closed,
            Response::Error { code: 10, message: "queue full".into() },
        ];
        for (i, resp) in resps.into_iter().enumerate() {
            let payload = encode_response(i as u64, &resp);
            let (id, got) = decode_response(&payload);
            assert_eq!(id, i as u64);
            let got = got.unwrap_or_else(|e| panic!("decoding {resp:?}: {e}"));
            assert_eq!(format!("{got:?}"), format!("{resp:?}"));
        }
    }

    #[test]
    fn batch_reports_round_trip_with_mixed_outcomes() {
        let mut table = Table::new(["c"]);
        table.push_row(vec![Value::Int(3)]);
        let report = BatchReport {
            outcomes: vec![
                QueryOutcome { result: Ok(table), micros: 120, cache_hit: true, profile: None },
                QueryOutcome {
                    result: Err(Error::eval("unknown column `x`")),
                    micros: 40,
                    cache_hit: false,
                    profile: None,
                },
            ],
            wall_micros: 200,
            workers: 2,
            cache_hits: 1,
            cache_misses: 1,
        };
        let payload = encode_response(5, &Response::BatchOk(report));
        let (_, got) = decode_response(&payload);
        let Response::BatchOk(got) = got.unwrap() else { panic!("wrong variant") };
        assert_eq!(got.outcomes.len(), 2);
        assert!(got.outcomes[0].result.is_ok());
        assert!(got.outcomes[0].cache_hit);
        let err = got.outcomes[1].result.as_ref().unwrap_err();
        assert!(err.to_string().contains("unknown column"), "{err}");
        assert_eq!(got.wall_micros, 200);
        assert_eq!(got.workers, 2);
    }

    #[test]
    fn garbage_payloads_decode_to_typed_errors() {
        for payload in [&[][..], &[0xFF][..], &[K_QUERY, 1, 2, 3][..], &[0x42; 64][..]] {
            let (_, _, req) = decode_request(payload);
            assert!(req.is_err(), "payload {payload:?} must not decode");
            let (_, resp) = decode_response(payload);
            assert!(resp.is_err(), "payload {payload:?} must not decode as a response");
        }
        // Trailing bytes after a valid body are refused too.
        let mut payload = encode_request(1, 0, &Request::Refresh);
        payload.push(0);
        let (_, _, req) = decode_request(&payload);
        assert!(matches!(req, Err(ApiError::Protocol(_))));
    }

    #[test]
    fn v3_requests_round_trip_with_trace_ids() {
        let reqs = [
            Request::OpenSession,
            Request::Query(BatchQuery::cypher("MATCH (n:EMP) RETURN n.id AS i")),
            Request::Introspect { mode: IntrospectMode::Metrics },
            Request::Introspect { mode: IntrospectMode::Traces },
            Request::Introspect { mode: IntrospectMode::SlowQueries },
            Request::QueryProfiled(BatchQuery::sql("SELECT Count(*) AS c FROM EMP AS e")),
            Request::Close,
        ];
        for (i, req) in reqs.into_iter().enumerate() {
            let trace = 0xABCD_0000 + i as u64;
            let payload = encode_request_versioned(3, i as u64, 125, trace, &req);
            let (id, deadline, got_trace, got) = decode_request_versioned(&payload, 3);
            assert_eq!(id, i as u64);
            assert_eq!(deadline, 125);
            assert_eq!(got_trace, trace, "trace id must survive the v3 header");
            let got = got.unwrap_or_else(|e| panic!("decoding {req:?}: {e}"));
            assert_eq!(format!("{got:?}"), format!("{req:?}"));
        }
    }

    #[test]
    fn hello_keeps_the_v2_layout_on_every_version() {
        // The handshake must decode before a version is negotiated, so
        // its bytes are identical no matter which version encodes it.
        let hello = Request::Hello { version: PROTOCOL_VERSION };
        let v2 = encode_request(1, 0, &hello);
        let v3 = encode_request_versioned(3, 1, 0, 0xDEAD, &hello);
        assert_eq!(v2, v3);
        let (_, _, trace, got) = decode_request_versioned(&v2, 3);
        assert_eq!(trace, 0);
        assert!(matches!(got, Ok(Request::Hello { version }) if version == PROTOCOL_VERSION));
    }

    #[test]
    fn v3_responses_round_trip() {
        let mut table = Table::new(["c"]);
        table.push_row(vec![Value::Int(3)]);
        let resps = [
            Response::IntrospectOk("# TYPE graphiti_commits_total counter\n".into()),
            Response::RowsProfiled {
                table,
                profile_json: "{\"language\":\"sql\",\"stages\":[]}".into(),
            },
            Response::StatsOk(ServiceStats {
                generation: 9,
                commits: 7,
                rejected_commits: 1,
                live_nodes: 5,
                live_edges: 2,
                fenced: false,
                groups_formed: 3,
                group_members: 7,
                backpressured: 4,
                idempotent_replays: 2,
                deadlines_exceeded: 6,
                connections_reaped: 1,
                draining_refusals: 3,
                drain_micros: 1234,
                queries: 612,
                query_p95_micros: 480,
                spans_recorded: 99,
                spans_dropped: 1,
                slow_queries: 8,
            }),
        ];
        for (i, resp) in resps.into_iter().enumerate() {
            let payload = encode_response_versioned(3, i as u64, &resp);
            let (id, got) = decode_response_versioned(&payload, 3);
            assert_eq!(id, i as u64);
            let got = got.unwrap_or_else(|e| panic!("decoding {resp:?}: {e}"));
            assert_eq!(format!("{got:?}"), format!("{resp:?}"));
        }
    }

    #[test]
    fn v2_reader_never_sees_garbage_from_v3_payloads() {
        // A v3 Stats reply carries five appended fields; a v2 decoder
        // must refuse the surplus bytes rather than misparse them.
        let stats = ServiceStats { queries: 612, spans_recorded: 99, ..ServiceStats::default() };
        let v3_payload = encode_response_versioned(3, 7, &Response::StatsOk(stats));
        let (_, got) = decode_response(&v3_payload);
        match got {
            Err(ApiError::Protocol(msg)) => {
                assert!(msg.contains("trailing bytes"), "{msg}")
            }
            other => panic!("v2 decode of a v3 stats reply must fail typed, got {other:?}"),
        }

        // The v3-only response kinds are refused outright at v2.
        let intro = encode_response_versioned(3, 8, &Response::IntrospectOk("x".into()));
        let (_, got) = decode_response(&intro);
        assert!(matches!(got, Err(ApiError::Protocol(_))), "{got:?}");

        // Same story for requests: the v3-only kinds and the trace-id
        // header field are both invisible to a v2 server — typed errors,
        // never a misdecode.
        let introspect_req = encode_request_versioned(
            3,
            9,
            0,
            0x1234,
            &Request::Introspect { mode: IntrospectMode::Metrics },
        );
        let (_, _, got) = decode_request(&introspect_req);
        assert!(matches!(got, Err(ApiError::Protocol(_))), "{got:?}");
        let traced_query = encode_request_versioned(
            3,
            10,
            0,
            0x5678,
            &Request::Query(BatchQuery::cypher("MATCH (n:EMP) RETURN n.id AS i")),
        );
        let (_, _, got) = decode_request(&traced_query);
        assert!(matches!(got, Err(ApiError::Protocol(_))), "{got:?}");

        // And every truncation of a v3 payload is total at both
        // versions: a typed error, or — at v2, exactly at the v2 field
        // boundary — a clean truncation whose shared fields are intact.
        // Never garbage.
        for cut in 0..v3_payload.len() {
            match decode_response(&v3_payload[..cut]).1 {
                Err(ApiError::Protocol(_)) => {}
                Ok(Response::StatsOk(s)) => {
                    assert_eq!(s.queries, 0, "cut {cut}: v2 cannot see the appended fields");
                    assert_eq!(s.commits, 0);
                    assert_eq!(s.generation, 0);
                }
                other => panic!("cut {cut} decoded {other:?} at v2"),
            }
            let (_, got) = decode_response_versioned(&v3_payload[..cut], 3);
            assert!(got.is_err(), "cut {cut} must not decode at v3");
        }
    }
}
