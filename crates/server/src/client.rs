//! The wire client: a [`Session`] implementation over a socket.
//!
//! [`Client::connect_tcp`]/[`Client::connect_unix`] perform the version
//! handshake and open the connection's session, returning a
//! [`WireSession`] that implements the same [`Session`] trait as the
//! in-process [`EmbeddedSession`](graphiti_store::EmbeddedSession) — a
//! caller cannot observe which transport it is behind, down to the
//! error vocabulary.
//!
//! The `_with` constructors add the request-lifecycle discipline: a
//! bounded [`RetryPolicy`] (exponential backoff with jitter, retrying
//! only typed-retryable errors — never `Rejected`/`Fenced`), a
//! per-request deadline sent in the frame header, and client-generated
//! **idempotency tokens** on commits.  One logical commit keeps one
//! token across every retry and reconnect, so a commit retried after an
//! ambiguous disconnect or timeout is exactly-once: the store dedupes
//! the token and replays the original acknowledgement.  A plain
//! [`Client::connect_tcp`]/[`Client::connect_unix`] session never
//! retries and never reconnects — every failure surfaces immediately.

use crate::protocol::{
    self, IntrospectMode, Request, Response, DEFAULT_MAX_FRAME, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
use graphiti_common::{ApiError, ApiResult};
use graphiti_engine::{BatchQuery, BatchReport};
use graphiti_relational::Table;
use graphiti_store::{CommitAck, Delta, ServiceStats, Session};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Bounded retry discipline for a [`WireSession`].
///
/// Retries apply only to typed-retryable failures
/// ([`ApiError::is_retryable`]) and to disconnects — and a disconnected
/// or timed-out *commit* is retried only when it carries an idempotency
/// token, because without one the retry could double-apply.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts for one logical call (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Ceiling on any one backoff sleep (jitter applies under it).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (every failure surfaces at once).
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }
}

/// Knobs for a retrying [`WireSession`].
#[derive(Debug, Clone, Default)]
pub struct ClientOptions {
    /// The retry discipline ([`RetryPolicy::default`] retries up to 4
    /// attempts with jittered exponential backoff).
    pub retry: RetryPolicy,
    /// Per-request deadline budget sent in every frame header; `None`
    /// sends `0`, deferring to the server's default.
    pub deadline: Option<Duration>,
    /// Whether commits carry client-generated idempotency tokens.
    /// Without tokens, a commit is never retried across a disconnect
    /// or timeout (the outcome would be ambiguous).
    pub tokens: bool,
}

impl ClientOptions {
    /// The full lifecycle discipline: default retry policy, tokens on.
    pub fn resilient() -> ClientOptions {
        ClientOptions { retry: RetryPolicy::default(), deadline: None, tokens: true }
    }
}

/// How to re-establish a dropped connection.
#[derive(Debug, Clone)]
enum Reconnector {
    Tcp(SocketAddr),
    Unix(PathBuf),
}

#[derive(Debug)]
enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Connection factory for [`WireSession`]s.
pub struct Client;

impl Client {
    /// Connects over TCP, handshakes, and opens the session.  The
    /// session never retries or reconnects; see
    /// [`Client::connect_tcp_with`] for the resilient variant.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> ApiResult<WireSession> {
        let stream = TcpStream::connect(addr).map_err(|e| ApiError::Io(e.to_string()))?;
        WireSession::open(
            Conn::Tcp(stream),
            ClientOptions { retry: RetryPolicy::none(), ..ClientOptions::default() },
            None,
        )
    }

    /// Connects over a unix-domain socket, handshakes, and opens the
    /// session.  The session never retries or reconnects; see
    /// [`Client::connect_unix_with`] for the resilient variant.
    pub fn connect_unix(path: impl AsRef<Path>) -> ApiResult<WireSession> {
        let stream = UnixStream::connect(path).map_err(|e| ApiError::Io(e.to_string()))?;
        WireSession::open(
            Conn::Unix(stream),
            ClientOptions { retry: RetryPolicy::none(), ..ClientOptions::default() },
            None,
        )
    }

    /// Connects over TCP with retry/deadline/token discipline; the
    /// dial itself retries `Io`-on-connect under the policy's backoff.
    pub fn connect_tcp_with(
        addr: impl ToSocketAddrs,
        options: ClientOptions,
    ) -> ApiResult<WireSession> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| ApiError::Io(e.to_string()))?
            .next()
            .ok_or_else(|| ApiError::Io("address resolved to nothing".into()))?;
        WireSession::open_with_retry(Reconnector::Tcp(addr), options)
    }

    /// Connects over a unix-domain socket with retry/deadline/token
    /// discipline; the dial itself retries `Io`-on-connect under the
    /// policy's backoff.
    pub fn connect_unix_with(
        path: impl AsRef<Path>,
        options: ClientOptions,
    ) -> ApiResult<WireSession> {
        WireSession::open_with_retry(Reconnector::Unix(path.as_ref().to_path_buf()), options)
    }
}

fn dial(reconnect: &Reconnector) -> ApiResult<Conn> {
    match reconnect {
        Reconnector::Tcp(addr) => {
            TcpStream::connect(addr).map(Conn::Tcp).map_err(|e| ApiError::Io(e.to_string()))
        }
        Reconnector::Unix(path) => {
            UnixStream::connect(path).map(Conn::Unix).map_err(|e| ApiError::Io(e.to_string()))
        }
    }
}

/// splitmix64: one multiply-shift-xor chain per draw — plenty for
/// backoff jitter and token uniqueness, with no dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn seed_rng() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    nanos ^ (std::process::id() as u64).rotate_left(32)
}

/// A server-backed session, pinned at one snapshot generation until it
/// refreshes or commits (the server re-pins a committing session for
/// read-your-writes, and replies with the new generation).
#[derive(Debug)]
pub struct WireSession {
    conn: Conn,
    options: ClientOptions,
    reconnect: Option<Reconnector>,
    rng: u64,
    next_id: u64,
    generation: u64,
    closed: bool,
    retries: u64,
    reconnects: u64,
    /// The framing version the handshake negotiated (the server may
    /// answer with an older one than we asked for).
    version: u32,
    /// Trace id stamped on every outgoing request while non-zero
    /// (version 3 connections only); `0` lets the server mint one.
    trace_id: u64,
}

impl WireSession {
    fn open(
        conn: Conn,
        options: ClientOptions,
        reconnect: Option<Reconnector>,
    ) -> ApiResult<WireSession> {
        let mut s = WireSession {
            conn,
            options,
            reconnect,
            rng: seed_rng(),
            next_id: 1,
            generation: 0,
            closed: false,
            retries: 0,
            reconnects: 0,
            version: MIN_PROTOCOL_VERSION,
            trace_id: 0,
        };
        s.handshake()?;
        Ok(s)
    }

    fn open_with_retry(reconnect: Reconnector, options: ClientOptions) -> ApiResult<WireSession> {
        let policy = options.retry.clone();
        let mut rng = seed_rng();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match dial(&reconnect)
                .and_then(|conn| WireSession::open(conn, options.clone(), Some(reconnect.clone())))
            {
                Ok(session) => return Ok(session),
                Err(err) if attempt < policy.max_attempts && connect_retryable(&err) => {
                    std::thread::sleep(backoff(&policy, attempt, &mut rng));
                }
                Err(err) => return Err(err),
            }
        }
    }

    fn handshake(&mut self) -> ApiResult<()> {
        // Ask for the newest version we speak; adopt whatever (still
        // supported) version the server echoes.  The Hello exchange
        // itself always uses the oldest framing, so this decodes on any
        // server.
        self.version = MIN_PROTOCOL_VERSION;
        match self.roundtrip(&Request::Hello { version: PROTOCOL_VERSION })? {
            Response::HelloOk { version }
                if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) =>
            {
                self.version = version;
            }
            Response::HelloOk { version } => {
                return Err(ApiError::Protocol(format!(
                    "server answered the handshake with unsupported version {version}"
                )))
            }
            other => return Err(unexpected("HelloOk", &other)),
        }
        match self.roundtrip(&Request::OpenSession)? {
            Response::SessionOpen { generation } => self.generation = generation,
            other => return Err(unexpected("SessionOpen", &other)),
        }
        Ok(())
    }

    /// The protocol version the handshake negotiated.
    pub fn negotiated_version(&self) -> u32 {
        self.version
    }

    /// Stamps `trace_id` on every subsequent request (version 3
    /// connections), correlating its server-side spans; `0` reverts to
    /// server-minted ids.
    pub fn set_trace_id(&mut self, trace_id: u64) {
        self.trace_id = trace_id;
    }

    /// Fetches the server's live observability surface: Prometheus-style
    /// metrics text, or trace / slow-query JSON.  Requires a version-3
    /// connection.
    pub fn introspect(&mut self, mode: IntrospectMode) -> ApiResult<String> {
        self.require_v3("Introspect")?;
        match self.call(&Request::Introspect { mode }, true)? {
            Response::IntrospectOk(text) => Ok(text),
            other => Err(unexpected("IntrospectOk", &other)),
        }
    }

    /// Runs one query with per-operator profiling enabled, returning
    /// the rows plus the profile as JSON.  Requires a version-3
    /// connection.
    pub fn query_profiled(&mut self, query: &BatchQuery) -> ApiResult<(Table, String)> {
        self.require_v3("QueryProfiled")?;
        match self.call(&Request::QueryProfiled(query.clone()), true)? {
            Response::RowsProfiled { table, profile_json } => Ok((table, profile_json)),
            other => Err(unexpected("RowsProfiled", &other)),
        }
    }

    fn require_v3(&self, what: &str) -> ApiResult<()> {
        if self.version >= 3 {
            Ok(())
        } else {
            Err(ApiError::Protocol(format!(
                "{what} requires protocol version 3; this connection negotiated {}",
                self.version
            )))
        }
    }

    /// Lifecycle observability: in-place retries this session has
    /// attempted (backoff-then-resend on the live connection).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Lifecycle observability: times this session re-dialed, handshook
    /// and re-opened after losing its connection.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn deadline_ms(&self) -> u32 {
        self.options
            .deadline
            .map(|d| u64::min(d.as_millis() as u64, u32::MAX as u64) as u32)
            .unwrap_or(0)
    }

    /// Sends one request and decodes its reply, checking the id echo
    /// and unwrapping error frames into typed [`ApiError`]s.
    fn roundtrip(&mut self, req: &Request) -> ApiResult<Response> {
        if self.closed {
            return Err(ApiError::SessionClosed("the wire session is closed".into()));
        }
        let id = self.next_id;
        self.next_id += 1;
        let deadline_ms = self.deadline_ms();
        let payload =
            protocol::encode_request_versioned(self.version, id, deadline_ms, self.trace_id, req);
        if let Err(send_err) = protocol::write_frame(&mut self.conn, &payload) {
            // A failed send can mean the server already answered and
            // hung up — an admission refusal races our write.  A
            // pending error frame names the real reason.
            self.closed = true;
            if let Ok(Some(payload)) = protocol::read_frame(&mut self.conn, DEFAULT_MAX_FRAME) {
                if let (_, Ok(Response::Error { code, message })) =
                    protocol::decode_response(&payload)
                {
                    return Err(ApiError::from_wire(code, message));
                }
            }
            return Err(send_err);
        }
        // Any failure reading the reply — torn frame, bad checksum,
        // dead socket — leaves the stream unsynchronized, so the
        // session is closed either way.
        let payload = protocol::read_frame(&mut self.conn, DEFAULT_MAX_FRAME)
            .inspect_err(|_| {
                self.closed = true;
            })?
            .ok_or_else(|| {
                self.closed = true;
                ApiError::Protocol("server closed the connection without replying".into())
            })?;
        let (echo, resp) = protocol::decode_response_versioned(&payload, self.version);
        let resp = resp.inspect_err(|_| {
            self.closed = true;
        })?;
        if let Response::Error { code, message } = resp {
            // Error frames are honored even with a zero id: the server
            // addresses pre-read failures (admission refusal, torn
            // frames) to request 0.
            if echo != id && echo != 0 {
                self.closed = true;
                return Err(ApiError::Protocol(format!(
                    "error frame for request {echo} while awaiting {id}"
                )));
            }
            let err = ApiError::from_wire(code, message);
            // A server that answered with Internal/SessionClosed/
            // Protocol/Draining has torn down the session on its side.
            if matches!(
                err,
                ApiError::Internal(_)
                    | ApiError::SessionClosed(_)
                    | ApiError::Protocol(_)
                    | ApiError::Draining(_)
            ) {
                self.closed = true;
            }
            return Err(err);
        }
        if echo != id {
            self.closed = true;
            return Err(ApiError::Protocol(format!(
                "response for request {echo} while awaiting {id}"
            )));
        }
        Ok(resp)
    }

    /// The retry loop around [`WireSession::roundtrip`].
    /// `ambiguous_ok` says whether resending after a *disconnect or
    /// expired deadline* is safe — true for idempotent reads and for
    /// tokened commits, false for an untagged commit (where the first
    /// send may have landed).
    fn call(&mut self, req: &Request, ambiguous_ok: bool) -> ApiResult<Response> {
        let policy = self.options.retry.clone();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let err = match self.roundtrip(req) {
                Ok(resp) => return Ok(resp),
                Err(err) => err,
            };
            if attempt >= policy.max_attempts {
                return Err(err);
            }
            // A clean typed refusal (reply received, request not
            // applied) retries in place on the live connection.
            let clean_refusal = matches!(err, ApiError::Backpressure(_));
            // Ambiguity: the connection died or the deadline expired
            // with the request possibly applied server-side.
            let ambiguous = matches!(err, ApiError::DeadlineExceeded(_))
                || (self.closed
                    && matches!(
                        err,
                        ApiError::Io(_) | ApiError::Protocol(_) | ApiError::Draining(_)
                    ));
            if clean_refusal {
                self.retries += 1;
                std::thread::sleep(backoff(&policy, attempt, &mut self.rng));
                continue;
            }
            if ambiguous && ambiguous_ok {
                std::thread::sleep(backoff(&policy, attempt, &mut self.rng));
                if self.closed {
                    if !self.try_reconnect() {
                        return Err(err);
                    }
                } else {
                    self.retries += 1;
                }
                continue;
            }
            return Err(err);
        }
    }

    /// Re-dials, handshakes, and reopens the session after a lost
    /// connection.  False when there is nothing to reconnect to (plain
    /// sessions) or the dial/handshake failed.
    fn try_reconnect(&mut self) -> bool {
        let Some(reconnect) = self.reconnect.clone() else { return false };
        let Ok(conn) = dial(&reconnect) else { return false };
        self.conn = conn;
        self.closed = false;
        if self.handshake().is_err() {
            self.closed = true;
            return false;
        }
        self.reconnects += 1;
        true
    }

    fn fresh_token(&mut self) -> u128 {
        loop {
            let hi = splitmix64(&mut self.rng) as u128;
            let lo = splitmix64(&mut self.rng) as u128;
            let token = (hi << 64) | lo;
            // Zero means "untagged" on the wire; never hand it out.
            if token != 0 {
                return token;
            }
        }
    }
}

/// Connect-time failures worth another dial: refused/reset sockets
/// (`Io`), a connection that died mid-handshake (`Protocol`), and the
/// typed-retryable refusals.  Nothing stateful has happened yet, so
/// re-dialing is always safe.
fn connect_retryable(err: &ApiError) -> bool {
    matches!(err, ApiError::Io(_) | ApiError::Protocol(_)) || err.is_retryable()
}

/// Exponential backoff with multiplicative jitter in [0.5, 1.0).
fn backoff(policy: &RetryPolicy, attempt: u32, rng: &mut u64) -> Duration {
    let exp = policy.base_backoff.saturating_mul(1u32 << (attempt - 1).min(16));
    let capped = exp.min(policy.max_backoff);
    let jitter = 0.5 + (splitmix64(rng) >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
    capped.mul_f64(jitter)
}

fn unexpected(wanted: &str, got: &Response) -> ApiError {
    ApiError::Protocol(format!("expected {wanted}, got {got:?}"))
}

impl Session for WireSession {
    fn generation(&self) -> u64 {
        self.generation
    }

    fn refresh(&mut self) -> ApiResult<u64> {
        match self.call(&Request::Refresh, true)? {
            Response::Generation(g) => {
                self.generation = g;
                Ok(g)
            }
            other => Err(unexpected("Generation", &other)),
        }
    }

    fn query(&mut self, query: &BatchQuery) -> ApiResult<Table> {
        match self.call(&Request::Query(query.clone()), true)? {
            Response::Rows(table) => Ok(table),
            other => Err(unexpected("Rows", &other)),
        }
    }

    fn batch(&mut self, queries: &[BatchQuery]) -> ApiResult<BatchReport> {
        match self.call(&Request::Batch(queries.to_vec()), true)? {
            Response::BatchOk(report) => Ok(report),
            other => Err(unexpected("BatchOk", &other)),
        }
    }

    fn commit(&mut self, delta: Delta) -> ApiResult<CommitAck> {
        // One token per logical commit, held across every retry and
        // reconnect: the store dedupes it, making the retried commit
        // exactly-once even when the first attempt's fate is unknown.
        let token = if self.options.tokens { self.fresh_token() } else { 0 };
        let req = Request::Commit { delta, token };
        match self.call(&req, token != 0)? {
            Response::CommitOk { ack, session_generation } => {
                self.generation = session_generation;
                Ok(ack)
            }
            other => Err(unexpected("CommitOk", &other)),
        }
    }

    fn stats(&mut self) -> ApiResult<ServiceStats> {
        match self.call(&Request::Stats, true)? {
            Response::StatsOk(stats) => Ok(stats),
            other => Err(unexpected("StatsOk", &other)),
        }
    }

    fn checkpoint(&mut self) -> ApiResult<u64> {
        match self.call(&Request::Checkpoint, true)? {
            Response::CheckpointOk(g) => Ok(g),
            other => Err(unexpected("CheckpointOk", &other)),
        }
    }

    fn close(&mut self) -> ApiResult<()> {
        match self.roundtrip(&Request::Close)? {
            Response::Closed => {
                self.closed = true;
                Ok(())
            }
            other => Err(unexpected("Closed", &other)),
        }
    }
}
