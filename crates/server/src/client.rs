//! The wire client: a [`Session`] implementation over a socket.
//!
//! [`Client::connect_tcp`]/[`Client::connect_unix`] perform the version
//! handshake and open the connection's session, returning a
//! [`WireSession`] that implements the same [`Session`] trait as the
//! in-process [`EmbeddedSession`](graphiti_store::EmbeddedSession) — a
//! caller cannot observe which transport it is behind, down to the
//! error vocabulary.

use crate::protocol::{self, Request, Response, DEFAULT_MAX_FRAME, PROTOCOL_VERSION};
use graphiti_common::{ApiError, ApiResult};
use graphiti_engine::{BatchQuery, BatchReport};
use graphiti_relational::Table;
use graphiti_store::{CommitAck, Delta, ServiceStats, Session};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

#[derive(Debug)]
enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Connection factory for [`WireSession`]s.
pub struct Client;

impl Client {
    /// Connects over TCP, handshakes, and opens the session.
    pub fn connect_tcp(addr: impl std::net::ToSocketAddrs) -> ApiResult<WireSession> {
        let stream = TcpStream::connect(addr).map_err(|e| ApiError::Io(e.to_string()))?;
        WireSession::open(Conn::Tcp(stream))
    }

    /// Connects over a unix-domain socket, handshakes, and opens the
    /// session.
    pub fn connect_unix(path: impl AsRef<Path>) -> ApiResult<WireSession> {
        let stream = UnixStream::connect(path).map_err(|e| ApiError::Io(e.to_string()))?;
        WireSession::open(Conn::Unix(stream))
    }
}

/// A server-backed session, pinned at one snapshot generation until it
/// refreshes or commits (the server re-pins a committing session for
/// read-your-writes, and replies with the new generation).
#[derive(Debug)]
pub struct WireSession {
    conn: Conn,
    next_id: u64,
    generation: u64,
    closed: bool,
}

impl WireSession {
    fn open(conn: Conn) -> ApiResult<WireSession> {
        let mut s = WireSession { conn, next_id: 1, generation: 0, closed: false };
        match s.roundtrip(&Request::Hello { version: PROTOCOL_VERSION })? {
            Response::HelloOk { .. } => {}
            other => return Err(unexpected("HelloOk", &other)),
        }
        match s.roundtrip(&Request::OpenSession)? {
            Response::SessionOpen { generation } => s.generation = generation,
            other => return Err(unexpected("SessionOpen", &other)),
        }
        Ok(s)
    }

    /// Sends one request and decodes its reply, checking the id echo
    /// and unwrapping error frames into typed [`ApiError`]s.
    fn roundtrip(&mut self, req: &Request) -> ApiResult<Response> {
        if self.closed {
            return Err(ApiError::SessionClosed("the wire session is closed".into()));
        }
        let id = self.next_id;
        self.next_id += 1;
        if let Err(send_err) =
            protocol::write_frame(&mut self.conn, &protocol::encode_request(id, req))
        {
            // A failed send can mean the server already answered and
            // hung up — an admission refusal races our write.  A
            // pending error frame names the real reason.
            self.closed = true;
            if let Ok(Some(payload)) = protocol::read_frame(&mut self.conn, DEFAULT_MAX_FRAME) {
                if let (_, Ok(Response::Error { code, message })) =
                    protocol::decode_response(&payload)
                {
                    return Err(ApiError::from_wire(code, message));
                }
            }
            return Err(send_err);
        }
        let payload =
            protocol::read_frame(&mut self.conn, DEFAULT_MAX_FRAME)?.ok_or_else(|| {
                self.closed = true;
                ApiError::Protocol("server closed the connection without replying".into())
            })?;
        let (echo, resp) = protocol::decode_response(&payload);
        let resp = resp?;
        if let Response::Error { code, message } = resp {
            // Error frames are honored even with a zero id: the server
            // addresses pre-read failures (admission refusal, torn
            // frames) to request 0.
            if echo != id && echo != 0 {
                self.closed = true;
                return Err(ApiError::Protocol(format!(
                    "error frame for request {echo} while awaiting {id}"
                )));
            }
            let err = ApiError::from_wire(code, message);
            // A server that answered with Internal/SessionClosed/
            // Protocol has torn down the session on its side.
            if matches!(
                err,
                ApiError::Internal(_) | ApiError::SessionClosed(_) | ApiError::Protocol(_)
            ) {
                self.closed = true;
            }
            return Err(err);
        }
        if echo != id {
            self.closed = true;
            return Err(ApiError::Protocol(format!(
                "response for request {echo} while awaiting {id}"
            )));
        }
        Ok(resp)
    }
}

fn unexpected(wanted: &str, got: &Response) -> ApiError {
    ApiError::Protocol(format!("expected {wanted}, got {got:?}"))
}

impl Session for WireSession {
    fn generation(&self) -> u64 {
        self.generation
    }

    fn refresh(&mut self) -> ApiResult<u64> {
        match self.roundtrip(&Request::Refresh)? {
            Response::Generation(g) => {
                self.generation = g;
                Ok(g)
            }
            other => Err(unexpected("Generation", &other)),
        }
    }

    fn query(&mut self, query: &BatchQuery) -> ApiResult<Table> {
        match self.roundtrip(&Request::Query(query.clone()))? {
            Response::Rows(table) => Ok(table),
            other => Err(unexpected("Rows", &other)),
        }
    }

    fn batch(&mut self, queries: &[BatchQuery]) -> ApiResult<BatchReport> {
        match self.roundtrip(&Request::Batch(queries.to_vec()))? {
            Response::BatchOk(report) => Ok(report),
            other => Err(unexpected("BatchOk", &other)),
        }
    }

    fn commit(&mut self, delta: Delta) -> ApiResult<CommitAck> {
        match self.roundtrip(&Request::Commit(delta))? {
            Response::CommitOk { ack, session_generation } => {
                self.generation = session_generation;
                Ok(ack)
            }
            other => Err(unexpected("CommitOk", &other)),
        }
    }

    fn stats(&mut self) -> ApiResult<ServiceStats> {
        match self.roundtrip(&Request::Stats)? {
            Response::StatsOk(stats) => Ok(stats),
            other => Err(unexpected("StatsOk", &other)),
        }
    }

    fn checkpoint(&mut self) -> ApiResult<u64> {
        match self.roundtrip(&Request::Checkpoint)? {
            Response::CheckpointOk(g) => Ok(g),
            other => Err(unexpected("CheckpointOk", &other)),
        }
    }

    fn close(&mut self) -> ApiResult<()> {
        match self.roundtrip(&Request::Close)? {
            Response::Closed => {
                self.closed = true;
                Ok(())
            }
            other => Err(unexpected("Closed", &other)),
        }
    }
}
