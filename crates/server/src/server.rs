//! The serving loop: thread-per-connection over TCP or unix sockets.
//!
//! One [`Server`] wraps a [`Graphiti`] service.  Each accepted
//! connection gets its own OS thread and its own wire session, pinned
//! at the generation it opened at; admission control is two-layered:
//!
//! * a **connection cap** — a connection over [`ServerOptions::max_connections`]
//!   receives one typed [`ApiError::Backpressure`] frame and is closed
//!   before a session ever exists;
//! * a **bounded commit queue** — wire commits go through the service's
//!   group committer with [`Graphiti::try_commit_tagged`]; a full queue
//!   is a typed backpressure *reply* (the connection survives, the
//!   client retries).
//!
//! Every socket read runs under a short timeout tick
//! ([`ServerOptions::tick`]) so no connection thread ever blocks
//! indefinitely: an idle peer is reaped after
//! [`ServerOptions::idle_timeout`], a peer stalled mid-frame is cut off
//! after [`ServerOptions::stall_timeout`], and a draining server
//! interrupts blocked readers within one tick.  Each request carries a
//! deadline budget (wire header, or [`ServerOptions::default_deadline`])
//! checked at admission, before the commit queue, and before reply
//! serialization — an expired budget answers a typed
//! [`ApiError::DeadlineExceeded`] instead of late work.
//!
//! [`ServerHandle::shutdown`] drains rather than aborts: accepting
//! stops, requests arriving after the flag flips are refused with a
//! typed [`ApiError::Draining`] frame, in-flight handlers finish, and
//! readers blocked mid-frame are cut off after
//! [`ServerOptions::drain_deadline`] — so shutdown completes in bounded
//! time against any mix of idle, slow, and mid-request peers.
//!
//! A panic while handling a request never hangs the client: the
//! connection thread catches it, answers with a typed
//! [`ApiError::Internal`] frame, drops the session, and closes the
//! connection.

use crate::protocol::{
    self, IntrospectMode, Request, Response, DEFAULT_MAX_FRAME, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
use graphiti_common::{ApiError, ApiResult};
use graphiti_obs::metrics::{Counter, Histogram, Registry};
use graphiti_obs::trace::mint_trace_id;
use graphiti_store::codec;
use graphiti_store::{Graphiti, Session};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Environment variable naming the server's default per-request
/// deadline budget in milliseconds (used when a request's wire header
/// carries `deadline_ms == 0`).  Unset, unparsable, or `0` means no
/// default deadline.
pub const DEADLINE_ENV: &str = "GRAPHITI_DEADLINE_MS";

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Maximum concurrently served connections; the next one is
    /// backpressured at accept time.
    pub max_connections: usize,
    /// Ceiling on one frame's payload, bytes.
    pub max_frame_bytes: u32,
    /// Socket read-timeout granularity.  Every blocking read wakes at
    /// least this often to check the drain flag and the idle/stall
    /// budgets; it bounds how stale those checks can be.
    pub tick: Duration,
    /// Socket write timeout: a peer that stops draining its receive
    /// buffer cannot pin a connection thread in `write` forever.
    pub write_timeout: Duration,
    /// A connection idle (no bytes between frames) longer than this is
    /// reaped: closed, with the reap counted in the lifecycle stats.
    pub idle_timeout: Duration,
    /// A peer that started a frame but stops making progress for this
    /// long is cut off (a trickling or wedged peer cannot hold a thread
    /// hostage mid-frame).
    pub stall_timeout: Duration,
    /// Deadline budget applied to requests whose wire header carries
    /// `deadline_ms == 0`.  Defaults from [`DEADLINE_ENV`]; `None`
    /// means such requests run without a deadline.
    pub default_deadline: Option<Duration>,
    /// How long a drain waits on peers blocked mid-frame before
    /// cutting them off.  Idle peers close within one tick; this only
    /// bounds the stragglers, so shutdown completes in roughly
    /// `max(in-flight handler time, drain_deadline)`.
    pub drain_deadline: Duration,
    /// Test hook: a query whose text equals this panics inside the
    /// handler, exercising the panic-to-typed-error-frame path.
    pub poison_query: Option<String>,
    /// Test hook: sleep this long inside the handler before executing
    /// any post-handshake request, exercising the deadline checks.
    pub handler_delay: Option<Duration>,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            max_connections: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME,
            tick: Duration::from_millis(100),
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(300),
            stall_timeout: Duration::from_secs(10),
            default_deadline: deadline_from_env(),
            drain_deadline: Duration::from_secs(5),
            poison_query: None,
            handler_delay: None,
        }
    }
}

fn deadline_from_env() -> Option<Duration> {
    std::env::var(DEADLINE_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
}

/// Server-side request-lifecycle counters: live registry cells (so the
/// introspection surface sees them) merged into the
/// [`ServiceStats`](graphiti_store::ServiceStats) a wire `Stats`
/// request returns.
#[derive(Debug)]
struct LifecycleCounters {
    deadlines_exceeded: Counter,
    connections_reaped: Counter,
    draining_refusals: Counter,
    drain_micros: Counter,
}

impl LifecycleCounters {
    fn register(registry: &Registry) -> LifecycleCounters {
        LifecycleCounters {
            deadlines_exceeded: registry.counter("graphiti_deadlines_exceeded_total"),
            connections_reaped: registry.counter("graphiti_connections_reaped_total"),
            draining_refusals: registry.counter("graphiti_draining_refusals_total"),
            drain_micros: registry.counter("graphiti_drain_micros"),
        }
    }
}

/// Per-request-kind service-time distributions plus the deadline slack
/// observed at admission, registered once per server.
#[derive(Debug)]
struct ServerMetrics {
    deadline_slack_ms: Arc<Histogram>,
    hello: Arc<Histogram>,
    open: Arc<Histogram>,
    query: Arc<Histogram>,
    batch: Arc<Histogram>,
    commit: Arc<Histogram>,
    refresh: Arc<Histogram>,
    stats: Arc<Histogram>,
    checkpoint: Arc<Histogram>,
    close: Arc<Histogram>,
    introspect: Arc<Histogram>,
    query_profiled: Arc<Histogram>,
}

impl ServerMetrics {
    fn register(registry: &Registry) -> ServerMetrics {
        let h = |kind: &str| registry.histogram(&format!("graphiti_request_micros_{kind}"));
        ServerMetrics {
            deadline_slack_ms: registry.histogram("graphiti_deadline_slack_ms"),
            hello: h("hello"),
            open: h("open"),
            query: h("query"),
            batch: h("batch"),
            commit: h("commit"),
            refresh: h("refresh"),
            stats: h("stats"),
            checkpoint: h("checkpoint"),
            close: h("close"),
            introspect: h("introspect"),
            query_profiled: h("query_profiled"),
        }
    }

    fn service_time(&self, request: &Request) -> &Arc<Histogram> {
        match request {
            Request::Hello { .. } => &self.hello,
            Request::OpenSession => &self.open,
            Request::Query(_) => &self.query,
            Request::Batch(_) => &self.batch,
            Request::Commit { .. } => &self.commit,
            Request::Refresh => &self.refresh,
            Request::Stats => &self.stats,
            Request::Checkpoint => &self.checkpoint,
            Request::Close => &self.close,
            Request::Introspect { .. } => &self.introspect,
            Request::QueryProfiled(_) => &self.query_profiled,
        }
    }
}

/// What [`ServerHandle::shutdown`] observed while draining.
#[derive(Debug, Clone, Default)]
pub struct DrainReport {
    /// Wall-clock time from the drain flag flipping to the last
    /// connection thread joining.
    pub duration: Duration,
    /// Requests refused with a typed [`ApiError::Draining`] frame
    /// because they arrived after the drain began (whole server life,
    /// monotone — a server drains once).
    pub draining_refusals: u64,
    /// Connection threads joined by this drain (idle, in-flight, and
    /// stalled peers alike).
    pub connections_joined: usize,
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// One accepted connection, either transport.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            Stream::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(t),
            Stream::Unix(s) => s.set_write_timeout(t),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A serving front-end over a [`Graphiti`] service.
pub struct Server {
    service: Graphiti,
    options: ServerOptions,
}

impl Server {
    /// Wraps a service with default options.
    pub fn new(service: Graphiti) -> Server {
        Server::with_options(service, ServerOptions::default())
    }

    /// Wraps a service with explicit options.
    pub fn with_options(service: Graphiti, options: ServerOptions) -> Server {
        Server { service, options }
    }

    /// Binds a TCP listener (use port 0 for an OS-assigned port; the
    /// bound address is on the handle) and starts accepting.
    pub fn serve_tcp(self, addr: impl std::net::ToSocketAddrs) -> ApiResult<ServerHandle> {
        let listener = TcpListener::bind(addr).map_err(|e| ApiError::Io(e.to_string()))?;
        let local = listener.local_addr().map_err(|e| ApiError::Io(e.to_string()))?;
        self.spawn(Listener::Tcp(listener), Some(local), None)
    }

    /// Binds a unix-domain socket at `path` (removed again on shutdown)
    /// and starts accepting.
    pub fn serve_unix(self, path: impl AsRef<Path>) -> ApiResult<ServerHandle> {
        let path = path.as_ref().to_path_buf();
        // A stale socket file from a crashed predecessor would make
        // bind fail; serving is the only reason the file exists.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).map_err(|e| ApiError::Io(e.to_string()))?;
        self.spawn(Listener::Unix(listener), None, Some(path))
    }

    fn spawn(
        self,
        listener: Listener,
        tcp_addr: Option<SocketAddr>,
        unix_path: Option<PathBuf>,
    ) -> ApiResult<ServerHandle> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let registry = Arc::clone(self.service.obs().registry());
        let lifecycle = Arc::new(LifecycleCounters::register(&registry));
        let metrics = Arc::new(ServerMetrics::register(&registry));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accepter = {
            let shutdown = Arc::clone(&shutdown);
            let active = Arc::clone(&active);
            let lifecycle = Arc::clone(&lifecycle);
            let metrics = Arc::clone(&metrics);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("graphiti-accept".into())
                .spawn(move || {
                    accept_loop(self, listener, shutdown, active, lifecycle, metrics, conns)
                })
                .map_err(|e| ApiError::Io(e.to_string()))?
        };
        Ok(ServerHandle {
            shutdown,
            accepter: Some(accepter),
            conns,
            lifecycle,
            tcp_addr,
            unix_path,
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    server: Server,
    listener: Listener,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    lifecycle: Arc<LifecycleCounters>,
    metrics: Arc<ServerMetrics>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let stream = match &listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        // Admission layer one: the connection cap.
        if active.fetch_add(1, Ordering::SeqCst) >= server.options.max_connections {
            active.fetch_sub(1, Ordering::SeqCst);
            let err = ApiError::Backpressure(format!(
                "server at its {}-connection cap; retry later",
                server.options.max_connections
            ));
            let (code, message) = err.to_wire();
            let _ = protocol::write_frame(
                &mut stream,
                &protocol::encode_response(0, &Response::Error { code, message }),
            );
            continue;
        }
        let service = server.service.clone();
        let options = server.options.clone();
        let conn_shutdown = Arc::clone(&shutdown);
        let conn_lifecycle = Arc::clone(&lifecycle);
        let conn_metrics = Arc::clone(&metrics);
        let conn_active = Arc::clone(&active);
        let handle = std::thread::Builder::new().name("graphiti-conn".into()).spawn(move || {
            serve_conn(
                service,
                options,
                &mut stream,
                &conn_shutdown,
                &conn_lifecycle,
                &conn_metrics,
            );
            conn_active.fetch_sub(1, Ordering::SeqCst);
        });
        match handle {
            Ok(h) => conns.lock().expect("conn registry lock").push(h),
            Err(_) => {
                active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// How one governed `read_exact` over the timeout tick ended.
enum GovRead {
    /// The buffer is full.
    Full,
    /// Clean end-of-stream at a frame boundary.
    Eof,
    /// The peer closed mid-read.
    Torn,
    /// The drain flag flipped while idle at a frame boundary.
    Draining,
    /// Idle at a frame boundary past the idle timeout.
    IdleReap,
    /// Mid-read without progress past the stall timeout.
    Stalled,
    /// Mid-read when the drain deadline expired.
    DrainExpired,
    /// A hard I/O failure.
    Io(String),
}

/// Fills `buf` under the connection's timeout tick.  `at_boundary`
/// marks a read that starts between frames, where zero bytes so far
/// means the peer is merely idle (eligible for clean EOF, drain close,
/// and idle reaping) rather than stalled mid-frame.
fn read_governed(
    stream: &mut Stream,
    buf: &mut [u8],
    at_boundary: bool,
    options: &ServerOptions,
    shutdown: &AtomicBool,
    first_byte: &mut Option<Instant>,
) -> GovRead {
    let started = Instant::now();
    let mut progress_at = started;
    let mut drain_seen: Option<Instant> = None;
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 && at_boundary => return GovRead::Eof,
            Ok(0) => return GovRead::Torn,
            Ok(n) => {
                filled += n;
                progress_at = Instant::now();
                first_byte.get_or_insert(progress_at);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                let now = Instant::now();
                let idle = filled == 0 && at_boundary;
                if shutdown.load(Ordering::SeqCst) {
                    if idle {
                        return GovRead::Draining;
                    }
                    let seen = *drain_seen.get_or_insert(now);
                    if now.duration_since(seen) >= options.drain_deadline {
                        return GovRead::DrainExpired;
                    }
                }
                if idle {
                    if now.duration_since(started) >= options.idle_timeout {
                        return GovRead::IdleReap;
                    }
                } else if now.duration_since(progress_at) >= options.stall_timeout {
                    return GovRead::Stalled;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return GovRead::Io(e.to_string()),
        }
    }
    GovRead::Full
}

/// One whole frame read under the lifecycle governor.
enum FrameOutcome {
    /// A complete payload, plus when its first byte arrived (the
    /// request's deadline budget is measured from there, so a
    /// trickled-in frame spends its own budget).
    Frame(Vec<u8>, Instant),
    /// Clean end-of-stream between frames.
    Eof,
    /// Close quietly: drain observed while idle.
    Draining,
    /// Close and count a reap: idle or stalled peer.
    Reaped,
    /// Close: the drain deadline expired on a mid-frame peer.
    DrainExpired,
    /// Close after a typed error frame: torn, oversized, or corrupt.
    Failed(ApiError),
}

fn read_frame_governed(
    stream: &mut Stream,
    options: &ServerOptions,
    shutdown: &AtomicBool,
) -> FrameOutcome {
    let mut first_byte = None;
    let mut header = [0u8; 8];
    match read_governed(stream, &mut header, true, options, shutdown, &mut first_byte) {
        GovRead::Full => {}
        GovRead::Eof => return FrameOutcome::Eof,
        GovRead::Draining => return FrameOutcome::Draining,
        GovRead::IdleReap | GovRead::Stalled => return FrameOutcome::Reaped,
        GovRead::DrainExpired => return FrameOutcome::DrainExpired,
        GovRead::Torn => {
            return FrameOutcome::Failed(ApiError::Protocol(
                "connection closed inside a frame header".into(),
            ))
        }
        GovRead::Io(m) => return FrameOutcome::Failed(ApiError::Io(m)),
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len == 0 {
        return FrameOutcome::Failed(ApiError::Protocol("empty frame payload".into()));
    }
    if len > options.max_frame_bytes {
        return FrameOutcome::Failed(ApiError::Protocol(format!(
            "oversized frame: {len} bytes exceeds the {} cap",
            options.max_frame_bytes
        )));
    }
    let mut payload = vec![0u8; len as usize];
    match read_governed(stream, &mut payload, false, options, shutdown, &mut first_byte) {
        GovRead::Full => {}
        GovRead::Eof | GovRead::Torn => {
            return FrameOutcome::Failed(ApiError::Protocol(
                "connection closed inside a frame payload".into(),
            ))
        }
        GovRead::Stalled | GovRead::IdleReap => return FrameOutcome::Reaped,
        GovRead::Draining | GovRead::DrainExpired => return FrameOutcome::DrainExpired,
        GovRead::Io(m) => return FrameOutcome::Failed(ApiError::Io(m)),
    }
    if codec::crc32(&payload) != crc {
        return FrameOutcome::Failed(ApiError::Protocol("frame checksum mismatch".into()));
    }
    FrameOutcome::Frame(payload, first_byte.unwrap_or_else(Instant::now))
}

/// One connection's request loop.  Returns when the peer disconnects,
/// sends something malformed, closes its session, idles or stalls past
/// its budgets, the server drains, or a handler panics.
fn serve_conn(
    service: Graphiti,
    options: ServerOptions,
    stream: &mut Stream,
    shutdown: &AtomicBool,
    lifecycle: &LifecycleCounters,
    metrics: &ServerMetrics,
) {
    let _ = stream.set_read_timeout(Some(options.tick));
    let _ = stream.set_write_timeout(Some(options.write_timeout));
    let mut session: Option<graphiti_store::EmbeddedSession> = None;
    let mut greeted = false;
    // The framing version this connection negotiated at Hello; until
    // then the oldest supported layout, which the Hello frame itself
    // always uses.
    let mut version: u32 = MIN_PROTOCOL_VERSION;
    loop {
        let (payload, arrived) = match read_frame_governed(stream, &options, shutdown) {
            FrameOutcome::Frame(payload, arrived) => (payload, arrived),
            FrameOutcome::Eof | FrameOutcome::Draining | FrameOutcome::DrainExpired => return,
            FrameOutcome::Reaped => {
                lifecycle.connections_reaped.inc();
                return;
            }
            FrameOutcome::Failed(err) => {
                // A torn or hostile frame gets a typed reply; the
                // stream is unsynchronized past it, so close.
                send_error(stream, version, 0, &err, lifecycle);
                return;
            }
        };
        let (request_id, deadline_ms, wire_trace, request) =
            protocol::decode_request_versioned(&payload, version);
        // A request that arrives once the drain began is refused with a
        // typed frame; only handlers already running are in-flight.
        if shutdown.load(Ordering::SeqCst) {
            lifecycle.draining_refusals.inc();
            send_error(
                stream,
                version,
                request_id,
                &ApiError::Draining("server is draining for shutdown; retry after restart".into()),
                lifecycle,
            );
            return;
        }
        let request = match request {
            Ok(request) => request,
            Err(err) => {
                send_error(stream, version, request_id, &err, lifecycle);
                return;
            }
        };
        // Every post-handshake request gets a trace id: the client's if
        // it supplied one (version 3+), minted at decode otherwise — so
        // a version-2 peer's requests still trace server-side.
        let trace = if greeted && !matches!(request, Request::Hello { .. }) {
            if wire_trace != 0 {
                wire_trace
            } else {
                mint_trace_id()
            }
        } else {
            0
        };
        // The deadline budget runs from the frame's first byte: the
        // wire header's, or the server default when the header says 0.
        let budget = if deadline_ms > 0 {
            Some(Duration::from_millis(deadline_ms as u64))
        } else {
            options.default_deadline
        };
        let deadline = budget.map(|b| arrived + b);
        // Admission check: a frame that trickled in past its own
        // budget is answered without running the handler at all.  The
        // slack distribution records how much budget survives admission
        // (an expired budget is zero slack).
        if let Some(d) = deadline {
            let slack = d.saturating_duration_since(Instant::now());
            metrics.deadline_slack_ms.record(slack.as_millis() as u64);
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            if !send_error(
                stream,
                version,
                request_id,
                &ApiError::DeadlineExceeded("deadline expired before admission".into()),
                lifecycle,
            ) {
                return;
            }
            continue;
        }
        let closing = matches!(request, Request::Close);
        let service_time = Arc::clone(metrics.service_time(&request));
        let span = (trace != 0)
            .then(|| service.obs().tracer().clone())
            .map(|tracer| OwnedSpan::begin(tracer, trace));
        let served = Instant::now();
        // The handler runs under catch_unwind so a panic — a store bug,
        // or the poison-query test hook — becomes a typed error frame
        // instead of a hung client.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_request(
                &service,
                &options,
                lifecycle,
                &mut session,
                &mut greeted,
                &mut version,
                deadline,
                trace,
                request,
            )
        }));
        drop(span);
        service_time.record(served.elapsed().as_micros() as u64);
        match outcome {
            Ok(Ok(response)) => {
                // Pre-reply check: a reply the client has given up on
                // is not worth serializing; the typed error keeps the
                // connection usable.
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    if !send_error(
                        stream,
                        version,
                        request_id,
                        &ApiError::DeadlineExceeded(
                            "deadline expired before the reply was serialized".into(),
                        ),
                        lifecycle,
                    ) {
                        return;
                    }
                    if closing {
                        return;
                    }
                    continue;
                }
                let encoded = protocol::encode_response_versioned(version, request_id, &response);
                if protocol::write_frame(stream, &encoded).is_err() {
                    return;
                }
            }
            Ok(Err(err)) => {
                if !send_error(stream, version, request_id, &err, lifecycle) {
                    return;
                }
            }
            Err(_panic) => {
                // The session's state is suspect; drop it and close.
                drop(session.take());
                send_error(
                    stream,
                    version,
                    request_id,
                    &ApiError::Internal(
                        "server panicked handling the request; session closed".into(),
                    ),
                    lifecycle,
                );
                return;
            }
        }
        if closing {
            return;
        }
    }
}

/// A `server.request` span that owns its tracer, so it can outlive the
/// borrow checker's view of the request while the handler runs.
struct OwnedSpan {
    tracer: Arc<graphiti_obs::trace::Tracer>,
    trace: u64,
    span: u64,
}

impl OwnedSpan {
    fn begin(tracer: Arc<graphiti_obs::trace::Tracer>, trace: u64) -> OwnedSpan {
        let span = tracer.span_begin(trace, 0, "server.request");
        OwnedSpan { tracer, trace, span }
    }
}

impl Drop for OwnedSpan {
    fn drop(&mut self) {
        self.tracer.span_end(self.trace, self.span, 0, "server.request");
    }
}

/// Writes a typed error frame (counting expired deadlines); false when
/// the stream is already gone.
fn send_error(
    stream: &mut Stream,
    version: u32,
    request_id: u64,
    err: &ApiError,
    lifecycle: &LifecycleCounters,
) -> bool {
    if matches!(err, ApiError::DeadlineExceeded(_)) {
        lifecycle.deadlines_exceeded.inc();
    }
    let (code, message) = err.to_wire();
    protocol::write_frame(
        stream,
        &protocol::encode_response_versioned(
            version,
            request_id,
            &Response::Error { code, message },
        ),
    )
    .is_ok()
}

#[allow(clippy::too_many_arguments)]
fn handle_request(
    service: &Graphiti,
    options: &ServerOptions,
    lifecycle: &LifecycleCounters,
    session: &mut Option<graphiti_store::EmbeddedSession>,
    greeted: &mut bool,
    negotiated: &mut u32,
    deadline: Option<Instant>,
    trace: u64,
    request: Request,
) -> ApiResult<Response> {
    // The handshake gates everything else.  The server accepts any
    // version it still speaks and echoes it back; the connection then
    // uses that framing both ways.
    if !*greeted {
        return match request {
            Request::Hello { version }
                if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) =>
            {
                *greeted = true;
                *negotiated = version;
                Ok(Response::HelloOk { version })
            }
            Request::Hello { version } => Err(ApiError::Protocol(format!(
                "protocol version {version} not supported (server speaks \
                 {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
            ))),
            _ => Err(ApiError::Protocol("expected Hello as the first request".into())),
        };
    }
    if let Some(delay) = options.handler_delay {
        std::thread::sleep(delay);
    }
    match request {
        Request::Hello { .. } => {
            Err(ApiError::Protocol("duplicate Hello on an established connection".into()))
        }
        Request::OpenSession => {
            let s = service.session();
            let generation = s.generation();
            *session = Some(s);
            Ok(Response::SessionOpen { generation })
        }
        Request::Query(query) => {
            if let (Some(poison), Some(text)) = (&options.poison_query, query_text(&query)) {
                assert_ne!(poison, text, "poison query tripped (test hook)");
            }
            let s = open(session)?;
            Ok(Response::Rows(s.query(&query)?))
        }
        Request::Batch(queries) => {
            let s = open(session)?;
            Ok(Response::BatchOk(s.batch(&queries)?))
        }
        Request::Commit { delta, token } => {
            let s = open(session)?;
            // Pre-queue check: an already-expired budget is refused
            // before the commit is ever submitted (nothing ambiguous).
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(ApiError::DeadlineExceeded(
                    "deadline expired before the commit was queued; nothing was submitted".into(),
                ));
            }
            // The bounded admission queue, surfaced as typed
            // backpressure instead of blocking the connection thread.
            // The request's trace id rides along so the commit's WAL,
            // fsync, and publish spans join the server.request span.
            match service.try_commit_traced(
                delta,
                (token != 0).then_some(token),
                deadline,
                trace,
            )? {
                Ok(ack) => {
                    // Re-pin for read-your-writes, matching the
                    // embedded session's commit semantics.
                    let session_generation = s.refresh()?;
                    Ok(Response::CommitOk { ack, session_generation })
                }
                Err(_delta) => Err(ApiError::Backpressure("commit queue full; retry later".into())),
            }
        }
        Request::Refresh => Ok(Response::Generation(open(session)?.refresh()?)),
        Request::Stats => {
            let mut stats = service.service_stats();
            stats.deadlines_exceeded = lifecycle.deadlines_exceeded.get();
            stats.connections_reaped = lifecycle.connections_reaped.get();
            stats.draining_refusals = lifecycle.draining_refusals.get();
            stats.drain_micros = lifecycle.drain_micros.get();
            Ok(Response::StatsOk(stats))
        }
        Request::Checkpoint => Ok(Response::CheckpointOk(open(session)?.checkpoint()?)),
        Request::Close => {
            if let Some(mut s) = session.take() {
                s.close()?;
            }
            Ok(Response::Closed)
        }
        Request::Introspect { mode } => {
            let obs = service.obs();
            let text = match mode {
                IntrospectMode::Metrics => obs.render_metrics(),
                IntrospectMode::Traces => obs.render_traces_json(),
                IntrospectMode::SlowQueries => obs.render_slow_queries_json(),
            };
            Ok(Response::IntrospectOk(text))
        }
        Request::QueryProfiled(query) => {
            if let (Some(poison), Some(text)) = (&options.poison_query, query_text(&query)) {
                assert_ne!(poison, text, "poison query tripped (test hook)");
            }
            let s = open(session)?;
            let (table, profile) = s.query_profiled(&query)?;
            Ok(Response::RowsProfiled { table, profile_json: profile.to_json() })
        }
    }
}

fn query_text(q: &graphiti_engine::BatchQuery) -> Option<&str> {
    match q {
        graphiti_engine::BatchQuery::Cypher { text } => Some(text),
        graphiti_engine::BatchQuery::Sql { text, .. } => Some(text),
    }
}

fn open(
    session: &mut Option<graphiti_store::EmbeddedSession>,
) -> ApiResult<&mut graphiti_store::EmbeddedSession> {
    session.as_mut().ok_or_else(|| {
        ApiError::SessionClosed("no open session on this connection (send OpenSession)".into())
    })
}

/// A running server.  Dropping the handle shuts the server down.
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    accepter: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    lifecycle: Arc<LifecycleCounters>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl ServerHandle {
    /// The bound TCP address (None for a unix-socket server).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The unix socket path (None for a TCP server).
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// Drains and stops the server in bounded time: accepting stops,
    /// requests arriving past this point are refused with typed
    /// [`ApiError::Draining`] frames, in-flight handlers finish, idle
    /// connections close within one tick, and peers blocked mid-frame
    /// are cut off after [`ServerOptions::drain_deadline`].  Joins
    /// every connection thread and removes the unix socket file.
    pub fn shutdown(mut self) -> DrainReport {
        self.stop().unwrap_or_default()
    }

    fn stop(&mut self) -> Option<DrainReport> {
        let accepter = self.accepter.take()?;
        let started = Instant::now();
        self.shutdown.store(true, Ordering::SeqCst);
        // The accepter blocks in accept(); poke it awake with one
        // throwaway connection so it observes the flag.
        match (&self.tcp_addr, &self.unix_path) {
            (Some(addr), _) => {
                let _ = TcpStream::connect(addr);
            }
            (_, Some(path)) => {
                let _ = UnixStream::connect(path);
            }
            _ => {}
        }
        let _ = accepter.join();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.conns.lock().expect("conn registry lock"));
        let connections_joined = handles.len();
        // Every connection thread reads under the timeout tick, so each
        // observes the drain flag within a tick and exits on its own;
        // these joins are bounded, idle peers included.
        for h in handles {
            let _ = h.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        let duration = started.elapsed();
        self.lifecycle.drain_micros.set(duration.as_micros() as u64);
        Some(DrainReport {
            duration,
            draining_refusals: self.lifecycle.draining_refusals.get(),
            connections_joined,
        })
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}
