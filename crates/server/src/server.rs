//! The serving loop: thread-per-connection over TCP or unix sockets.
//!
//! One [`Server`] wraps a [`Graphiti`] service.  Each accepted
//! connection gets its own OS thread and its own wire session, pinned
//! at the generation it opened at; admission control is two-layered:
//!
//! * a **connection cap** — a connection over [`ServerOptions::max_connections`]
//!   receives one typed [`ApiError::Backpressure`] frame and is closed
//!   before a session ever exists;
//! * a **bounded commit queue** — wire commits go through the service's
//!   group committer with [`Graphiti::try_commit`]; a full queue is a
//!   typed backpressure *reply* (the connection survives, the client
//!   retries).
//!
//! A panic while handling a request never hangs the client: the
//! connection thread catches it, answers with a typed
//! [`ApiError::Internal`] frame, drops the session, and closes the
//! connection.

use crate::protocol::{self, Request, Response, DEFAULT_MAX_FRAME, PROTOCOL_VERSION};
use graphiti_common::{ApiError, ApiResult};
use graphiti_store::{Graphiti, Session};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Maximum concurrently served connections; the next one is
    /// backpressured at accept time.
    pub max_connections: usize,
    /// Ceiling on one frame's payload, bytes.
    pub max_frame_bytes: u32,
    /// Test hook: a query whose text equals this panics inside the
    /// handler, exercising the panic-to-typed-error-frame path.
    pub poison_query: Option<String>,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            max_connections: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME,
            poison_query: None,
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// One accepted connection, either transport.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A serving front-end over a [`Graphiti`] service.
pub struct Server {
    service: Graphiti,
    options: ServerOptions,
}

impl Server {
    /// Wraps a service with default options.
    pub fn new(service: Graphiti) -> Server {
        Server::with_options(service, ServerOptions::default())
    }

    /// Wraps a service with explicit options.
    pub fn with_options(service: Graphiti, options: ServerOptions) -> Server {
        Server { service, options }
    }

    /// Binds a TCP listener (use port 0 for an OS-assigned port; the
    /// bound address is on the handle) and starts accepting.
    pub fn serve_tcp(self, addr: impl std::net::ToSocketAddrs) -> ApiResult<ServerHandle> {
        let listener = TcpListener::bind(addr).map_err(|e| ApiError::Io(e.to_string()))?;
        let local = listener.local_addr().map_err(|e| ApiError::Io(e.to_string()))?;
        self.spawn(Listener::Tcp(listener), Some(local), None)
    }

    /// Binds a unix-domain socket at `path` (removed again on shutdown)
    /// and starts accepting.
    pub fn serve_unix(self, path: impl AsRef<Path>) -> ApiResult<ServerHandle> {
        let path = path.as_ref().to_path_buf();
        // A stale socket file from a crashed predecessor would make
        // bind fail; serving is the only reason the file exists.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).map_err(|e| ApiError::Io(e.to_string()))?;
        self.spawn(Listener::Unix(listener), None, Some(path))
    }

    fn spawn(
        self,
        listener: Listener,
        tcp_addr: Option<SocketAddr>,
        unix_path: Option<PathBuf>,
    ) -> ApiResult<ServerHandle> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accepter = {
            let shutdown = Arc::clone(&shutdown);
            let active = Arc::clone(&active);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("graphiti-accept".into())
                .spawn(move || accept_loop(self, listener, shutdown, active, conns))
                .map_err(|e| ApiError::Io(e.to_string()))?
        };
        Ok(ServerHandle { shutdown, accepter: Some(accepter), conns, tcp_addr, unix_path })
    }
}

fn accept_loop(
    server: Server,
    listener: Listener,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let stream = match &listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        // Admission layer one: the connection cap.
        if active.fetch_add(1, Ordering::SeqCst) >= server.options.max_connections {
            active.fetch_sub(1, Ordering::SeqCst);
            let err = ApiError::Backpressure(format!(
                "server at its {}-connection cap; retry later",
                server.options.max_connections
            ));
            let (code, message) = err.to_wire();
            let _ = protocol::write_frame(
                &mut stream,
                &protocol::encode_response(0, &Response::Error { code, message }),
            );
            continue;
        }
        let service = server.service.clone();
        let options = server.options.clone();
        let conn_active = Arc::clone(&active);
        let handle = std::thread::Builder::new().name("graphiti-conn".into()).spawn(move || {
            serve_conn(service, options, &mut stream);
            conn_active.fetch_sub(1, Ordering::SeqCst);
        });
        match handle {
            Ok(h) => conns.lock().expect("conn registry lock").push(h),
            Err(_) => {
                active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// One connection's request loop.  Returns when the peer disconnects,
/// sends something malformed, closes its session, or a handler panics.
fn serve_conn(service: Graphiti, options: ServerOptions, stream: &mut Stream) {
    let mut session: Option<graphiti_store::EmbeddedSession> = None;
    let mut greeted = false;
    loop {
        let payload = match protocol::read_frame(stream, options.max_frame_bytes) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(err) => {
                // A torn or hostile frame gets a typed reply; the
                // stream is unsynchronized past it, so close.
                send_error(stream, 0, &err);
                return;
            }
        };
        let (request_id, request) = protocol::decode_request(&payload);
        let request = match request {
            Ok(request) => request,
            Err(err) => {
                send_error(stream, request_id, &err);
                return;
            }
        };
        let closing = matches!(request, Request::Close);
        // The handler runs under catch_unwind so a panic — a store bug,
        // or the poison-query test hook — becomes a typed error frame
        // instead of a hung client.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_request(&service, &options, &mut session, &mut greeted, request)
        }));
        match outcome {
            Ok(Ok(response)) => {
                if protocol::write_frame(stream, &protocol::encode_response(request_id, &response))
                    .is_err()
                {
                    return;
                }
            }
            Ok(Err(err)) => {
                if !send_error(stream, request_id, &err) {
                    return;
                }
            }
            Err(_panic) => {
                // The session's state is suspect; drop it and close.
                drop(session.take());
                send_error(
                    stream,
                    request_id,
                    &ApiError::Internal(
                        "server panicked handling the request; session closed".into(),
                    ),
                );
                return;
            }
        }
        if closing {
            return;
        }
    }
}

/// Writes a typed error frame; false when the stream is already gone.
fn send_error(stream: &mut Stream, request_id: u64, err: &ApiError) -> bool {
    let (code, message) = err.to_wire();
    protocol::write_frame(
        stream,
        &protocol::encode_response(request_id, &Response::Error { code, message }),
    )
    .is_ok()
}

fn handle_request(
    service: &Graphiti,
    options: &ServerOptions,
    session: &mut Option<graphiti_store::EmbeddedSession>,
    greeted: &mut bool,
    request: Request,
) -> ApiResult<Response> {
    // The handshake gates everything else.
    if !*greeted {
        return match request {
            Request::Hello { version: PROTOCOL_VERSION } => {
                *greeted = true;
                Ok(Response::HelloOk { version: PROTOCOL_VERSION })
            }
            Request::Hello { version } => Err(ApiError::Protocol(format!(
                "protocol version {version} not supported (server speaks {PROTOCOL_VERSION})"
            ))),
            _ => Err(ApiError::Protocol("expected Hello as the first request".into())),
        };
    }
    match request {
        Request::Hello { .. } => {
            Err(ApiError::Protocol("duplicate Hello on an established connection".into()))
        }
        Request::OpenSession => {
            let s = service.session();
            let generation = s.generation();
            *session = Some(s);
            Ok(Response::SessionOpen { generation })
        }
        Request::Query(query) => {
            if let (Some(poison), Some(text)) = (&options.poison_query, query_text(&query)) {
                assert_ne!(poison, text, "poison query tripped (test hook)");
            }
            let s = open(session)?;
            Ok(Response::Rows(s.query(&query)?))
        }
        Request::Batch(queries) => {
            let s = open(session)?;
            Ok(Response::BatchOk(s.batch(&queries)?))
        }
        Request::Commit(delta) => {
            let s = open(session)?;
            // The bounded admission queue, surfaced as typed
            // backpressure instead of blocking the connection thread.
            match service.try_commit(delta)? {
                Ok(ack) => {
                    // Re-pin for read-your-writes, matching the
                    // embedded session's commit semantics.
                    let session_generation = s.refresh()?;
                    Ok(Response::CommitOk { ack, session_generation })
                }
                Err(_delta) => Err(ApiError::Backpressure("commit queue full; retry later".into())),
            }
        }
        Request::Refresh => Ok(Response::Generation(open(session)?.refresh()?)),
        Request::Stats => Ok(Response::StatsOk(service.service_stats())),
        Request::Checkpoint => Ok(Response::CheckpointOk(open(session)?.checkpoint()?)),
        Request::Close => {
            if let Some(mut s) = session.take() {
                s.close()?;
            }
            Ok(Response::Closed)
        }
    }
}

fn query_text(q: &graphiti_engine::BatchQuery) -> Option<&str> {
    match q {
        graphiti_engine::BatchQuery::Cypher { text } => Some(text),
        graphiti_engine::BatchQuery::Sql { text, .. } => Some(text),
    }
}

fn open(
    session: &mut Option<graphiti_store::EmbeddedSession>,
) -> ApiResult<&mut graphiti_store::EmbeddedSession> {
    session.as_mut().ok_or_else(|| {
        ApiError::SessionClosed("no open session on this connection (send OpenSession)".into())
    })
}

/// A running server.  Dropping the handle shuts the server down.
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    accepter: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl ServerHandle {
    /// The bound TCP address (None for a unix-socket server).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The unix socket path (None for a TCP server).
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// Stops accepting, joins every connection thread, and removes the
    /// unix socket file.  Established connections finish their request
    /// loops first (clients should `Close` before the server stops).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(accepter) = self.accepter.take() else { return };
        self.shutdown.store(true, Ordering::SeqCst);
        // The accepter blocks in accept(); poke it awake with one
        // throwaway connection so it observes the flag.
        match (&self.tcp_addr, &self.unix_path) {
            (Some(addr), _) => {
                let _ = TcpStream::connect(addr);
            }
            (_, Some(path)) => {
                let _ = UnixStream::connect(path);
            }
            _ => {}
        }
        let _ = accepter.join();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.conns.lock().expect("conn registry lock"));
        for h in handles {
            let _ = h.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}
