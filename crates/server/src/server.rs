//! The serving loop: thread-per-connection over TCP or unix sockets.
//!
//! One [`Server`] wraps a [`Graphiti`] service.  Each accepted
//! connection gets its own OS thread and its own wire session, pinned
//! at the generation it opened at; admission control is two-layered:
//!
//! * a **connection cap** — a connection over [`ServerOptions::max_connections`]
//!   receives one typed [`ApiError::Backpressure`] frame and is closed
//!   before a session ever exists;
//! * a **bounded commit queue** — wire commits go through the service's
//!   group committer with [`Graphiti::try_commit_tagged`]; a full queue
//!   is a typed backpressure *reply* (the connection survives, the
//!   client retries).
//!
//! Every socket read runs under a short timeout tick
//! ([`ServerOptions::tick`]) so no connection thread ever blocks
//! indefinitely: an idle peer is reaped after
//! [`ServerOptions::idle_timeout`], a peer stalled mid-frame is cut off
//! after [`ServerOptions::stall_timeout`], and a draining server
//! interrupts blocked readers within one tick.  Each request carries a
//! deadline budget (wire header, or [`ServerOptions::default_deadline`])
//! checked at admission, before the commit queue, and before reply
//! serialization — an expired budget answers a typed
//! [`ApiError::DeadlineExceeded`] instead of late work.
//!
//! [`ServerHandle::shutdown`] drains rather than aborts: accepting
//! stops, requests arriving after the flag flips are refused with a
//! typed [`ApiError::Draining`] frame, in-flight handlers finish, and
//! readers blocked mid-frame are cut off after
//! [`ServerOptions::drain_deadline`] — so shutdown completes in bounded
//! time against any mix of idle, slow, and mid-request peers.
//!
//! A panic while handling a request never hangs the client: the
//! connection thread catches it, answers with a typed
//! [`ApiError::Internal`] frame, drops the session, and closes the
//! connection.

use crate::protocol::{self, Request, Response, DEFAULT_MAX_FRAME, PROTOCOL_VERSION};
use graphiti_common::{ApiError, ApiResult};
use graphiti_store::codec;
use graphiti_store::{Graphiti, Session};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Environment variable naming the server's default per-request
/// deadline budget in milliseconds (used when a request's wire header
/// carries `deadline_ms == 0`).  Unset, unparsable, or `0` means no
/// default deadline.
pub const DEADLINE_ENV: &str = "GRAPHITI_DEADLINE_MS";

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Maximum concurrently served connections; the next one is
    /// backpressured at accept time.
    pub max_connections: usize,
    /// Ceiling on one frame's payload, bytes.
    pub max_frame_bytes: u32,
    /// Socket read-timeout granularity.  Every blocking read wakes at
    /// least this often to check the drain flag and the idle/stall
    /// budgets; it bounds how stale those checks can be.
    pub tick: Duration,
    /// Socket write timeout: a peer that stops draining its receive
    /// buffer cannot pin a connection thread in `write` forever.
    pub write_timeout: Duration,
    /// A connection idle (no bytes between frames) longer than this is
    /// reaped: closed, with the reap counted in the lifecycle stats.
    pub idle_timeout: Duration,
    /// A peer that started a frame but stops making progress for this
    /// long is cut off (a trickling or wedged peer cannot hold a thread
    /// hostage mid-frame).
    pub stall_timeout: Duration,
    /// Deadline budget applied to requests whose wire header carries
    /// `deadline_ms == 0`.  Defaults from [`DEADLINE_ENV`]; `None`
    /// means such requests run without a deadline.
    pub default_deadline: Option<Duration>,
    /// How long a drain waits on peers blocked mid-frame before
    /// cutting them off.  Idle peers close within one tick; this only
    /// bounds the stragglers, so shutdown completes in roughly
    /// `max(in-flight handler time, drain_deadline)`.
    pub drain_deadline: Duration,
    /// Test hook: a query whose text equals this panics inside the
    /// handler, exercising the panic-to-typed-error-frame path.
    pub poison_query: Option<String>,
    /// Test hook: sleep this long inside the handler before executing
    /// any post-handshake request, exercising the deadline checks.
    pub handler_delay: Option<Duration>,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            max_connections: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME,
            tick: Duration::from_millis(100),
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(300),
            stall_timeout: Duration::from_secs(10),
            default_deadline: deadline_from_env(),
            drain_deadline: Duration::from_secs(5),
            poison_query: None,
            handler_delay: None,
        }
    }
}

fn deadline_from_env() -> Option<Duration> {
    std::env::var(DEADLINE_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
}

/// Server-side request-lifecycle counters, merged into the
/// [`ServiceStats`](graphiti_store::ServiceStats) a wire `Stats`
/// request returns.
#[derive(Debug, Default)]
struct LifecycleCounters {
    deadlines_exceeded: AtomicU64,
    connections_reaped: AtomicU64,
    draining_refusals: AtomicU64,
    drain_micros: AtomicU64,
}

/// What [`ServerHandle::shutdown`] observed while draining.
#[derive(Debug, Clone, Default)]
pub struct DrainReport {
    /// Wall-clock time from the drain flag flipping to the last
    /// connection thread joining.
    pub duration: Duration,
    /// Requests refused with a typed [`ApiError::Draining`] frame
    /// because they arrived after the drain began (whole server life,
    /// monotone — a server drains once).
    pub draining_refusals: u64,
    /// Connection threads joined by this drain (idle, in-flight, and
    /// stalled peers alike).
    pub connections_joined: usize,
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// One accepted connection, either transport.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            Stream::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(t),
            Stream::Unix(s) => s.set_write_timeout(t),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A serving front-end over a [`Graphiti`] service.
pub struct Server {
    service: Graphiti,
    options: ServerOptions,
}

impl Server {
    /// Wraps a service with default options.
    pub fn new(service: Graphiti) -> Server {
        Server::with_options(service, ServerOptions::default())
    }

    /// Wraps a service with explicit options.
    pub fn with_options(service: Graphiti, options: ServerOptions) -> Server {
        Server { service, options }
    }

    /// Binds a TCP listener (use port 0 for an OS-assigned port; the
    /// bound address is on the handle) and starts accepting.
    pub fn serve_tcp(self, addr: impl std::net::ToSocketAddrs) -> ApiResult<ServerHandle> {
        let listener = TcpListener::bind(addr).map_err(|e| ApiError::Io(e.to_string()))?;
        let local = listener.local_addr().map_err(|e| ApiError::Io(e.to_string()))?;
        self.spawn(Listener::Tcp(listener), Some(local), None)
    }

    /// Binds a unix-domain socket at `path` (removed again on shutdown)
    /// and starts accepting.
    pub fn serve_unix(self, path: impl AsRef<Path>) -> ApiResult<ServerHandle> {
        let path = path.as_ref().to_path_buf();
        // A stale socket file from a crashed predecessor would make
        // bind fail; serving is the only reason the file exists.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).map_err(|e| ApiError::Io(e.to_string()))?;
        self.spawn(Listener::Unix(listener), None, Some(path))
    }

    fn spawn(
        self,
        listener: Listener,
        tcp_addr: Option<SocketAddr>,
        unix_path: Option<PathBuf>,
    ) -> ApiResult<ServerHandle> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let lifecycle = Arc::new(LifecycleCounters::default());
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accepter = {
            let shutdown = Arc::clone(&shutdown);
            let active = Arc::clone(&active);
            let lifecycle = Arc::clone(&lifecycle);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("graphiti-accept".into())
                .spawn(move || accept_loop(self, listener, shutdown, active, lifecycle, conns))
                .map_err(|e| ApiError::Io(e.to_string()))?
        };
        Ok(ServerHandle {
            shutdown,
            accepter: Some(accepter),
            conns,
            lifecycle,
            tcp_addr,
            unix_path,
        })
    }
}

fn accept_loop(
    server: Server,
    listener: Listener,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    lifecycle: Arc<LifecycleCounters>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let stream = match &listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        // Admission layer one: the connection cap.
        if active.fetch_add(1, Ordering::SeqCst) >= server.options.max_connections {
            active.fetch_sub(1, Ordering::SeqCst);
            let err = ApiError::Backpressure(format!(
                "server at its {}-connection cap; retry later",
                server.options.max_connections
            ));
            let (code, message) = err.to_wire();
            let _ = protocol::write_frame(
                &mut stream,
                &protocol::encode_response(0, &Response::Error { code, message }),
            );
            continue;
        }
        let service = server.service.clone();
        let options = server.options.clone();
        let conn_shutdown = Arc::clone(&shutdown);
        let conn_lifecycle = Arc::clone(&lifecycle);
        let conn_active = Arc::clone(&active);
        let handle = std::thread::Builder::new().name("graphiti-conn".into()).spawn(move || {
            serve_conn(service, options, &mut stream, &conn_shutdown, &conn_lifecycle);
            conn_active.fetch_sub(1, Ordering::SeqCst);
        });
        match handle {
            Ok(h) => conns.lock().expect("conn registry lock").push(h),
            Err(_) => {
                active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// How one governed `read_exact` over the timeout tick ended.
enum GovRead {
    /// The buffer is full.
    Full,
    /// Clean end-of-stream at a frame boundary.
    Eof,
    /// The peer closed mid-read.
    Torn,
    /// The drain flag flipped while idle at a frame boundary.
    Draining,
    /// Idle at a frame boundary past the idle timeout.
    IdleReap,
    /// Mid-read without progress past the stall timeout.
    Stalled,
    /// Mid-read when the drain deadline expired.
    DrainExpired,
    /// A hard I/O failure.
    Io(String),
}

/// Fills `buf` under the connection's timeout tick.  `at_boundary`
/// marks a read that starts between frames, where zero bytes so far
/// means the peer is merely idle (eligible for clean EOF, drain close,
/// and idle reaping) rather than stalled mid-frame.
fn read_governed(
    stream: &mut Stream,
    buf: &mut [u8],
    at_boundary: bool,
    options: &ServerOptions,
    shutdown: &AtomicBool,
    first_byte: &mut Option<Instant>,
) -> GovRead {
    let started = Instant::now();
    let mut progress_at = started;
    let mut drain_seen: Option<Instant> = None;
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 && at_boundary => return GovRead::Eof,
            Ok(0) => return GovRead::Torn,
            Ok(n) => {
                filled += n;
                progress_at = Instant::now();
                first_byte.get_or_insert(progress_at);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                let now = Instant::now();
                let idle = filled == 0 && at_boundary;
                if shutdown.load(Ordering::SeqCst) {
                    if idle {
                        return GovRead::Draining;
                    }
                    let seen = *drain_seen.get_or_insert(now);
                    if now.duration_since(seen) >= options.drain_deadline {
                        return GovRead::DrainExpired;
                    }
                }
                if idle {
                    if now.duration_since(started) >= options.idle_timeout {
                        return GovRead::IdleReap;
                    }
                } else if now.duration_since(progress_at) >= options.stall_timeout {
                    return GovRead::Stalled;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return GovRead::Io(e.to_string()),
        }
    }
    GovRead::Full
}

/// One whole frame read under the lifecycle governor.
enum FrameOutcome {
    /// A complete payload, plus when its first byte arrived (the
    /// request's deadline budget is measured from there, so a
    /// trickled-in frame spends its own budget).
    Frame(Vec<u8>, Instant),
    /// Clean end-of-stream between frames.
    Eof,
    /// Close quietly: drain observed while idle.
    Draining,
    /// Close and count a reap: idle or stalled peer.
    Reaped,
    /// Close: the drain deadline expired on a mid-frame peer.
    DrainExpired,
    /// Close after a typed error frame: torn, oversized, or corrupt.
    Failed(ApiError),
}

fn read_frame_governed(
    stream: &mut Stream,
    options: &ServerOptions,
    shutdown: &AtomicBool,
) -> FrameOutcome {
    let mut first_byte = None;
    let mut header = [0u8; 8];
    match read_governed(stream, &mut header, true, options, shutdown, &mut first_byte) {
        GovRead::Full => {}
        GovRead::Eof => return FrameOutcome::Eof,
        GovRead::Draining => return FrameOutcome::Draining,
        GovRead::IdleReap | GovRead::Stalled => return FrameOutcome::Reaped,
        GovRead::DrainExpired => return FrameOutcome::DrainExpired,
        GovRead::Torn => {
            return FrameOutcome::Failed(ApiError::Protocol(
                "connection closed inside a frame header".into(),
            ))
        }
        GovRead::Io(m) => return FrameOutcome::Failed(ApiError::Io(m)),
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len == 0 {
        return FrameOutcome::Failed(ApiError::Protocol("empty frame payload".into()));
    }
    if len > options.max_frame_bytes {
        return FrameOutcome::Failed(ApiError::Protocol(format!(
            "oversized frame: {len} bytes exceeds the {} cap",
            options.max_frame_bytes
        )));
    }
    let mut payload = vec![0u8; len as usize];
    match read_governed(stream, &mut payload, false, options, shutdown, &mut first_byte) {
        GovRead::Full => {}
        GovRead::Eof | GovRead::Torn => {
            return FrameOutcome::Failed(ApiError::Protocol(
                "connection closed inside a frame payload".into(),
            ))
        }
        GovRead::Stalled | GovRead::IdleReap => return FrameOutcome::Reaped,
        GovRead::Draining | GovRead::DrainExpired => return FrameOutcome::DrainExpired,
        GovRead::Io(m) => return FrameOutcome::Failed(ApiError::Io(m)),
    }
    if codec::crc32(&payload) != crc {
        return FrameOutcome::Failed(ApiError::Protocol("frame checksum mismatch".into()));
    }
    FrameOutcome::Frame(payload, first_byte.unwrap_or_else(Instant::now))
}

/// One connection's request loop.  Returns when the peer disconnects,
/// sends something malformed, closes its session, idles or stalls past
/// its budgets, the server drains, or a handler panics.
fn serve_conn(
    service: Graphiti,
    options: ServerOptions,
    stream: &mut Stream,
    shutdown: &AtomicBool,
    lifecycle: &LifecycleCounters,
) {
    let _ = stream.set_read_timeout(Some(options.tick));
    let _ = stream.set_write_timeout(Some(options.write_timeout));
    let mut session: Option<graphiti_store::EmbeddedSession> = None;
    let mut greeted = false;
    loop {
        let (payload, arrived) = match read_frame_governed(stream, &options, shutdown) {
            FrameOutcome::Frame(payload, arrived) => (payload, arrived),
            FrameOutcome::Eof | FrameOutcome::Draining | FrameOutcome::DrainExpired => return,
            FrameOutcome::Reaped => {
                lifecycle.connections_reaped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            FrameOutcome::Failed(err) => {
                // A torn or hostile frame gets a typed reply; the
                // stream is unsynchronized past it, so close.
                send_error(stream, 0, &err, lifecycle);
                return;
            }
        };
        let (request_id, deadline_ms, request) = protocol::decode_request(&payload);
        // A request that arrives once the drain began is refused with a
        // typed frame; only handlers already running are in-flight.
        if shutdown.load(Ordering::SeqCst) {
            lifecycle.draining_refusals.fetch_add(1, Ordering::Relaxed);
            send_error(
                stream,
                request_id,
                &ApiError::Draining("server is draining for shutdown; retry after restart".into()),
                lifecycle,
            );
            return;
        }
        let request = match request {
            Ok(request) => request,
            Err(err) => {
                send_error(stream, request_id, &err, lifecycle);
                return;
            }
        };
        // The deadline budget runs from the frame's first byte: the
        // wire header's, or the server default when the header says 0.
        let budget = if deadline_ms > 0 {
            Some(Duration::from_millis(deadline_ms as u64))
        } else {
            options.default_deadline
        };
        let deadline = budget.map(|b| arrived + b);
        // Admission check: a frame that trickled in past its own
        // budget is answered without running the handler at all.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            if !send_error(
                stream,
                request_id,
                &ApiError::DeadlineExceeded("deadline expired before admission".into()),
                lifecycle,
            ) {
                return;
            }
            continue;
        }
        let closing = matches!(request, Request::Close);
        // The handler runs under catch_unwind so a panic — a store bug,
        // or the poison-query test hook — becomes a typed error frame
        // instead of a hung client.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_request(
                &service,
                &options,
                lifecycle,
                &mut session,
                &mut greeted,
                deadline,
                request,
            )
        }));
        match outcome {
            Ok(Ok(response)) => {
                // Pre-reply check: a reply the client has given up on
                // is not worth serializing; the typed error keeps the
                // connection usable.
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    if !send_error(
                        stream,
                        request_id,
                        &ApiError::DeadlineExceeded(
                            "deadline expired before the reply was serialized".into(),
                        ),
                        lifecycle,
                    ) {
                        return;
                    }
                    if closing {
                        return;
                    }
                    continue;
                }
                if protocol::write_frame(stream, &protocol::encode_response(request_id, &response))
                    .is_err()
                {
                    return;
                }
            }
            Ok(Err(err)) => {
                if !send_error(stream, request_id, &err, lifecycle) {
                    return;
                }
            }
            Err(_panic) => {
                // The session's state is suspect; drop it and close.
                drop(session.take());
                send_error(
                    stream,
                    request_id,
                    &ApiError::Internal(
                        "server panicked handling the request; session closed".into(),
                    ),
                    lifecycle,
                );
                return;
            }
        }
        if closing {
            return;
        }
    }
}

/// Writes a typed error frame (counting expired deadlines); false when
/// the stream is already gone.
fn send_error(
    stream: &mut Stream,
    request_id: u64,
    err: &ApiError,
    lifecycle: &LifecycleCounters,
) -> bool {
    if matches!(err, ApiError::DeadlineExceeded(_)) {
        lifecycle.deadlines_exceeded.fetch_add(1, Ordering::Relaxed);
    }
    let (code, message) = err.to_wire();
    protocol::write_frame(
        stream,
        &protocol::encode_response(request_id, &Response::Error { code, message }),
    )
    .is_ok()
}

fn handle_request(
    service: &Graphiti,
    options: &ServerOptions,
    lifecycle: &LifecycleCounters,
    session: &mut Option<graphiti_store::EmbeddedSession>,
    greeted: &mut bool,
    deadline: Option<Instant>,
    request: Request,
) -> ApiResult<Response> {
    // The handshake gates everything else.
    if !*greeted {
        return match request {
            Request::Hello { version: PROTOCOL_VERSION } => {
                *greeted = true;
                Ok(Response::HelloOk { version: PROTOCOL_VERSION })
            }
            Request::Hello { version } => Err(ApiError::Protocol(format!(
                "protocol version {version} not supported (server speaks {PROTOCOL_VERSION})"
            ))),
            _ => Err(ApiError::Protocol("expected Hello as the first request".into())),
        };
    }
    if let Some(delay) = options.handler_delay {
        std::thread::sleep(delay);
    }
    match request {
        Request::Hello { .. } => {
            Err(ApiError::Protocol("duplicate Hello on an established connection".into()))
        }
        Request::OpenSession => {
            let s = service.session();
            let generation = s.generation();
            *session = Some(s);
            Ok(Response::SessionOpen { generation })
        }
        Request::Query(query) => {
            if let (Some(poison), Some(text)) = (&options.poison_query, query_text(&query)) {
                assert_ne!(poison, text, "poison query tripped (test hook)");
            }
            let s = open(session)?;
            Ok(Response::Rows(s.query(&query)?))
        }
        Request::Batch(queries) => {
            let s = open(session)?;
            Ok(Response::BatchOk(s.batch(&queries)?))
        }
        Request::Commit { delta, token } => {
            let s = open(session)?;
            // Pre-queue check: an already-expired budget is refused
            // before the commit is ever submitted (nothing ambiguous).
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(ApiError::DeadlineExceeded(
                    "deadline expired before the commit was queued; nothing was submitted".into(),
                ));
            }
            // The bounded admission queue, surfaced as typed
            // backpressure instead of blocking the connection thread.
            match service.try_commit_tagged(delta, (token != 0).then_some(token), deadline)? {
                Ok(ack) => {
                    // Re-pin for read-your-writes, matching the
                    // embedded session's commit semantics.
                    let session_generation = s.refresh()?;
                    Ok(Response::CommitOk { ack, session_generation })
                }
                Err(_delta) => Err(ApiError::Backpressure("commit queue full; retry later".into())),
            }
        }
        Request::Refresh => Ok(Response::Generation(open(session)?.refresh()?)),
        Request::Stats => {
            let mut stats = service.service_stats();
            stats.deadlines_exceeded = lifecycle.deadlines_exceeded.load(Ordering::Relaxed);
            stats.connections_reaped = lifecycle.connections_reaped.load(Ordering::Relaxed);
            stats.draining_refusals = lifecycle.draining_refusals.load(Ordering::Relaxed);
            stats.drain_micros = lifecycle.drain_micros.load(Ordering::Relaxed);
            Ok(Response::StatsOk(stats))
        }
        Request::Checkpoint => Ok(Response::CheckpointOk(open(session)?.checkpoint()?)),
        Request::Close => {
            if let Some(mut s) = session.take() {
                s.close()?;
            }
            Ok(Response::Closed)
        }
    }
}

fn query_text(q: &graphiti_engine::BatchQuery) -> Option<&str> {
    match q {
        graphiti_engine::BatchQuery::Cypher { text } => Some(text),
        graphiti_engine::BatchQuery::Sql { text, .. } => Some(text),
    }
}

fn open(
    session: &mut Option<graphiti_store::EmbeddedSession>,
) -> ApiResult<&mut graphiti_store::EmbeddedSession> {
    session.as_mut().ok_or_else(|| {
        ApiError::SessionClosed("no open session on this connection (send OpenSession)".into())
    })
}

/// A running server.  Dropping the handle shuts the server down.
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    accepter: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    lifecycle: Arc<LifecycleCounters>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl ServerHandle {
    /// The bound TCP address (None for a unix-socket server).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The unix socket path (None for a TCP server).
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// Drains and stops the server in bounded time: accepting stops,
    /// requests arriving past this point are refused with typed
    /// [`ApiError::Draining`] frames, in-flight handlers finish, idle
    /// connections close within one tick, and peers blocked mid-frame
    /// are cut off after [`ServerOptions::drain_deadline`].  Joins
    /// every connection thread and removes the unix socket file.
    pub fn shutdown(mut self) -> DrainReport {
        self.stop().unwrap_or_default()
    }

    fn stop(&mut self) -> Option<DrainReport> {
        let accepter = self.accepter.take()?;
        let started = Instant::now();
        self.shutdown.store(true, Ordering::SeqCst);
        // The accepter blocks in accept(); poke it awake with one
        // throwaway connection so it observes the flag.
        match (&self.tcp_addr, &self.unix_path) {
            (Some(addr), _) => {
                let _ = TcpStream::connect(addr);
            }
            (_, Some(path)) => {
                let _ = UnixStream::connect(path);
            }
            _ => {}
        }
        let _ = accepter.join();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.conns.lock().expect("conn registry lock"));
        let connections_joined = handles.len();
        // Every connection thread reads under the timeout tick, so each
        // observes the drain flag within a tick and exits on its own;
        // these joins are bounded, idle peers included.
        for h in handles {
            let _ = h.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        let duration = started.elapsed();
        self.lifecycle.drain_micros.store(duration.as_micros() as u64, Ordering::Relaxed);
        Some(DrainReport {
            duration,
            draining_refusals: self.lifecycle.draining_refusals.load(Ordering::Relaxed),
            connections_joined,
        })
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}
