//! Request-lifecycle tests: bounded shutdown against idle and
//! mid-request clients, idle-connection reaping, per-request deadline
//! enforcement at every checkpoint, and the lifecycle counters moving
//! through the wire `Stats` frame.

use graphiti_common::ApiError;
use graphiti_engine::BatchQuery;
use graphiti_server::protocol::{self, Request, Response, DEFAULT_MAX_FRAME, MIN_PROTOCOL_VERSION};
use graphiti_server::{Client, Server, ServerOptions};
use graphiti_store::{Graphiti, Session};
use graphiti_testkit::fixtures;
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn sock_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("graphiti-lc-{tag}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn service() -> Graphiti {
    Graphiti::builder(fixtures::emp::schema())
        .group_commit_default()
        .open()
        .expect("in-memory service opens")
}

/// Fast lifecycle ticks so the tests finish quickly.
fn fast_options() -> ServerOptions {
    ServerOptions {
        tick: Duration::from_millis(20),
        drain_deadline: Duration::from_millis(500),
        ..ServerOptions::default()
    }
}

/// One raw request/reply exchange over an already-connected stream.
fn raw_call(
    conn: &mut std::os::unix::net::UnixStream,
    id: u64,
    deadline_ms: u32,
    req: &Request,
) -> Response {
    protocol::write_frame(conn, &protocol::encode_request(id, deadline_ms, req)).expect("send");
    let payload = protocol::read_frame(conn, DEFAULT_MAX_FRAME)
        .expect("a reply, not a dropped connection")
        .expect("a frame, not EOF");
    let (_, resp) = protocol::decode_response(&payload);
    resp.expect("reply decodes")
}

/// The PR-9 bug pin: an idle connection that never sends a byte must
/// not hang `shutdown` (the seed joined its reader with no timeout).
#[test]
fn shutdown_returns_promptly_with_idle_connection() {
    let path = sock_path("idle-drain");
    let handle =
        Server::with_options(service(), fast_options()).serve_unix(&path).expect("server binds");

    // An idle peer: connected, never sends anything, never closes.
    let idle = std::os::unix::net::UnixStream::connect(&path).expect("idle peer connects");
    // Give the accept loop time to hand the connection to its thread.
    std::thread::sleep(Duration::from_millis(50));

    let started = Instant::now();
    let report = handle.shutdown();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "shutdown must be bounded with an idle peer; took {elapsed:?}"
    );
    assert!(report.connections_joined >= 1, "the idle connection was joined");
    assert!(report.duration <= elapsed);
    drop(idle);
}

/// A full drain: in-flight requests finish, requests arriving after the
/// drain begins get a typed `Draining` frame, and the report counts it.
#[test]
fn drain_finishes_in_flight_and_refuses_new_requests() {
    let path = sock_path("drain-mix");
    let options =
        ServerOptions { handler_delay: Some(Duration::from_millis(400)), ..fast_options() };
    let handle = Server::with_options(service(), options).serve_unix(&path).expect("server binds");

    // An in-flight client: its query is sleeping inside the handler
    // when the drain begins, and must still complete.  (Handshake
    // happens here, pre-drain — OpenSession pays the handler delay
    // too.)
    let mut session = Client::connect_unix(&path).expect("client connects");
    let in_flight = std::thread::spawn(move || {
        session
            .query(&BatchQuery::cypher("MATCH (n:EMP) RETURN n.id AS id"))
            .expect("the in-flight query completes through the drain")
    });
    // A second established connection whose handler is also mid-sleep
    // when the drain begins; its *next* request is already buffered
    // behind the in-flight one, so the connection thread reads it
    // post-drain and must refuse it with a typed Draining frame.  (An
    // idle connection is simply closed — there is no request to
    // refuse.)
    let mut late = std::os::unix::net::UnixStream::connect(&path).expect("late peer connects");
    match raw_call(&mut late, 1, 0, &Request::Hello { version: MIN_PROTOCOL_VERSION }) {
        Response::HelloOk { .. } => {}
        other => panic!("expected HelloOk, got {other:?}"),
    }
    protocol::write_frame(&mut late, &protocol::encode_request(2, 0, &Request::Stats))
        .expect("send in-flight request");
    // Let both handlers reach their sleeps, then drain.
    std::thread::sleep(Duration::from_millis(150));
    let drainer = std::thread::spawn(move || handle.shutdown());
    std::thread::sleep(Duration::from_millis(50));
    // Queued behind the sleeping handler; read post-drain.
    protocol::write_frame(&mut late, &protocol::encode_request(3, 0, &Request::Stats))
        .expect("send mid-drain request");

    // The in-flight request completes through the drain...
    let payload = protocol::read_frame(&mut late, DEFAULT_MAX_FRAME)
        .expect("the in-flight reply arrives")
        .expect("a frame, not EOF");
    let (_, resp) = protocol::decode_response(&payload);
    assert!(matches!(resp, Ok(Response::StatsOk(_))), "in-flight request finished: {resp:?}");
    // ... and the mid-drain one gets a typed Draining refusal.
    let payload = protocol::read_frame(&mut late, DEFAULT_MAX_FRAME)
        .expect("a typed refusal, not a dropped connection")
        .expect("a frame, not EOF");
    let (_, resp) = protocol::decode_response(&payload);
    let Ok(Response::Error { code, message }) = resp else { panic!("expected an error frame") };
    assert!(
        matches!(ApiError::from_wire(code, message), ApiError::Draining(_)),
        "mid-drain requests are refused with Draining"
    );

    let rows = in_flight.join().expect("in-flight client never panics");
    assert_eq!(rows.columns, vec!["id".to_string()]);
    let report = drainer.join().expect("drain thread never panics");
    assert!(report.draining_refusals >= 1, "the refusal is counted: {report:?}");
    assert!(
        report.duration < Duration::from_secs(3),
        "drain is bounded with mixed clients; took {:?}",
        report.duration
    );
}

/// Deadline budgets are enforced at admission (a frame that trickles in
/// past its own budget) and before reply serialization (a handler that
/// outlives the budget), both answering typed `DeadlineExceeded` — and
/// the counter surfaces through the wire `Stats` frame.
#[test]
fn deadlines_are_enforced_and_counted() {
    let path = sock_path("deadline");
    let options =
        ServerOptions { handler_delay: Some(Duration::from_millis(150)), ..fast_options() };
    let handle = Server::with_options(service(), options).serve_unix(&path).expect("server binds");

    let mut conn = std::os::unix::net::UnixStream::connect(&path).expect("connects");
    match raw_call(&mut conn, 1, 0, &Request::Hello { version: MIN_PROTOCOL_VERSION }) {
        Response::HelloOk { .. } => {}
        other => panic!("expected HelloOk, got {other:?}"),
    }
    // No deadline: the delayed handler is slow but succeeds.
    match raw_call(&mut conn, 2, 0, &Request::OpenSession) {
        Response::SessionOpen { .. } => {}
        other => panic!("expected SessionOpen, got {other:?}"),
    }
    // A 50 ms budget cannot survive the 150 ms handler delay: the
    // pre-reply check fires and the reply is a typed DeadlineExceeded.
    match raw_call(&mut conn, 3, 50, &Request::Refresh) {
        Response::Error { code, message } => {
            let err = ApiError::from_wire(code, message);
            assert!(matches!(err, ApiError::DeadlineExceeded(_)), "pre-reply check: {err}");
        }
        other => panic!("expected a deadline error, got {other:?}"),
    }
    // Admission check: trickle a frame in over 200 ms against a 50 ms
    // budget — the server answers without running the handler.
    let framed = protocol::frame(&protocol::encode_request(4, 50, &Request::Refresh));
    let (head, tail) = framed.split_at(framed.len() / 2);
    conn.write_all(head).expect("send first half");
    std::thread::sleep(Duration::from_millis(200));
    conn.write_all(tail).expect("send second half");
    let payload = protocol::read_frame(&mut conn, DEFAULT_MAX_FRAME)
        .expect("a typed reply")
        .expect("a frame, not EOF");
    let (_, resp) = protocol::decode_response(&payload);
    let Ok(Response::Error { code, message }) = resp else { panic!("expected an error frame") };
    assert!(
        matches!(ApiError::from_wire(code, message), ApiError::DeadlineExceeded(_)),
        "admission check catches trickled-in frames"
    );
    // The connection survived both refusals; Stats shows the counter.
    match raw_call(&mut conn, 5, 0, &Request::Stats) {
        Response::StatsOk(stats) => {
            assert!(stats.deadlines_exceeded >= 2, "both checks counted: {stats:?}")
        }
        other => panic!("expected StatsOk, got {other:?}"),
    }
    handle.shutdown();
}

/// An idle connection past `idle_timeout` is reaped — closed by the
/// server — and the reap is counted in the wire stats.
#[test]
fn idle_connections_are_reaped_and_counted() {
    let path = sock_path("reap");
    let options = ServerOptions {
        tick: Duration::from_millis(10),
        idle_timeout: Duration::from_millis(100),
        ..ServerOptions::default()
    };
    let handle = Server::with_options(service(), options).serve_unix(&path).expect("server binds");

    let mut session = Client::connect_unix(&path).expect("client connects");
    std::thread::sleep(Duration::from_millis(400));
    // The server reaped the idle connection; the next call fails.
    session.refresh().expect_err("the reaped connection is dead");

    let mut fresh = Client::connect_unix(&path).expect("fresh client connects");
    let stats = fresh.stats().expect("stats run");
    assert!(stats.connections_reaped >= 1, "the reap is counted: {stats:?}");
    fresh.close().expect("clean close");
    handle.shutdown();
}
