//! End-to-end serving smoke tests over a unix-domain socket: a mixed
//! 32-client workload with group-committed writes, the
//! panic-to-typed-error-frame path, and admission control at the
//! connection cap.

use graphiti_common::{ApiError, Value};
use graphiti_engine::BatchQuery;
use graphiti_server::{Client, Server, ServerOptions};
use graphiti_store::{Delta, Graphiti, Session};
use graphiti_testkit::fixtures;
use std::path::PathBuf;

/// A short unix socket path (the 108-byte sockaddr limit rules out
/// deep target dirs).
fn sock_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("graphiti-{tag}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn service() -> Graphiti {
    Graphiti::builder(fixtures::emp::schema())
        .group_commit_default()
        .open()
        .expect("in-memory service opens")
}

#[test]
fn mixed_32_client_workload_over_unix_socket_with_clean_shutdown() {
    const CLIENTS: u64 = 32;
    const COMMITS_PER_CLIENT: u64 = 4;
    let path = sock_path("smoke");
    let service = service();
    let handle = Server::new(service.clone()).serve_unix(&path).expect("server binds");

    let mut threads = Vec::new();
    for c in 0..CLIENTS {
        let path = path.clone();
        threads.push(std::thread::spawn(move || {
            let mut session = Client::connect_unix(&path).expect("client connects");
            let opened_at = session.generation();
            for i in 0..COMMITS_PER_CLIENT {
                let mut delta = Delta::new();
                let id = (c * COMMITS_PER_CLIENT + i) as i64;
                delta.add_node(
                    "EMP",
                    [("id", Value::Int(id)), ("ename", Value::str(format!("w{id}")))],
                );
                let ack = session.commit(delta).expect("disjoint ids never reject");
                // Commits re-pin the session at (or past) the commit's
                // publication: read-your-writes.
                assert!(session.generation() >= ack.published_generation);
                assert!(ack.published_generation >= ack.generation);
            }
            // The pinned snapshot serves queries and batches mid-write.
            let rows = session
                .query(&BatchQuery::cypher("MATCH (n:EMP) RETURN n.id AS id"))
                .expect("query runs");
            assert!(rows.rows.len() as u64 >= COMMITS_PER_CLIENT);
            let report = session
                .batch(&[
                    BatchQuery::sql("SELECT Count(*) AS c FROM EMP AS e"),
                    BatchQuery::cypher("MATCH (n:EMP) RETURN n.ename AS name"),
                ])
                .expect("batch runs");
            assert_eq!(report.outcomes.len(), 2);
            for outcome in &report.outcomes {
                outcome.result.as_ref().expect("batch outcomes succeed");
            }
            let g = session.refresh().expect("refresh runs");
            assert!(g >= opened_at);
            let stats = session.stats().expect("stats run");
            assert!(stats.generation >= g);
            session.close().expect("clean close");
        }));
    }
    for t in threads {
        t.join().expect("client threads never panic");
    }

    let stats = service.service_stats();
    assert_eq!(stats.commits, CLIENTS * COMMITS_PER_CLIENT);
    assert_eq!(stats.rejected_commits, 0);
    assert_eq!(stats.live_nodes, CLIENTS * COMMITS_PER_CLIENT);
    assert_eq!(stats.group_members, CLIENTS * COMMITS_PER_CLIENT);
    assert!(stats.groups_formed <= stats.group_members);
    assert!(!stats.fenced);

    handle.shutdown();
    assert!(!path.exists(), "shutdown removes the socket file");
}

#[test]
fn tcp_round_trip_commit_query_and_clean_shutdown() {
    let service = service();
    let handle = Server::new(service.clone()).serve_tcp("127.0.0.1:0").expect("server binds");
    let addr = handle.tcp_addr().expect("tcp listener has an address");

    let mut session = Client::connect_tcp(addr).expect("client connects over tcp");
    let mut delta = Delta::new();
    delta.add_node("EMP", [("id", Value::Int(1)), ("ename", Value::str("Ada"))]);
    let ack = session.commit(delta).expect("commit lands");
    assert!(session.generation() >= ack.published_generation);
    let rows = session
        .query(&BatchQuery::cypher("MATCH (n:EMP) RETURN n.ename AS name"))
        .expect("query runs");
    assert_eq!(rows.rows.len(), 1);
    session.close().expect("clean close");

    assert_eq!(service.service_stats().commits, 1);
    handle.shutdown();
}

#[test]
fn panicking_handler_sends_typed_error_frame_and_closes_session() {
    let poison = "MATCH (boom:EMP) RETURN boom.id AS id";
    let path = sock_path("poison");
    let handle = Server::with_options(
        service(),
        ServerOptions { poison_query: Some(poison.into()), ..ServerOptions::default() },
    )
    .serve_unix(&path)
    .expect("server binds");

    let mut session = Client::connect_unix(&path).expect("client connects");
    // The poisoned query panics inside the handler; the client must get
    // a typed error frame — not a hang, not a dead socket.
    let err = session.query(&BatchQuery::cypher(poison)).expect_err("poisoned query fails");
    let ApiError::Internal(m) = &err else { panic!("expected Internal, got {err}") };
    assert!(m.contains("panicked"), "message names the panic: {m}");
    // The session is closed on both sides; further use is refused
    // locally without touching the dead connection.
    let err = session.refresh().expect_err("session is closed");
    assert!(matches!(err, ApiError::SessionClosed(_)), "{err}");

    // One connection's panic poisons nothing else.
    let mut fresh = Client::connect_unix(&path).expect("fresh client connects");
    fresh
        .query(&BatchQuery::cypher("MATCH (n:EMP) RETURN n.id AS id"))
        .expect("the server still serves");
    fresh.close().expect("clean close");

    handle.shutdown();
}

#[test]
fn connection_cap_backpressures_at_accept() {
    let path = sock_path("cap");
    let handle = Server::with_options(
        service(),
        ServerOptions { max_connections: 1, ..ServerOptions::default() },
    )
    .serve_unix(&path)
    .expect("server binds");

    let mut first = Client::connect_unix(&path).expect("first client connects");
    let err = Client::connect_unix(&path).expect_err("second client is refused");
    assert!(err.is_backpressure(), "typed backpressure at accept: {err}");

    // Closing the first connection frees its slot.
    first.close().expect("clean close");
    drop(first);
    // The slot is released when the connection thread winds down; poll
    // briefly rather than assuming scheduling order.
    let mut admitted = false;
    for _ in 0..100 {
        match Client::connect_unix(&path) {
            Ok(mut s) => {
                s.close().expect("clean close");
                admitted = true;
                break;
            }
            Err(e) if e.is_backpressure() => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => panic!("unexpected connect failure: {e}"),
        }
    }
    assert!(admitted, "a freed slot re-admits clients");

    handle.shutdown();
}
