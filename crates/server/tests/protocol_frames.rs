//! Protocol robustness proptests: random payloads round-trip, and no
//! input — truncated, oversized, bit-flipped, or pure garbage — ever
//! panics the decoder or a live server.  A malformed frame gets a typed
//! error *reply*, not a dropped connection with no explanation.

use graphiti_common::{ApiError, Value};
use graphiti_engine::{BatchQuery, SqlTarget};
use graphiti_server::protocol::{self, Request, Response, DEFAULT_MAX_FRAME, PROTOCOL_VERSION};
use graphiti_server::Server;
use graphiti_store::{Delta, Graphiti};
use graphiti_testkit::fixtures;
use proptest::prelude::*;
use std::io::Write;
use std::os::unix::net::UnixStream;

/// Arbitrary strings over the full Latin-1 block — embedded NULs,
/// control characters, and multi-byte UTF-8 all included.
fn arb_string() -> impl Strategy<Value = String> {
    collection::vec(any::<u8>(), 0..12)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<i64>().prop_map(|i| Value::Float(i as f64 / 256.0)),
        arb_string().prop_map(Value::str),
    ]
}

fn arb_query() -> impl Strategy<Value = BatchQuery> {
    prop_oneof![
        arb_string().prop_map(BatchQuery::cypher),
        arb_string().prop_map(BatchQuery::sql),
        (arb_string(), arb_string())
            .prop_map(|(t, q)| BatchQuery::Sql { text: q, target: SqlTarget::Named(t) }),
    ]
}

fn arb_delta() -> impl Strategy<Value = Delta> {
    collection::vec((arb_string(), collection::vec((arb_string(), arb_value()), 0..4)), 0..4)
        .prop_map(|nodes| {
            let mut delta = Delta::new();
            for (label, props) in nodes {
                delta.add_node(label, props);
            }
            delta
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        any::<u32>().prop_map(|version| Request::Hello { version }),
        Just(Request::OpenSession),
        arb_query().prop_map(Request::Query),
        collection::vec(arb_query(), 0..4).prop_map(Request::Batch),
        (arb_delta(), any::<u64>(), any::<u64>()).prop_map(|(delta, hi, lo)| {
            Request::Commit { delta, token: ((hi as u128) << 64) | lo as u128 }
        }),
        Just(Request::Refresh),
        Just(Request::Stats),
        Just(Request::Checkpoint),
        Just(Request::Close),
    ]
}

proptest! {
    /// Any request round-trips bit-exactly through encode/decode.
    #[test]
    fn requests_round_trip(id in any::<u64>(), deadline_ms in any::<u32>(), req in arb_request()) {
        let payload = protocol::encode_request(id, deadline_ms, &req);
        let (echo, echo_deadline, got) = protocol::decode_request(&payload);
        prop_assert_eq!(echo, id);
        prop_assert_eq!(echo_deadline, deadline_ms);
        let got = got.unwrap();
        prop_assert_eq!(format!("{got:?}"), format!("{req:?}"));
    }

    /// Garbage payloads decode to typed errors — never panics (the
    /// decoders are total functions over arbitrary bytes).
    #[test]
    fn garbage_payloads_never_panic(payload in collection::vec(any::<u8>(), 0..256)) {
        let _ = protocol::decode_request(&payload);
        let _ = protocol::decode_response(&payload);
    }

    /// Truncating or bit-flipping a framed request never panics the
    /// frame reader: every outcome is a clean EOF, a typed error, or
    /// the untouched full decode.
    #[test]
    fn torn_and_flipped_frames_are_typed(
        id in any::<u64>(),
        req in arb_request(),
        cut_at in any::<usize>(),
        flip_at in any::<usize>(),
    ) {
        let framed = protocol::frame(&protocol::encode_request(id, 0, &req));
        let cut = cut_at % (framed.len() + 1);
        match protocol::read_frame(&mut &framed[..cut], DEFAULT_MAX_FRAME) {
            Ok(None) => prop_assert_eq!(cut, 0, "only the empty prefix is a clean EOF"),
            Ok(Some(payload)) => {
                prop_assert_eq!(cut, framed.len());
                prop_assert!(protocol::decode_request(&payload).2.is_ok());
            }
            Err(ApiError::Protocol(_)) | Err(ApiError::Io(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
        let mut flipped = framed.clone();
        let at = flip_at % flipped.len();
        flipped[at] ^= 0x40;
        match protocol::read_frame(&mut flipped.as_slice(), DEFAULT_MAX_FRAME) {
            // A flip in the length header lands on truncation, the
            // size cap, or (vanishingly) a CRC collision; a payload
            // flip must fail the checksum — CRC-32 catches every
            // single-bit error.
            Ok(Some(_)) => prop_assert!(at < 4, "flips past the length header cannot decode"),
            Ok(None) => prop_assert!(false, "a flipped frame is not a clean EOF"),
            Err(ApiError::Protocol(_)) | Err(ApiError::Io(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }
}

/// A live server answers a malformed-but-framed payload with a typed
/// error reply before closing — the client is never left staring at a
/// silently dropped connection.
#[test]
fn live_server_replies_typed_error_to_malformed_frames() {
    let path = std::env::temp_dir().join(format!("graphiti-frames-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let service =
        Graphiti::builder(fixtures::emp::schema()).open().expect("in-memory service opens");
    let handle = Server::new(service).serve_unix(&path).expect("server binds");

    // Correctly framed garbage: passes the CRC, fails request decode.
    let mut conn = UnixStream::connect(&path).expect("connects");
    protocol::write_frame(&mut conn, &[0x7F; 24]).expect("send");
    let payload = protocol::read_frame(&mut conn, DEFAULT_MAX_FRAME)
        .expect("a typed reply, not a dropped connection")
        .expect("a frame, not EOF");
    let (_, resp) = protocol::decode_response(&payload);
    let Ok(Response::Error { code, message }) = resp else { panic!("expected an error frame") };
    assert!(
        matches!(ApiError::from_wire(code, message), ApiError::Protocol(_)),
        "malformed payloads are protocol errors"
    );
    // ... and the stream is closed past the reply.
    assert!(protocol::read_frame(&mut conn, DEFAULT_MAX_FRAME).expect("clean EOF").is_none());

    // A torn frame (header promises more than arrives) is answered
    // too, once the disconnect is observed.
    let mut conn = UnixStream::connect(&path).expect("connects");
    let whole = protocol::frame(&protocol::encode_request(
        1,
        0,
        &Request::Hello { version: PROTOCOL_VERSION },
    ));
    conn.write_all(&whole[..whole.len() - 3]).expect("send prefix");
    conn.shutdown(std::net::Shutdown::Write).expect("half-close");
    let payload = protocol::read_frame(&mut conn, DEFAULT_MAX_FRAME)
        .expect("a typed reply, not a dropped connection")
        .expect("a frame, not EOF");
    let (_, resp) = protocol::decode_response(&payload);
    let Ok(Response::Error { code, message }) = resp else { panic!("expected an error frame") };
    assert!(matches!(ApiError::from_wire(code, message), ApiError::Protocol(_)));

    handle.shutdown();
}
