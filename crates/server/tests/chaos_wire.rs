//! Wire-level chaos: the `FaultVfs` sweep philosophy lifted to the
//! socket layer.
//!
//! A [`FaultLink`] proxy sits between a retrying, token-carrying
//! client and a live server, counting transfer operations.  Each case
//! draws a random mutation script, probes it once fault-free to learn
//! its op count, then **sweeps**: re-runs the script on a fresh
//! server with a disconnect (and, on a subset of indexes, a stall or a
//! torn write) injected at the k-th transfer op, for every k.  The
//! invariants, regardless of where the fault lands:
//!
//! * **no panic, no hang** — every client call returns, success or
//!   typed error, within its deadline discipline;
//! * **exactly-once commits** — the retried history commits each
//!   logical delta exactly once (the store's commit counter equals the
//!   script's commit count; an ambiguous retry lands as an idempotent
//!   replay, never a double-apply);
//! * **store ≡ oracle** — the final node set equals the in-memory
//!   oracle, checked through a fresh direct (unproxied) session.
//!
//! The per-push CI `chaos-wire` job runs a modest case count; the
//! nightly leg raises it via `PROPTEST_CASES` (honored below).

use graphiti_common::Value;
use graphiti_engine::BatchQuery;
use graphiti_server::{
    Client, ClientOptions, RetryPolicy, Server, ServerHandle, ServerOptions, WireSession,
};
use graphiti_store::{Delta, Graphiti, Session};
use graphiti_testkit::{fixtures, FaultLink, LinkFault};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::SocketAddr;
use std::time::Duration;

/// `PROPTEST_CASES`-honoring case count (the nightly deep leg raises
/// it; the per-push job keeps it modest).
fn cases(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default_cases)
}

fn service() -> Graphiti {
    Graphiti::builder(fixtures::emp::schema())
        .group_commit_default()
        .open()
        .expect("in-memory service opens")
}

/// Fast lifecycle ticks so faulted connections die and drain quickly.
fn fast_options() -> ServerOptions {
    ServerOptions {
        tick: Duration::from_millis(20),
        stall_timeout: Duration::from_millis(500),
        drain_deadline: Duration::from_millis(500),
        ..ServerOptions::default()
    }
}

/// A server plus a fault proxy in front of it.
struct Rig {
    service: Graphiti,
    handle: Option<ServerHandle>,
    link: FaultLink,
    direct: SocketAddr,
}

impl Rig {
    fn start() -> Rig {
        let service = service();
        let handle = Server::with_options(service.clone(), fast_options())
            .serve_tcp("127.0.0.1:0")
            .expect("server binds");
        let direct = handle.tcp_addr().expect("tcp server has an address");
        let link = FaultLink::start(direct).expect("fault proxy starts");
        Rig { service, handle: Some(handle), link, direct }
    }

    /// A retrying, deadline-carrying, token-carrying client routed
    /// through the fault proxy.
    fn resilient_client(&self) -> WireSession {
        Client::connect_tcp_with(
            self.link.addr(),
            ClientOptions {
                retry: RetryPolicy {
                    max_attempts: 8,
                    base_backoff: Duration::from_millis(5),
                    max_backoff: Duration::from_millis(40),
                },
                deadline: Some(Duration::from_secs(2)),
                tokens: true,
            },
        )
        .expect("resilient client connects through the proxy")
    }
}

impl Drop for Rig {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            handle.shutdown();
        }
    }
}

/// One random mutation script: a sequence of unique-id node commits
/// interleaved with snapshot queries.
#[derive(Debug, Clone)]
enum Op {
    Commit(i64),
    Query,
}

fn script(rng: &mut StdRng) -> Vec<Op> {
    let commits = rng.gen_range(4..9i64);
    let mut ops = Vec::new();
    for id in 0..commits {
        ops.push(Op::Commit(id));
        if rng.gen_bool(0.3) {
            ops.push(Op::Query);
        }
    }
    ops
}

/// Runs the script through the rig's proxy with a retrying client.
/// Every op must succeed: the injected fault is single-shot, so the
/// bounded retry discipline absorbs it.
fn run_script(rig: &Rig, ops: &[Op]) {
    let mut session = rig.resilient_client();
    for op in ops {
        match op {
            Op::Commit(id) => {
                let mut delta = Delta::new();
                delta.add_node(
                    "EMP",
                    [("id", Value::Int(*id)), ("ename", Value::str(format!("w{id}")))],
                );
                let ack = session.commit(delta).expect("tokened commit is exactly-once");
                assert!(ack.published_generation >= ack.generation);
            }
            Op::Query => {
                session
                    .query(&BatchQuery::cypher("MATCH (n:EMP) RETURN n.id AS id"))
                    .expect("idempotent query retries to success");
            }
        }
    }
}

/// Checks the final server state against the oracle through a fresh
/// direct (unproxied) connection, and returns the replay counter.
fn verify_against_oracle(rig: &Rig, ops: &[Op]) -> u64 {
    let expected: Vec<i64> = ops
        .iter()
        .filter_map(|op| if let Op::Commit(id) = op { Some(*id) } else { None })
        .collect();
    let mut direct = Client::connect_tcp(rig.direct).expect("direct client connects");
    let rows = direct
        .query(&BatchQuery::cypher("MATCH (n:EMP) RETURN n.id AS id"))
        .expect("verification query runs");
    let mut got: Vec<i64> = rows
        .rows
        .iter()
        .map(|row| match &row[0] {
            Value::Int(i) => *i,
            other => panic!("non-integer id {other:?}"),
        })
        .collect();
    got.sort_unstable();
    assert_eq!(got, expected, "final store state equals the oracle");
    let stats = rig.service.service_stats();
    assert_eq!(
        stats.commits,
        expected.len() as u64,
        "exactly-once: the store committed each logical delta once ({stats:?})"
    );
    assert_eq!(stats.live_nodes, expected.len() as u64);
    direct.close().expect("clean close");
    stats.idempotent_replays
}

/// PR10 tie-in: injected wire faults must leave the observability
/// surface panic-free and internally consistent.  Spans abandoned by a
/// cut connection may linger open, but accounting never goes negative:
/// ends never exceed begins, and every begin/end event is either in the
/// ring or counted by the dropped-span counter — the identity
/// `recorded + dropped == begun + ended` holds at every fault point.
fn verify_obs_consistency(rig: &Rig) {
    let obs = rig.service.obs();
    let tracer = obs.tracer();
    let begun = tracer.spans_begun();
    let ended = tracer.spans_ended();
    assert!(ended <= begun, "span ends ({ended}) must never exceed begins ({begun}) under faults");
    assert_eq!(
        tracer.events_recorded() + tracer.events_dropped(),
        begun + ended,
        "every span event is recorded or counted dropped, even mid-disconnect"
    );
    // The whole surface renders without panicking on a store that just
    // absorbed a fault, and the registry carries the trace counters.
    let rendered = obs.render_metrics();
    assert!(rendered.contains("graphiti_trace_spans_begun_total"));
    let _ = obs.render_traces_json();
    let _ = obs.render_slow_queries_json();
    // The v3 stats view reads the same cells.
    let stats = rig.service.service_stats();
    assert_eq!(stats.spans_recorded, tracer.events_recorded());
    assert_eq!(stats.spans_dropped, tracer.events_dropped());
}

/// The tentpole sweep: disconnect injected at every transfer-op index
/// of each random script (torn writes and stalls on a rotating subset),
/// asserting exactly-once commits and store ≡ oracle after every fault.
#[test]
fn fault_sweep_is_exactly_once_and_matches_oracle() {
    let scripts = cases(4);
    let mut total_replays = 0u64;
    for case in 0..scripts {
        let mut rng = StdRng::seed_from_u64(0x9A0E + case as u64);
        let ops = script(&mut rng);
        // Probe: run once fault-free to learn the op count.
        let total_ops = {
            let rig = Rig::start();
            run_script(&rig, &ops);
            total_replays += verify_against_oracle(&rig, &ops);
            rig.link.ops()
        };
        assert!(total_ops > 4, "the script moves bytes: {total_ops} ops");
        // Sweep: one fresh rig per index; every third index throws a
        // torn write instead of a clean disconnect, and two fixed
        // indexes per script exercise the stall path.
        for k in 1..=total_ops {
            let fault = if k % 7 == 3 {
                LinkFault::Stall(Duration::from_millis(120))
            } else if k % 3 == 0 {
                LinkFault::TornWrite
            } else {
                LinkFault::Disconnect
            };
            let rig = Rig::start();
            rig.link.fail_nth(k, fault);
            run_script(&rig, &ops);
            rig.link.disarm();
            total_replays += verify_against_oracle(&rig, &ops);
            verify_obs_consistency(&rig);
            assert!(
                rig.service.obs().tracer().spans_begun() > 0,
                "a version-3 client's requests trace server-side"
            );
        }
    }
    // Across a full sweep some fault necessarily lands on a commit
    // response, so the ambiguous-retry path must have replayed.
    assert!(total_replays > 0, "the sweep exercised idempotent replay");
}

/// The deterministic ambiguous-disconnect case: the fault eats exactly
/// the commit's *response*, so the commit landed but the client cannot
/// know.  The retried commit must resolve as one idempotent replay —
/// same generation, one commit in the store's history.
#[test]
fn ambiguous_disconnect_resolves_via_token_replay() {
    // Probe: learn which transfer op carries the commit response.
    let (handshake_ops, commit_response_op, probe_generation) = {
        let rig = Rig::start();
        let mut session = rig.resilient_client();
        let handshake_ops = rig.link.ops();
        let mut delta = Delta::new();
        delta.add_node("EMP", [("id", Value::Int(1)), ("ename", Value::str("Ada"))]);
        let ack = session.commit(delta).expect("probe commit lands");
        (handshake_ops, rig.link.ops(), ack.generation)
    };
    assert!(commit_response_op > handshake_ops, "the commit moved bytes");

    // Re-run with the response chunk eaten.
    let rig = Rig::start();
    rig.link.fail_nth(commit_response_op, LinkFault::Disconnect);
    let mut session = rig.resilient_client();
    let mut delta = Delta::new();
    delta.add_node("EMP", [("id", Value::Int(1)), ("ename", Value::str("Ada"))]);
    let ack = session.commit(delta).expect("ambiguous commit retries to success");
    assert_eq!(
        ack.generation, probe_generation,
        "the replay returns the original commit's generation"
    );
    assert_eq!(session.reconnects(), 1, "the client re-dialed once");

    // Exactly-once, observable both embedded and over the wire.
    let stats = rig.service.service_stats();
    assert_eq!(stats.commits, 1, "one logical commit, applied once: {stats:?}");
    assert_eq!(stats.idempotent_replays, 1, "resolved by replay: {stats:?}");
    let wire_stats = session.stats().expect("stats over the wire");
    assert_eq!(wire_stats.commits, 1);
    assert_eq!(wire_stats.idempotent_replays, 1);
}

/// Backpressure retries stay on the live connection: a clean typed
/// refusal is not a disconnect, and the in-place retry succeeds
/// without re-dialing.
#[test]
fn backpressure_retries_in_place_without_reconnecting() {
    let rig = Rig::start();
    let mut session = rig.resilient_client();
    let mut delta = Delta::new();
    delta.add_node("EMP", [("id", Value::Int(7)), ("ename", Value::str("Bea"))]);
    session.commit(delta).expect("commit lands");
    assert_eq!(session.reconnects(), 0, "no fault, no reconnect");

    // A rejected commit (duplicate key) is fatal, never retried.
    let mut dup = Delta::new();
    dup.add_node("EMP", [("id", Value::Int(7)), ("ename", Value::str("Bee"))]);
    let err = session.commit(dup).expect_err("duplicate id is rejected");
    assert!(err.is_rejected(), "typed rejection surfaces unretried: {err}");
    assert_eq!(rig.service.service_stats().commits, 1);
}
