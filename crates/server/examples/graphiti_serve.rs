//! `graphiti-serve`: host a small demo graph on a socket, so the wire
//! client — and `graphiti_top` — have a live server to talk to.
//!
//! ```text
//! cargo run -p graphiti-server --example graphiti_serve -- --unix /tmp/graphiti.sock
//! cargo run -p graphiti-server --example graphiti_serve -- --tcp 127.0.0.1:7687
//! ```
//!
//! Serves until killed.  The demo graph is a tiny EMP/DEPT instance;
//! commit and query it over the wire, then point `graphiti_top` at the
//! same address to watch the metrics move.

use graphiti_common::Value;
use graphiti_graph::{EdgeType, GraphInstance, GraphSchema, NodeType};
use graphiti_server::Server;
use graphiti_store::Graphiti;

fn demo_service() -> Graphiti {
    let schema = GraphSchema::new()
        .with_node(NodeType::new("DEPT", ["dnum", "dname"]))
        .with_node(NodeType::new("EMP", ["id", "name"]))
        .with_edge(EdgeType::new("WORK_AT", "EMP", "DEPT", ["wid"]));
    let mut g = GraphInstance::new();
    let depts: Vec<_> = (0..3)
        .map(|i| {
            g.add_node("DEPT", [("dnum", Value::Int(i)), ("dname", Value::str(format!("D{i}")))])
        })
        .collect();
    for i in 0..12 {
        let e = g.add_node("EMP", [("id", Value::Int(i)), ("name", Value::str(format!("e{i}")))]);
        g.add_edge("WORK_AT", e, depts[(i % 3) as usize], [("wid", Value::Int(i))]);
    }
    Graphiti::builder(schema)
        .bootstrap(g)
        .group_commit_default()
        .open()
        .expect("demo service opens")
}

fn main() {
    let mut args = std::env::args().skip(1);
    let (transport, addr) = match (args.next().as_deref(), args.next()) {
        (Some("--unix"), Some(path)) => ("unix", path),
        (Some("--tcp"), Some(addr)) => ("tcp", addr),
        _ => {
            eprintln!("usage: graphiti_serve (--unix <path> | --tcp <addr>)");
            std::process::exit(2);
        }
    };
    let handle = match transport {
        "unix" => {
            let _ = std::fs::remove_file(&addr);
            Server::new(demo_service()).serve_unix(&addr).expect("server binds")
        }
        _ => Server::new(demo_service()).serve_tcp(addr.as_str()).expect("server binds"),
    };
    println!("graphiti-serve: listening on {transport} {addr} (ctrl-c to stop)");
    // Serve until killed; the handle drains on drop.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
        let _ = &handle;
    }
}
