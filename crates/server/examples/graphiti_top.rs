//! `graphiti-top`: a terminal view of a live server's observability
//! surface.
//!
//! Connects over the wire protocol (version 3), issues `Introspect`
//! requests, and renders the three surfaces a running server exposes:
//!
//! * the metrics registry as Prometheus-style text (counters, gauges,
//!   and histogram quantiles — commit end-to-end latency, WAL
//!   append/fsync latency, group sizes, queue waits, per-request-kind
//!   service times);
//! * recent trace span events as JSON (request → group queue → WAL
//!   append → fsync → publish);
//! * the slow-query log as JSON (the N worst queries with their
//!   per-operator profiles).
//!
//! ```text
//! cargo run -p graphiti-server --example graphiti_top -- --unix /tmp/graphiti.sock
//! cargo run -p graphiti-server --example graphiti_top -- --tcp 127.0.0.1:7687 --watch 2
//! ```
//!
//! With `--watch <secs>` it redraws every interval until interrupted;
//! without it, it prints one snapshot and exits.

use graphiti_server::{Client, IntrospectMode, WireSession};
use std::time::Duration;

struct Args {
    tcp: Option<String>,
    unix: Option<String>,
    watch: Option<u64>,
    mode: Vec<IntrospectMode>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { tcp: None, unix: None, watch: None, mode: Vec::new() };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tcp" => args.tcp = Some(it.next().ok_or("--tcp needs an address")?),
            "--unix" => args.unix = Some(it.next().ok_or("--unix needs a path")?),
            "--watch" => {
                let secs = it.next().ok_or("--watch needs an interval in seconds")?;
                args.watch = Some(secs.parse().map_err(|_| "--watch wants a number")?);
            }
            "--metrics" => args.mode.push(IntrospectMode::Metrics),
            "--traces" => args.mode.push(IntrospectMode::Traces),
            "--slow" => args.mode.push(IntrospectMode::SlowQueries),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.tcp.is_none() && args.unix.is_none() {
        return Err("pass --tcp <addr> or --unix <path>".into());
    }
    if args.mode.is_empty() {
        args.mode =
            vec![IntrospectMode::Metrics, IntrospectMode::Traces, IntrospectMode::SlowQueries];
    }
    Ok(args)
}

fn connect(args: &Args) -> Result<WireSession, String> {
    let session = match (&args.tcp, &args.unix) {
        (Some(addr), _) => Client::connect_tcp(addr.as_str()),
        (_, Some(path)) => Client::connect_unix(path),
        _ => unreachable!("parse_args requires a transport"),
    }
    .map_err(|e| format!("connect failed: {e}"))?;
    if session.negotiated_version() < 3 {
        return Err(format!(
            "server negotiated protocol version {}, but Introspect needs 3",
            session.negotiated_version()
        ));
    }
    Ok(session)
}

fn render(session: &mut WireSession, modes: &[IntrospectMode]) -> Result<(), String> {
    for mode in modes {
        let (title, text) = match mode {
            IntrospectMode::Metrics => ("metrics", session.introspect(IntrospectMode::Metrics)),
            IntrospectMode::Traces => ("traces", session.introspect(IntrospectMode::Traces)),
            IntrospectMode::SlowQueries => {
                ("slow queries", session.introspect(IntrospectMode::SlowQueries))
            }
        };
        let text = text.map_err(|e| format!("introspect({title}) failed: {e}"))?;
        println!("==== {title} ====");
        println!("{text}");
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("graphiti-top: {msg}");
            eprintln!(
                "usage: graphiti_top (--tcp <addr> | --unix <path>) \
                 [--watch <secs>] [--metrics] [--traces] [--slow]"
            );
            std::process::exit(2);
        }
    };
    let mut session = match connect(&args) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("graphiti-top: {msg}");
            std::process::exit(1);
        }
    };
    loop {
        if let Err(msg) = render(&mut session, &args.mode) {
            eprintln!("graphiti-top: {msg}");
            std::process::exit(1);
        }
        match args.watch {
            Some(secs) => std::thread::sleep(Duration::from_secs(secs)),
            None => break,
        }
    }
}
