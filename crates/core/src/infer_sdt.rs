//! `InferSDT`: induced relational schema and standard database transformer
//! (Section 5.1, Figure 13).
//!
//! For every node type `(l, K1, ..., Kn)` the induced schema has a table
//! named `l` with attributes `K1, ..., Kn` and primary key `K1`; for every
//! edge type `(l, t_src, t_tgt, K1, ..., Km)` it has a table `l` with
//! attributes `K1, ..., Km, SRC, TGT`, primary key `K1`, and foreign keys
//! from `SRC`/`TGT` to the endpoint tables' primary keys.  The standard
//! database transformer (SDT) maps each graph element type to its table.

use graphiti_common::{Error, Ident, Result};
use graphiti_graph::GraphSchema;
use graphiti_relational::{Constraint, RelSchema, Relation};
use graphiti_transformer::{Atom, Rule, Term, Transformer};

/// Attribute name used for the source foreign key of edge tables.
pub const SRC_ATTR: &str = "SRC";
/// Attribute name used for the target foreign key of edge tables.
pub const TGT_ATTR: &str = "TGT";

/// The output of [`infer_sdt`]: the induced relational schema, the standard
/// database transformer, and the graph schema it was derived from.
#[derive(Debug, Clone)]
pub struct SdtContext {
    /// The graph schema `Ψ_G`.
    pub graph_schema: GraphSchema,
    /// The induced relational schema `Ψ'_R`.
    pub induced_schema: RelSchema,
    /// The standard database transformer `Φ_sdt`.
    pub sdt: Transformer,
}

impl SdtContext {
    /// The induced table name for a node/edge label (the label itself).
    pub fn table_of(&self, label: &str) -> Result<&Ident> {
        self.induced_schema
            .relation(label)
            .map(|r| &r.name)
            .ok_or_else(|| Error::schema(format!("label `{label}` has no induced table")))
    }

    /// The primary-key attribute (default property key) of a label.
    pub fn pk_of(&self, label: &str) -> Result<&Ident> {
        self.graph_schema
            .default_key_of(label)
            .ok_or_else(|| Error::schema(format!("unknown label `{label}`")))
    }

    /// The property keys of a label (not including `SRC`/`TGT`).
    pub fn keys_of(&self, label: &str) -> Result<&[Ident]> {
        self.graph_schema
            .keys_of(label)
            .ok_or_else(|| Error::schema(format!("unknown label `{label}`")))
    }

    /// Returns `true` if the label names an edge type.
    pub fn is_edge(&self, label: &str) -> bool {
        self.graph_schema.is_edge_label(label)
    }
}

/// Infers the induced relational schema and the standard database
/// transformer for a graph schema (the `InferSDT` procedure of Algorithm 1).
pub fn infer_sdt(graph_schema: &GraphSchema) -> Result<SdtContext> {
    graph_schema.validate()?;
    let mut schema = RelSchema::new();
    let mut sdt = Transformer::new();

    // Node rule.
    for node in &graph_schema.node_types {
        let table = Relation::new(node.label.clone(), node.keys.clone());
        schema = schema
            .with_relation(table)
            .with_constraint(Constraint::pk(node.label.clone(), node.default_key().clone()));
        let vars: Vec<Term> = node.keys.iter().map(|k| Term::Var(k.clone())).collect();
        sdt = sdt.with_rule(Rule::new(
            vec![Atom::new(node.label.clone(), vars.clone())],
            Atom::new(node.label.clone(), vars),
        ));
    }

    // Edge rule.
    for edge in &graph_schema.edge_types {
        let mut attrs: Vec<Ident> = edge.keys.clone();
        attrs.push(Ident::new(SRC_ATTR));
        attrs.push(Ident::new(TGT_ATTR));
        let table = Relation::new(edge.label.clone(), attrs);
        let src_pk = graph_schema
            .default_key_of(edge.src.as_str())
            .ok_or_else(|| Error::schema(format!("edge `{}` has unknown source type", edge.label)))?
            .clone();
        let tgt_pk = graph_schema
            .default_key_of(edge.tgt.as_str())
            .ok_or_else(|| Error::schema(format!("edge `{}` has unknown target type", edge.label)))?
            .clone();
        schema = schema
            .with_relation(table)
            .with_constraint(Constraint::pk(edge.label.clone(), edge.default_key().clone()))
            .with_constraint(Constraint::fk(edge.label.clone(), SRC_ATTR, edge.src.clone(), src_pk))
            .with_constraint(Constraint::fk(edge.label.clone(), TGT_ATTR, edge.tgt.clone(), tgt_pk))
            .with_constraint(Constraint::not_null(edge.label.clone(), SRC_ATTR))
            .with_constraint(Constraint::not_null(edge.label.clone(), TGT_ATTR));
        let mut vars: Vec<Term> = edge.keys.iter().map(|k| Term::Var(k.clone())).collect();
        vars.push(Term::var(format!("fk_{SRC_ATTR}")));
        vars.push(Term::var(format!("fk_{TGT_ATTR}")));
        sdt = sdt.with_rule(Rule::new(
            vec![Atom::new(edge.label.clone(), vars.clone())],
            Atom::new(edge.label.clone(), vars),
        ));
    }

    let ctx = SdtContext { graph_schema: graph_schema.clone(), induced_schema: schema, sdt };
    ctx.induced_schema.validate()?;
    Ok(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphiti_common::Value;
    use graphiti_graph::{EdgeType, GraphInstance, NodeType};
    use graphiti_transformer::apply_to_graph;

    /// The EMP/WORK_AT/DEPT schema from Figure 14a.
    fn emp_schema() -> GraphSchema {
        GraphSchema::new()
            .with_node(NodeType::new("EMP", ["id", "name"]))
            .with_node(NodeType::new("DEPT", ["dnum", "dname"]))
            .with_edge(EdgeType::new("WORK_AT", "EMP", "DEPT", ["wid"]))
    }

    #[test]
    fn example_5_1_induced_schema() {
        // Figure 14b: emp(id, name), work_at(wid, SRC, TGT), dept(dnum, dname).
        let ctx = infer_sdt(&emp_schema()).unwrap();
        let emp = ctx.induced_schema.relation("EMP").unwrap();
        assert_eq!(emp.attrs.iter().map(|a| a.as_str()).collect::<Vec<_>>(), vec!["id", "name"]);
        let work_at = ctx.induced_schema.relation("WORK_AT").unwrap();
        assert_eq!(
            work_at.attrs.iter().map(|a| a.as_str()).collect::<Vec<_>>(),
            vec!["wid", "SRC", "TGT"]
        );
        assert_eq!(ctx.induced_schema.primary_key("WORK_AT").unwrap().as_str(), "wid");
        let fks = ctx.induced_schema.foreign_keys("WORK_AT");
        assert_eq!(fks.len(), 2);
        assert!(fks
            .iter()
            .any(|(a, r, ra)| a.as_str() == "SRC" && r.as_str() == "EMP" && ra.as_str() == "id"));
        assert!(fks.iter().any(|(a, r, ra)| a.as_str() == "TGT"
            && r.as_str() == "DEPT"
            && ra.as_str() == "dnum"));
    }

    #[test]
    fn example_5_2_standard_transformer_maps_instances() {
        // Figure 15: the SDT maps the graph instance to the induced tables.
        let ctx = infer_sdt(&emp_schema()).unwrap();
        assert_eq!(ctx.sdt.rule_count(), 3);

        let mut g = GraphInstance::new();
        let a = g.add_node("EMP", [("id", Value::Int(1)), ("name", Value::str("A"))]);
        let b = g.add_node("EMP", [("id", Value::Int(2)), ("name", Value::str("B"))]);
        let cs = g.add_node("DEPT", [("dnum", Value::Int(1)), ("dname", Value::str("CS"))]);
        let _ee = g.add_node("DEPT", [("dnum", Value::Int(2)), ("dname", Value::str("EE"))]);
        g.add_edge("WORK_AT", a, cs, [("wid", Value::Int(10))]);
        g.add_edge("WORK_AT", b, cs, [("wid", Value::Int(11))]);

        let rel = apply_to_graph(&ctx.sdt, &ctx.graph_schema, &g, &ctx.induced_schema).unwrap();
        let work_at = rel.table("WORK_AT").unwrap();
        assert_eq!(work_at.len(), 2);
        assert!(work_at.rows.contains(&vec![Value::Int(10), Value::Int(1), Value::Int(1)]));
        assert!(work_at.rows.contains(&vec![Value::Int(11), Value::Int(2), Value::Int(1)]));
        assert_eq!(rel.table("EMP").unwrap().len(), 2);
        assert_eq!(rel.table("DEPT").unwrap().len(), 2);
        // The produced instance satisfies the induced integrity constraints.
        assert!(rel.validate(&ctx.induced_schema).is_ok());
    }

    #[test]
    fn context_accessors() {
        let ctx = infer_sdt(&emp_schema()).unwrap();
        assert_eq!(ctx.table_of("WORK_AT").unwrap().as_str(), "WORK_AT");
        assert_eq!(ctx.pk_of("DEPT").unwrap().as_str(), "dnum");
        assert_eq!(ctx.keys_of("EMP").unwrap().len(), 2);
        assert!(ctx.is_edge("WORK_AT"));
        assert!(!ctx.is_edge("EMP"));
        assert!(ctx.table_of("GHOST").is_err());
    }

    #[test]
    fn invalid_graph_schema_is_rejected() {
        let bad = GraphSchema::new()
            .with_node(NodeType::new("A", ["id"]))
            .with_edge(EdgeType::new("R", "A", "MISSING", ["rid"]));
        assert!(infer_sdt(&bad).is_err());
    }
}
