//! Syntax-directed transpilation from Featherweight Cypher to Featherweight
//! SQL over the induced relational schema (Section 5.2, Figures 16-18 and
//! 21-22).
//!
//! The central invariant of the translation is the naming convention for
//! clause-level queries: the result of translating a clause is a projection
//! whose columns are named `<var>_<key>` for every variable visible after
//! the clause and every property key of its label.  Pattern-level queries
//! are raw join trees whose columns are `<alias>.<attr>` (one alias per
//! pattern variable).  This mirrors the CTE structure of Figure 7, where the
//! first `MATCH` becomes `T1` with columns `c1_CID, ..., s_SID`.
//!
//! * `Q-Ret` / `Q-Agg` / `Q-OrderBy` / `Q-Union(All)` — [`transpile_query`].
//! * `C-Match1` / `C-Match2` / `C-OptMatch` / `C-With` — clause translation.
//! * `PT-Node` / `PT-Path` — pattern translation (edge tables joined on
//!   `SRC`/`TGT` foreign keys, honouring edge direction).
//! * `E-*` / `P-*` — expression and predicate translation, including
//!   `P-Exists` which becomes a (tuple) `IN` subquery correlated on the
//!   variables shared with the enclosing clause.

use crate::infer_sdt::{SdtContext, SRC_ATTR, TGT_ATTR};
use graphiti_common::{Error, Ident, Result};
use graphiti_cypher::ast as cy;
use graphiti_sql::{ColumnRef, SelectItem, SqlExpr, SqlPred, SqlQuery};
use std::collections::HashMap;

/// Transpiles a Cypher query into a SQL query over the induced relational
/// schema (the `Transpile` step of Algorithm 1).
pub fn transpile_query(ctx: &SdtContext, query: &cy::Query) -> Result<SqlQuery> {
    let mut t = Transpiler { ctx, fresh: 0 };
    t.query(query)
}

/// Transpiles a Cypher query and renders the result as SQL text (the Fig. 7
/// style output).
pub fn transpile_to_sql_text(ctx: &SdtContext, query: &cy::Query) -> Result<String> {
    let q = transpile_query(ctx, query)?;
    Ok(graphiti_sql::query_to_string(&q))
}

/// How property accesses `var.key` are rendered in the current context.
enum RefStyle<'a> {
    /// Over a raw pattern join: `alias.key` (aliases map pattern variables to
    /// table aliases, which differ only for repeated variables).
    Pattern(&'a HashMap<String, String>),
    /// Over a projected clause query: the unqualified column `var_key`.
    Clause,
    /// Over a join of two renamed clause queries: qualified by side.
    Sided {
        /// Alias of the left (previous-clause) side.
        t1: &'a str,
        /// Variables provided by the left side.
        x1: &'a [(Ident, Ident)],
        /// Alias of the right (pattern) side.
        t2: &'a str,
    },
}

impl RefStyle<'_> {
    fn prop(&self, var: &Ident, key: &Ident) -> SqlExpr {
        match self {
            RefStyle::Pattern(aliases) => {
                let alias =
                    aliases.get(var.as_str()).cloned().unwrap_or_else(|| var.as_str().to_string());
                SqlExpr::Col(ColumnRef::qualified(alias, key.clone()))
            }
            RefStyle::Clause => SqlExpr::Col(ColumnRef::unqualified(format!("{var}_{key}"))),
            RefStyle::Sided { t1, x1, t2 } => {
                let side = if x1.iter().any(|(v, _)| v == var) { *t1 } else { *t2 };
                SqlExpr::Col(ColumnRef::qualified(side, format!("{var}_{key}")))
            }
        }
    }
}

/// The result of translating a path pattern (`PT-Node`/`PT-Path`).
struct PatternResult {
    /// Pattern variables with their labels, in first-occurrence order.
    vars: Vec<(Ident, Ident)>,
    /// Raw join tree whose columns are `alias.attr`.
    query: SqlQuery,
    /// Residual conditions: inline property constraints and primary-key
    /// equalities for repeated variables.
    conds: Vec<SqlPred>,
    /// Variable-to-alias mapping.
    aliases: HashMap<String, String>,
}

struct Transpiler<'a> {
    ctx: &'a SdtContext,
    fresh: usize,
}

impl<'a> Transpiler<'a> {
    fn fresh_alias(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}{}", self.fresh)
    }

    // ---------------------------------------------------------------- query

    fn query(&mut self, q: &cy::Query) -> Result<SqlQuery> {
        match q {
            cy::Query::Return(r) => self.return_query(r),
            cy::Query::OrderBy { input, keys } => self.order_by(input, keys),
            cy::Query::Union(a, b) => {
                Ok(SqlQuery::Union(Box::new(self.query(a)?), Box::new(self.query(b)?)))
            }
            cy::Query::UnionAll(a, b) => {
                Ok(SqlQuery::UnionAll(Box::new(self.query(a)?), Box::new(self.query(b)?)))
            }
        }
    }

    fn return_query(&mut self, r: &cy::ReturnQuery) -> Result<SqlQuery> {
        let (vars, clause_q) = self.clause(&r.clause)?;
        let mut items = Vec::with_capacity(r.items.len());
        for (expr, name) in r.items.iter().zip(r.names.iter()) {
            let translated = self.expr(expr, &RefStyle::Clause, &vars)?;
            items.push(SelectItem::aliased(translated, name.clone()));
        }
        if !r.has_agg() {
            Ok(SqlQuery::Project { input: Box::new(clause_q), items, distinct: r.distinct })
        } else {
            // Q-Agg: non-aggregate output expressions become grouping keys.
            let keys: Vec<SqlExpr> =
                items.iter().filter(|i| !i.expr.has_agg()).map(|i| i.expr.clone()).collect();
            Ok(SqlQuery::GroupBy {
                input: Box::new(clause_q),
                keys,
                items,
                having: SqlPred::true_(),
            })
        }
    }

    fn order_by(&mut self, input: &cy::Query, keys: &[cy::SortKey]) -> Result<SqlQuery> {
        let translated_input = self.query(input)?;
        // Resolve each sort key against the output column names of the
        // underlying return query.
        let ret = innermost_return(input).ok_or_else(|| {
            Error::unsupported("ORDER BY over set operations is outside the supported fragment")
        })?;
        let mut sql_keys = Vec::with_capacity(keys.len());
        for key in keys {
            let name = resolve_sort_key(ret, &key.expr)?;
            sql_keys.push((SqlExpr::Col(ColumnRef::unqualified(name)), key.ascending));
        }
        Ok(SqlQuery::OrderBy { input: Box::new(translated_input), keys: sql_keys })
    }

    // --------------------------------------------------------------- clause

    fn clause(&mut self, c: &cy::Clause) -> Result<(Vec<(Ident, Ident)>, SqlQuery)> {
        match c {
            cy::Clause::Match { prev: None, pattern, pred } => {
                // C-Match1.
                let pr = self.pattern(pattern)?;
                let style = RefStyle::Pattern(&pr.aliases);
                let filter = self.pred(pred, &style, &pr.vars)?;
                let mut all = pr.conds.clone();
                all.push(filter);
                let selected = wrap_select(pr.query.clone(), SqlPred::conjunction(all));
                let projected = self.project_pattern_vars(selected, &pr)?;
                Ok((pr.vars, projected))
            }
            cy::Clause::Match { prev: Some(prev), pattern, pred } => {
                // C-Match2.
                let (x1, q1) = self.clause(prev)?;
                let pr = self.pattern(pattern)?;
                let q2 = {
                    let selected =
                        wrap_select(pr.query.clone(), SqlPred::conjunction(pr.conds.clone()));
                    self.project_pattern_vars(selected, &pr)?
                };
                let t1 = self.fresh_alias("T");
                let t2 = self.fresh_alias("T");
                let join_pred = self.shared_var_join_pred(&t1, &x1, &t2, &pr.vars)?;
                let joined = SqlQuery::Join {
                    left: Box::new(q1.rename(t1.clone())),
                    right: Box::new(q2.rename(t2.clone())),
                    kind: graphiti_sql::JoinKind::Inner,
                    pred: join_pred,
                };
                let vars_out = merge_vars(&x1, &pr.vars);
                let projected = self.project_sided(joined, &vars_out, &t1, &x1, &t2)?;
                let filter = self.pred(pred, &RefStyle::Clause, &vars_out)?;
                Ok((vars_out, wrap_select(projected, filter)))
            }
            cy::Clause::OptMatch { prev, pattern, pred } => {
                // C-OptMatch: the predicate participates in the outer-join
                // condition so that unmatched rows survive with NULLs.
                let (x1, q1) = self.clause(prev)?;
                let pr = self.pattern(pattern)?;
                let q2 = {
                    let selected =
                        wrap_select(pr.query.clone(), SqlPred::conjunction(pr.conds.clone()));
                    self.project_pattern_vars(selected, &pr)?
                };
                let t1 = self.fresh_alias("T");
                let t2 = self.fresh_alias("T");
                let vars_out = merge_vars(&x1, &pr.vars);
                let shared = self.shared_var_join_pred(&t1, &x1, &t2, &pr.vars)?;
                let style = RefStyle::Sided { t1: &t1, x1: &x1, t2: &t2 };
                let filter = self.pred(pred, &style, &vars_out)?;
                let join_pred = SqlPred::and(shared, filter);
                let joined = SqlQuery::Join {
                    left: Box::new(q1.rename(t1.clone())),
                    right: Box::new(q2.rename(t2.clone())),
                    kind: graphiti_sql::JoinKind::Left,
                    pred: join_pred,
                };
                let projected = self.project_sided(joined, &vars_out, &t1, &x1, &t2)?;
                Ok((vars_out, projected))
            }
            cy::Clause::With { prev, old, new } => {
                // C-With: projection plus renaming of the kept variables.
                let (x1, q1) = self.clause(prev)?;
                let mut items = Vec::new();
                let mut vars_out = Vec::new();
                for (o, n) in old.iter().zip(new.iter()) {
                    let label =
                        x1.iter().find(|(v, _)| v == o).map(|(_, l)| l.clone()).ok_or_else(
                            || Error::eval(format!("WITH references unbound variable `{o}`")),
                        )?;
                    for key in self.ctx.keys_of(label.as_str())? {
                        items.push(SelectItem::aliased(
                            SqlExpr::Col(ColumnRef::unqualified(format!("{o}_{key}"))),
                            format!("{n}_{key}"),
                        ));
                    }
                    vars_out.push((n.clone(), label));
                }
                Ok((vars_out, q1.project(items)))
            }
        }
    }

    /// The join predicate equating the primary keys of variables shared by
    /// two clause-level queries (the `φ''` of C-Match2 / C-OptMatch).
    fn shared_var_join_pred(
        &self,
        t1: &str,
        x1: &[(Ident, Ident)],
        t2: &str,
        x2: &[(Ident, Ident)],
    ) -> Result<SqlPred> {
        let mut conds = Vec::new();
        for (v, l) in x2 {
            if x1.iter().any(|(v1, _)| v1 == v) {
                let pk = self.ctx.pk_of(l.as_str())?;
                conds.push(SqlPred::col_eq(
                    SqlExpr::Col(ColumnRef::qualified(t1, format!("{v}_{pk}"))),
                    SqlExpr::Col(ColumnRef::qualified(t2, format!("{v}_{pk}"))),
                ));
            }
        }
        Ok(SqlPred::conjunction(conds))
    }

    /// Projects a raw pattern query to the canonical `<var>_<key>` columns.
    fn project_pattern_vars(&self, input: SqlQuery, pr: &PatternResult) -> Result<SqlQuery> {
        let mut items = Vec::new();
        for (v, l) in &pr.vars {
            let alias = pr.aliases.get(v.as_str()).cloned().unwrap_or_else(|| v.to_string());
            for key in self.ctx.keys_of(l.as_str())? {
                items.push(SelectItem::aliased(
                    SqlExpr::Col(ColumnRef::qualified(alias.clone(), key.clone())),
                    format!("{v}_{key}"),
                ));
            }
        }
        Ok(input.project(items))
    }

    /// Projects a joined pair of clause queries back to `<var>_<key>`
    /// columns, taking each variable from the side that provides it.
    fn project_sided(
        &self,
        input: SqlQuery,
        vars: &[(Ident, Ident)],
        t1: &str,
        x1: &[(Ident, Ident)],
        t2: &str,
    ) -> Result<SqlQuery> {
        let mut items = Vec::new();
        for (v, l) in vars {
            let side = if x1.iter().any(|(v1, _)| v1 == v) { t1 } else { t2 };
            for key in self.ctx.keys_of(l.as_str())? {
                items.push(SelectItem::aliased(
                    SqlExpr::Col(ColumnRef::qualified(side, format!("{v}_{key}"))),
                    format!("{v}_{key}"),
                ));
            }
        }
        Ok(input.project(items))
    }

    // -------------------------------------------------------------- pattern

    fn pattern(&mut self, pp: &cy::PathPattern) -> Result<PatternResult> {
        let mut vars: Vec<(Ident, Ident)> = Vec::new();
        let mut aliases: HashMap<String, String> = HashMap::new();
        let mut conds: Vec<SqlPred> = Vec::new();

        let start_alias = self.bind_pattern_var(
            &pp.start.var,
            &pp.start.label,
            &mut vars,
            &mut aliases,
            &mut conds,
        )?;
        for (key, value) in &pp.start.props {
            conds.push(SqlPred::col_eq(
                SqlExpr::Col(ColumnRef::qualified(start_alias.clone(), key.clone())),
                SqlExpr::Value(value.clone()),
            ));
        }
        let mut query = SqlQuery::table(self.ctx.table_of(pp.start.label.as_str())?.clone())
            .rename(&*start_alias);

        let mut prev_alias = start_alias;
        let mut prev_pk = self.ctx.pk_of(pp.start.label.as_str())?.clone();
        let mut prev_label = pp.start.label.clone();

        for (edge_pat, node_pat) in &pp.steps {
            if !self.ctx.is_edge(edge_pat.label.as_str()) {
                return Err(Error::schema(format!("`{}` is not an edge label", edge_pat.label)));
            }
            let edge_alias = self.bind_pattern_var(
                &edge_pat.var,
                &edge_pat.label,
                &mut vars,
                &mut aliases,
                &mut conds,
            )?;
            for (key, value) in &edge_pat.props {
                conds.push(SqlPred::col_eq(
                    SqlExpr::Col(ColumnRef::qualified(edge_alias.clone(), key.clone())),
                    SqlExpr::Value(value.clone()),
                ));
            }
            let node_alias = self.bind_pattern_var(
                &node_pat.var,
                &node_pat.label,
                &mut vars,
                &mut aliases,
                &mut conds,
            )?;
            for (key, value) in &node_pat.props {
                conds.push(SqlPred::col_eq(
                    SqlExpr::Col(ColumnRef::qualified(node_alias.clone(), key.clone())),
                    SqlExpr::Value(value.clone()),
                ));
            }
            let node_pk = self.ctx.pk_of(node_pat.label.as_str())?.clone();

            let prev_ref = SqlExpr::Col(ColumnRef::qualified(prev_alias.clone(), prev_pk.clone()));
            let next_ref = SqlExpr::Col(ColumnRef::qualified(node_alias.clone(), node_pk.clone()));
            let src_ref = SqlExpr::Col(ColumnRef::qualified(edge_alias.clone(), SRC_ATTR));
            let tgt_ref = SqlExpr::Col(ColumnRef::qualified(edge_alias.clone(), TGT_ATTR));

            // The edge type fixes which endpoint labels are legal; an
            // orientation is admissible only when the labels line up (Cypher
            // matches by node identity, so a value collision between keys of
            // different types must not produce a spurious SQL match).
            let edge_ty =
                self.ctx.graph_schema.edge_type(edge_pat.label.as_str()).ok_or_else(|| {
                    Error::schema(format!("unknown edge label `{}`", edge_pat.label))
                })?;
            let forward_ok = edge_ty.src == prev_label && edge_ty.tgt == node_pat.label;
            let backward_ok = edge_ty.src == node_pat.label && edge_ty.tgt == prev_label;

            // (edge-side condition, node-side condition)
            let (edge_join_pred, node_join_pred) = match edge_pat.dir {
                cy::Direction::Right => {
                    if forward_ok {
                        (
                            SqlPred::col_eq(src_ref.clone(), prev_ref.clone()),
                            SqlPred::col_eq(tgt_ref.clone(), next_ref.clone()),
                        )
                    } else {
                        (SqlPred::Bool(false), SqlPred::true_())
                    }
                }
                cy::Direction::Left => {
                    if backward_ok {
                        (
                            SqlPred::col_eq(tgt_ref.clone(), prev_ref.clone()),
                            SqlPred::col_eq(src_ref.clone(), next_ref.clone()),
                        )
                    } else {
                        (SqlPred::Bool(false), SqlPred::true_())
                    }
                }
                cy::Direction::Undirected => match (forward_ok, backward_ok) {
                    (true, false) => (
                        SqlPred::col_eq(src_ref.clone(), prev_ref.clone()),
                        SqlPred::col_eq(tgt_ref.clone(), next_ref.clone()),
                    ),
                    (false, true) => (
                        SqlPred::col_eq(tgt_ref.clone(), prev_ref.clone()),
                        SqlPred::col_eq(src_ref.clone(), next_ref.clone()),
                    ),
                    (true, true) => (
                        SqlPred::true_(),
                        SqlPred::or(
                            SqlPred::and(
                                SqlPred::col_eq(src_ref.clone(), prev_ref.clone()),
                                SqlPred::col_eq(tgt_ref.clone(), next_ref.clone()),
                            ),
                            SqlPred::and(
                                SqlPred::col_eq(tgt_ref.clone(), prev_ref.clone()),
                                SqlPred::col_eq(src_ref.clone(), next_ref.clone()),
                            ),
                        ),
                    ),
                    (false, false) => (SqlPred::Bool(false), SqlPred::true_()),
                },
            };
            query = SqlQuery::Join {
                left: Box::new(query),
                right: Box::new(
                    SqlQuery::table(self.ctx.table_of(edge_pat.label.as_str())?.clone())
                        .rename(&*edge_alias),
                ),
                kind: graphiti_sql::JoinKind::Inner,
                pred: edge_join_pred,
            };
            query = SqlQuery::Join {
                left: Box::new(query),
                right: Box::new(
                    SqlQuery::table(self.ctx.table_of(node_pat.label.as_str())?.clone())
                        .rename(&*node_alias),
                ),
                kind: graphiti_sql::JoinKind::Inner,
                pred: node_join_pred,
            };
            prev_alias = node_alias;
            prev_pk = node_pk;
            prev_label = node_pat.label.clone();
        }
        Ok(PatternResult { vars, query, conds, aliases })
    }

    /// Registers a pattern variable, allocating a distinct alias (and a
    /// primary-key equality condition) for repeated occurrences.
    fn bind_pattern_var(
        &mut self,
        var: &Ident,
        label: &Ident,
        vars: &mut Vec<(Ident, Ident)>,
        aliases: &mut HashMap<String, String>,
        conds: &mut Vec<SqlPred>,
    ) -> Result<String> {
        match aliases.get(var.as_str()) {
            None => {
                aliases.insert(var.as_str().to_string(), var.as_str().to_string());
                vars.push((var.clone(), label.clone()));
                Ok(var.as_str().to_string())
            }
            Some(first_alias) => {
                let first_alias = first_alias.clone();
                let declared_label = vars
                    .iter()
                    .find(|(v, _)| v == var)
                    .map(|(_, l)| l.clone())
                    .unwrap_or_else(|| label.clone());
                if declared_label != *label {
                    return Err(Error::schema(format!(
                        "variable `{var}` is used with conflicting labels `{declared_label}` and `{label}`"
                    )));
                }
                let dup_alias = self.fresh_alias(&format!("{var}__dup"));
                let pk = self.ctx.pk_of(label.as_str())?;
                conds.push(SqlPred::col_eq(
                    SqlExpr::Col(ColumnRef::qualified(first_alias, pk.clone())),
                    SqlExpr::Col(ColumnRef::qualified(dup_alias.clone(), pk.clone())),
                ));
                Ok(dup_alias)
            }
        }
    }

    // ---------------------------------------------- expressions & predicates

    fn expr(
        &mut self,
        e: &cy::Expr,
        style: &RefStyle<'_>,
        scope: &[(Ident, Ident)],
    ) -> Result<SqlExpr> {
        match e {
            cy::Expr::Prop(var, key) => Ok(style.prop(var, key)),
            cy::Expr::Var(var) => {
                let label = scope
                    .iter()
                    .find(|(v, _)| v == var)
                    .map(|(_, l)| l.clone())
                    .ok_or_else(|| Error::eval(format!("unbound variable `{var}`")))?;
                let pk = self.ctx.pk_of(label.as_str())?;
                Ok(style.prop(var, pk))
            }
            cy::Expr::Value(v) => Ok(SqlExpr::Value(v.clone())),
            cy::Expr::Cast(p) => Ok(SqlExpr::Cast(Box::new(self.pred(p, style, scope)?))),
            cy::Expr::Agg(kind, inner, distinct) => {
                let translated = if matches!(inner.as_ref(), cy::Expr::Star) {
                    SqlExpr::Star
                } else {
                    self.expr(inner, style, scope)?
                };
                Ok(SqlExpr::Agg(*kind, Box::new(translated), *distinct))
            }
            cy::Expr::Arith(a, op, b) => Ok(SqlExpr::Arith(
                Box::new(self.expr(a, style, scope)?),
                *op,
                Box::new(self.expr(b, style, scope)?),
            )),
            cy::Expr::Star => Ok(SqlExpr::Star),
        }
    }

    fn pred(
        &mut self,
        p: &cy::Pred,
        style: &RefStyle<'_>,
        scope: &[(Ident, Ident)],
    ) -> Result<SqlPred> {
        match p {
            cy::Pred::True => Ok(SqlPred::Bool(true)),
            cy::Pred::False => Ok(SqlPred::Bool(false)),
            cy::Pred::Cmp(a, op, b) => Ok(SqlPred::Cmp(
                Box::new(self.expr(a, style, scope)?),
                *op,
                Box::new(self.expr(b, style, scope)?),
            )),
            cy::Pred::IsNull(e) => Ok(SqlPred::IsNull(Box::new(self.expr(e, style, scope)?))),
            cy::Pred::In(e, vs) => {
                Ok(SqlPred::InList(Box::new(self.expr(e, style, scope)?), vs.clone()))
            }
            cy::Pred::Exists(pp) => self.exists(pp, style, scope),
            cy::Pred::And(a, b) => Ok(SqlPred::And(
                Box::new(self.pred(a, style, scope)?),
                Box::new(self.pred(b, style, scope)?),
            )),
            cy::Pred::Or(a, b) => Ok(SqlPred::Or(
                Box::new(self.pred(a, style, scope)?),
                Box::new(self.pred(b, style, scope)?),
            )),
            cy::Pred::Not(inner) => Ok(SqlPred::Not(Box::new(self.pred(inner, style, scope)?))),
        }
    }

    /// `P-Exists`: the pattern becomes a subquery projecting the primary keys
    /// of the variables shared with the enclosing scope, and the predicate
    /// becomes a (tuple) `IN` check correlating those keys.
    fn exists(
        &mut self,
        pp: &cy::PathPattern,
        style: &RefStyle<'_>,
        scope: &[(Ident, Ident)],
    ) -> Result<SqlPred> {
        let pr = self.pattern(pp)?;
        let selected = wrap_select(pr.query.clone(), SqlPred::conjunction(pr.conds.clone()));
        let shared: Vec<(Ident, Ident)> =
            pr.vars.iter().filter(|(v, _)| scope.iter().any(|(sv, _)| sv == v)).cloned().collect();
        if shared.is_empty() {
            // Uncorrelated existence check.
            let (v, l) = &pr.vars[0];
            let alias = pr.aliases.get(v.as_str()).cloned().unwrap_or_else(|| v.to_string());
            let pk = self.ctx.pk_of(l.as_str())?;
            let sub = selected.project(vec![SelectItem::expr(SqlExpr::Col(ColumnRef::qualified(
                alias,
                pk.clone(),
            )))]);
            return Ok(SqlPred::Exists(Box::new(sub)));
        }
        let mut sub_items = Vec::new();
        let mut lhs = Vec::new();
        for (v, l) in &shared {
            let pk = self.ctx.pk_of(l.as_str())?;
            let alias = pr.aliases.get(v.as_str()).cloned().unwrap_or_else(|| v.to_string());
            sub_items.push(SelectItem::aliased(
                SqlExpr::Col(ColumnRef::qualified(alias, pk.clone())),
                format!("{v}_{pk}"),
            ));
            lhs.push(style.prop(v, pk));
        }
        let sub = selected.project(sub_items);
        Ok(SqlPred::InQuery(lhs, Box::new(sub)))
    }
}

fn wrap_select(input: SqlQuery, pred: SqlPred) -> SqlQuery {
    if matches!(pred, SqlPred::Bool(true)) {
        input
    } else {
        SqlQuery::Select { input: Box::new(input), pred }
    }
}

fn merge_vars(x1: &[(Ident, Ident)], x2: &[(Ident, Ident)]) -> Vec<(Ident, Ident)> {
    let mut out = x1.to_vec();
    for (v, l) in x2 {
        if !out.iter().any(|(v1, _)| v1 == v) {
            out.push((v.clone(), l.clone()));
        }
    }
    out
}

fn innermost_return(q: &cy::Query) -> Option<&cy::ReturnQuery> {
    match q {
        cy::Query::Return(r) => Some(r),
        cy::Query::OrderBy { input, .. } => innermost_return(input),
        cy::Query::Union(..) | cy::Query::UnionAll(..) => None,
    }
}

/// Maps an `ORDER BY` key expression to an output column name of the return
/// query.
fn resolve_sort_key(ret: &cy::ReturnQuery, key: &cy::Expr) -> Result<String> {
    // Exact match against a returned expression.
    if let Some(idx) = ret.items.iter().position(|e| e == key) {
        return Ok(ret.names[idx].to_string());
    }
    // Match by output name.
    let rendered = graphiti_cypher::pretty::expr_to_string(key);
    if let Some(idx) = ret.names.iter().position(|n| n.as_str() == rendered) {
        return Ok(ret.names[idx].to_string());
    }
    if let cy::Expr::Var(v) = key {
        if let Some(idx) = ret.names.iter().position(|n| n == v) {
            return Ok(ret.names[idx].to_string());
        }
    }
    Err(Error::unsupported(format!("ORDER BY key `{rendered}` does not match any returned column")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer_sdt::infer_sdt;
    use graphiti_common::Value;
    use graphiti_cypher::{eval_query as eval_cypher, parse_query as parse_cypher};
    use graphiti_graph::{EdgeType, GraphInstance, GraphSchema, NodeType};
    use graphiti_sql::eval_query as eval_sql;
    use graphiti_transformer::apply_to_graph;

    fn emp_schema() -> GraphSchema {
        GraphSchema::new()
            .with_node(NodeType::new("EMP", ["id", "name"]))
            .with_node(NodeType::new("DEPT", ["dnum", "dname"]))
            .with_edge(EdgeType::new("WORK_AT", "EMP", "DEPT", ["wid"]))
    }

    fn emp_graph() -> GraphInstance {
        let mut g = GraphInstance::new();
        let a = g.add_node("EMP", [("id", Value::Int(1)), ("name", Value::str("A"))]);
        let b = g.add_node("EMP", [("id", Value::Int(2)), ("name", Value::str("B"))]);
        let c = g.add_node("EMP", [("id", Value::Int(3)), ("name", Value::str("C"))]);
        let cs = g.add_node("DEPT", [("dnum", Value::Int(1)), ("dname", Value::str("CS"))]);
        let ee = g.add_node("DEPT", [("dnum", Value::Int(2)), ("dname", Value::str("EE"))]);
        g.add_edge("WORK_AT", a, cs, [("wid", Value::Int(10))]);
        g.add_edge("WORK_AT", b, cs, [("wid", Value::Int(11))]);
        g.add_edge("WORK_AT", c, ee, [("wid", Value::Int(12))]);
        g
    }

    /// Checks the soundness theorem (Thm. 5.7) on a concrete instance: the
    /// Cypher query on the graph and the transpiled SQL query on the
    /// SDT-image of the graph produce equivalent tables.
    fn assert_equivalent_on(schema: &GraphSchema, graph: &GraphInstance, cypher: &str) {
        let ctx = infer_sdt(schema).unwrap();
        let q = parse_cypher(cypher).unwrap();
        let cypher_result = eval_cypher(schema, graph, &q).unwrap();
        let sql = transpile_query(&ctx, &q).unwrap();
        let induced = apply_to_graph(&ctx.sdt, schema, graph, &ctx.induced_schema).unwrap();
        let sql_result = eval_sql(&induced, &sql).unwrap();
        assert!(
            cypher_result.equivalent(&sql_result),
            "not equivalent for `{cypher}`\ncypher:\n{cypher_result}\nsql:\n{sql_result}\nquery:\n{}",
            graphiti_sql::query_to_string(&sql)
        );
    }

    #[test]
    fn example_5_3_aggregation_becomes_group_by() {
        let ctx = infer_sdt(&emp_schema()).unwrap();
        let q = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname AS name, Count(n) AS num",
        )
        .unwrap();
        let sql = transpile_query(&ctx, &q).unwrap();
        match &sql {
            SqlQuery::GroupBy { keys, items, .. } => {
                assert_eq!(keys.len(), 1);
                assert_eq!(items.len(), 2);
            }
            other => panic!("expected GroupBy, got {other:?}"),
        }
    }

    #[test]
    fn example_5_4_match_clause_joins_on_foreign_keys() {
        let ctx = infer_sdt(&emp_schema()).unwrap();
        let q = parse_cypher("MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.id").unwrap();
        let text = transpile_to_sql_text(&ctx, &q).unwrap();
        assert!(text.contains("EMP AS n"));
        assert!(text.contains("WORK_AT AS e"));
        assert!(text.contains("DEPT AS m"));
        assert!(text.contains("e.SRC = n.id"));
        assert!(text.contains("e.TGT = m.dnum"));
    }

    #[test]
    fn soundness_simple_projection() {
        assert_equivalent_on(&emp_schema(), &emp_graph(), "MATCH (n:EMP) RETURN n.name, n.id");
    }

    #[test]
    fn soundness_path_and_aggregation() {
        assert_equivalent_on(
            &emp_schema(),
            &emp_graph(),
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname AS name, Count(n) AS num",
        );
    }

    #[test]
    fn soundness_reverse_direction_and_props() {
        assert_equivalent_on(
            &emp_schema(),
            &emp_graph(),
            "MATCH (m:DEPT)<-[e:WORK_AT]-(n:EMP {id: 1}) RETURN m.dname, n.name",
        );
        assert_equivalent_on(
            &emp_schema(),
            &emp_graph(),
            "MATCH (n:EMP)-[e:WORK_AT]-(m:DEPT) RETURN n.name, m.dname",
        );
    }

    #[test]
    fn soundness_where_predicates() {
        assert_equivalent_on(
            &emp_schema(),
            &emp_graph(),
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WHERE n.id + 1 = 2 OR m.dname = 'EE' \
             RETURN n.name, m.dname",
        );
        assert_equivalent_on(
            &emp_schema(),
            &emp_graph(),
            "MATCH (n:EMP) WHERE n.id IN [1, 3] AND NOT n.name IS NULL RETURN n.name",
        );
    }

    #[test]
    fn soundness_multiple_match_clauses_share_variables() {
        assert_equivalent_on(
            &emp_schema(),
            &emp_graph(),
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) MATCH (n2:EMP)-[e2:WORK_AT]->(m:DEPT) \
             WHERE n.id < n2.id RETURN n.name, n2.name, m.dname",
        );
    }

    #[test]
    fn soundness_with_clause_and_second_match() {
        assert_equivalent_on(
            &emp_schema(),
            &emp_graph(),
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WITH m \
             MATCH (m:DEPT)<-[e2:WORK_AT]-(n2:EMP) RETURN m.dname, Count(*)",
        );
    }

    #[test]
    fn soundness_optional_match() {
        let mut g = emp_graph();
        // Add an employee without a department.
        g.add_node("EMP", [("id", Value::Int(4)), ("name", Value::str("D"))]);
        assert_equivalent_on(
            &emp_schema(),
            &g,
            "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname",
        );
        assert_equivalent_on(
            &emp_schema(),
            &g,
            "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) \
             RETURN n.name, Count(m) AS cnt",
        );
    }

    #[test]
    fn soundness_exists_predicate() {
        assert_equivalent_on(
            &emp_schema(),
            &emp_graph(),
            "MATCH (m:DEPT) WHERE EXISTS ((n:EMP)-[e:WORK_AT]->(m:DEPT)) RETURN m.dname",
        );
    }

    #[test]
    fn soundness_union_and_order_by() {
        assert_equivalent_on(
            &emp_schema(),
            &emp_graph(),
            "MATCH (n:EMP) RETURN n.name AS x UNION ALL MATCH (m:DEPT) RETURN m.dname AS x",
        );
        assert_equivalent_on(
            &emp_schema(),
            &emp_graph(),
            "MATCH (n:EMP) RETURN n.name AS x UNION MATCH (m:DEPT) RETURN m.dname AS x",
        );
        // ORDER BY compares with ordered table equivalence.
        let ctx = infer_sdt(&emp_schema()).unwrap();
        let q = parse_cypher("MATCH (n:EMP) RETURN n.name AS x ORDER BY x DESC").unwrap();
        let cy_t = eval_cypher(&emp_schema(), &emp_graph(), &q).unwrap();
        let sql = transpile_query(&ctx, &q).unwrap();
        let induced =
            apply_to_graph(&ctx.sdt, &emp_schema(), &emp_graph(), &ctx.induced_schema).unwrap();
        let sql_t = eval_sql(&induced, &sql).unwrap();
        assert!(cy_t.equivalent_ordered(&sql_t));
    }

    #[test]
    fn soundness_distinct_and_arithmetic() {
        assert_equivalent_on(
            &emp_schema(),
            &emp_graph(),
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN DISTINCT m.dname",
        );
        assert_equivalent_on(
            &emp_schema(),
            &emp_graph(),
            "MATCH (n:EMP) RETURN n.id * 2 + 1 AS x, Sum(n.id) AS s",
        );
    }

    #[test]
    fn motivating_example_transpiles_and_counts_four() {
        // Section 2: the Cypher query double-counts, yielding (1, 4) where
        // the SQL query yields (1, 2).
        let schema = GraphSchema::new()
            .with_node(NodeType::new("CONCEPT", ["CID", "Name"]))
            .with_node(NodeType::new("PA", ["PID", "CSID"]))
            .with_node(NodeType::new("SENTENCE", ["SID", "PMID"]))
            .with_edge(EdgeType::new("CS", "CONCEPT", "PA", ["eCID", "eCSID"]))
            .with_edge(EdgeType::new("SP", "PA", "SENTENCE", ["SPID", "eSID"]));
        let mut g = GraphInstance::new();
        let atropine =
            g.add_node("CONCEPT", [("CID", Value::Int(1)), ("Name", Value::str("Atropine"))]);
        let _aspirin =
            g.add_node("CONCEPT", [("CID", Value::Int(2)), ("Name", Value::str("Aspirin"))]);
        let pa0 = g.add_node("PA", [("PID", Value::Int(0)), ("CSID", Value::Int(0))]);
        let pa1 = g.add_node("PA", [("PID", Value::Int(1)), ("CSID", Value::Int(1))]);
        let s0 = g.add_node("SENTENCE", [("SID", Value::Int(0)), ("PMID", Value::Int(0))]);
        let _s1 = g.add_node("SENTENCE", [("SID", Value::Int(1)), ("PMID", Value::Int(0))]);
        g.add_edge("CS", atropine, pa0, [("eCID", Value::Int(1)), ("eCSID", Value::Int(0))]);
        g.add_edge("CS", atropine, pa1, [("eCID", Value::Int(1)), ("eCSID", Value::Int(1))]);
        g.add_edge("SP", pa0, s0, [("SPID", Value::Int(0)), ("eSID", Value::Int(0))]);
        g.add_edge("SP", pa1, s0, [("SPID", Value::Int(1)), ("eSID", Value::Int(0))]);

        let cypher = "MATCH (c1:CONCEPT {CID: 1})-[r1:CS]->(p1:PA)-[r2:SP]->(s:SENTENCE) \
                      WITH s \
                      MATCH (s:SENTENCE)<-[r3:SP]-(p2:PA)<-[r4:CS]-(c2:CONCEPT) \
                      RETURN c2.CID, Count(*)";
        let q = parse_cypher(cypher).unwrap();
        let cy_result = eval_cypher(&schema, &g, &q).unwrap();
        assert_eq!(cy_result.rows, vec![vec![Value::Int(1), Value::Int(4)]]);

        // Transpiled SQL over the induced schema agrees with the Cypher
        // semantics (soundness), i.e. it also yields 4.
        let ctx = infer_sdt(&schema).unwrap();
        let sql = transpile_query(&ctx, &q).unwrap();
        let induced = apply_to_graph(&ctx.sdt, &schema, &g, &ctx.induced_schema).unwrap();
        let sql_result = eval_sql(&induced, &sql).unwrap();
        assert!(cy_result.equivalent(&sql_result));
    }

    #[test]
    fn unsupported_order_by_key_is_reported() {
        let ctx = infer_sdt(&emp_schema()).unwrap();
        let q = parse_cypher("MATCH (n:EMP) RETURN n.name AS x ORDER BY n.id").unwrap();
        // n.id is not among the returned columns.
        assert!(transpile_query(&ctx, &q).is_err());
    }

    #[test]
    fn completeness_on_a_query_battery() {
        // Theorem 5.8 (completeness): every featherweight query in this
        // battery transpiles successfully.
        let ctx = infer_sdt(&emp_schema()).unwrap();
        let queries = [
            "MATCH (n:EMP) RETURN n.id",
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.id, m.dname",
            "MATCH (n:EMP) WHERE n.id > 1 RETURN Count(*)",
            "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.id, m.dnum",
            "MATCH (n:EMP) WITH n AS p MATCH (p:EMP)-[e:WORK_AT]->(m:DEPT) RETURN p.name",
            "MATCH (n:EMP) RETURN n.id UNION MATCH (m:DEPT) RETURN m.dnum",
            "MATCH (n:EMP) RETURN Min(n.id), Max(n.id), Avg(n.id), Sum(n.id), Count(n.id)",
            "MATCH (m:DEPT) WHERE EXISTS ((n:EMP)-[e:WORK_AT]->(m:DEPT)) RETURN m.dname",
        ];
        for q in queries {
            let parsed = parse_cypher(q).unwrap();
            assert!(transpile_query(&ctx, &parsed).is_ok(), "failed to transpile `{q}`");
        }
    }
}
