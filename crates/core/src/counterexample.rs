//! Lifting relational counterexamples back to graph instances (the
//! counterexamples Graphiti reports, e.g. Figure 23 of the paper).
//!
//! The standard database transformer establishes a one-to-one correspondence
//! between graph elements and rows of the induced relational schema, so its
//! inverse is straightforward: every row of a node table becomes a node and
//! every row of an edge table becomes an edge whose endpoints are looked up
//! by their default-key values.

use crate::infer_sdt::{SdtContext, SRC_ATTR, TGT_ATTR};
use graphiti_common::{Error, Result, Value};
use graphiti_graph::{GraphInstance, NodeId};
use graphiti_relational::{NameIndex, RelInstance};
use std::collections::HashMap;

/// Converts an instance of the induced relational schema into the graph
/// instance it is the SDT-image of.
///
/// Column indexes are resolved **once per table** through a precomputed
/// [`NameIndex`] — not re-scanned per row, which used to make lifting a
/// large counterexample O(rows × columns²).
pub fn lift_to_graph(ctx: &SdtContext, induced: &RelInstance) -> Result<GraphInstance> {
    let mut graph = GraphInstance::new();
    // (label, default-key value) -> node id
    let mut node_index: HashMap<(String, Value), NodeId> = HashMap::new();

    for node_ty in &ctx.graph_schema.node_types {
        let Some(table) = induced.table(node_ty.label.as_str()) else { continue };
        let names = NameIndex::new(&table.columns);
        let key_idx: Vec<(&str, usize)> = node_ty
            .keys
            .iter()
            .map(|k| {
                let idx = names.get(k.as_str()).ok_or_else(|| {
                    Error::transformer(format!(
                        "induced table `{}` is missing column `{k}`",
                        node_ty.label
                    ))
                })?;
                Ok((k.as_str(), idx))
            })
            .collect::<Result<_>>()?;
        let pk_idx = names.get(node_ty.default_key().as_str()).unwrap_or(0);
        for row in &table.rows {
            let props: Vec<(String, Value)> =
                key_idx.iter().map(|&(k, idx)| (k.to_string(), row[idx].clone())).collect();
            let id = graph.add_node(node_ty.label.clone(), props);
            node_index.insert((node_ty.label.as_str().to_string(), row[pk_idx].clone()), id);
        }
    }

    for edge_ty in &ctx.graph_schema.edge_types {
        let Some(table) = induced.table(edge_ty.label.as_str()) else { continue };
        let names = NameIndex::new(&table.columns);
        let src_idx = names.get(SRC_ATTR).ok_or_else(|| {
            Error::transformer(format!("edge table `{}` is missing `SRC`", edge_ty.label))
        })?;
        let tgt_idx = names.get(TGT_ATTR).ok_or_else(|| {
            Error::transformer(format!("edge table `{}` is missing `TGT`", edge_ty.label))
        })?;
        let key_idx: Vec<(&str, usize)> = edge_ty
            .keys
            .iter()
            .map(|k| {
                let idx = names.get(k.as_str()).ok_or_else(|| {
                    Error::transformer(format!(
                        "induced table `{}` is missing column `{k}`",
                        edge_ty.label
                    ))
                })?;
                Ok((k.as_str(), idx))
            })
            .collect::<Result<_>>()?;
        for row in &table.rows {
            let src_key = (edge_ty.src.as_str().to_string(), row[src_idx].clone());
            let tgt_key = (edge_ty.tgt.as_str().to_string(), row[tgt_idx].clone());
            let (Some(&src), Some(&tgt)) = (node_index.get(&src_key), node_index.get(&tgt_key))
            else {
                return Err(Error::transformer(format!(
                    "edge table `{}` references endpoints not present in the node tables",
                    edge_ty.label
                )));
            };
            let props: Vec<(String, Value)> =
                key_idx.iter().map(|&(k, idx)| (k.to_string(), row[idx].clone())).collect();
            graph.add_edge(edge_ty.label.clone(), src, tgt, props);
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer_sdt::infer_sdt;
    use graphiti_common::Value;
    use graphiti_graph::{EdgeType, GraphSchema, NodeType};
    use graphiti_relational::Table;
    use graphiti_transformer::apply_to_graph;

    fn emp_schema() -> GraphSchema {
        GraphSchema::new()
            .with_node(NodeType::new("EMP", ["id", "name"]))
            .with_node(NodeType::new("DEPT", ["dnum", "dname"]))
            .with_edge(EdgeType::new("WORK_AT", "EMP", "DEPT", ["wid"]))
    }

    #[test]
    fn lift_round_trips_through_the_sdt() {
        // Graph -> induced relational (via SDT) -> graph (via lift) -> induced
        // relational again must be a fixpoint.
        let ctx = infer_sdt(&emp_schema()).unwrap();
        let mut g = GraphInstance::new();
        let a = g.add_node("EMP", [("id", Value::Int(1)), ("name", Value::str("A"))]);
        let d = g.add_node("DEPT", [("dnum", Value::Int(5)), ("dname", Value::str("CS"))]);
        g.add_edge("WORK_AT", a, d, [("wid", Value::Int(10))]);

        let induced = apply_to_graph(&ctx.sdt, &ctx.graph_schema, &g, &ctx.induced_schema).unwrap();
        let lifted = lift_to_graph(&ctx, &induced).unwrap();
        assert_eq!(lifted.node_count(), 2);
        assert_eq!(lifted.edge_count(), 1);
        assert!(lifted.validate(&ctx.graph_schema).is_ok());

        let induced_again =
            apply_to_graph(&ctx.sdt, &ctx.graph_schema, &lifted, &ctx.induced_schema).unwrap();
        for rel in &ctx.induced_schema.relations {
            let t1 = induced.table(rel.name.as_str()).unwrap();
            let t2 = induced_again.table(rel.name.as_str()).unwrap();
            assert!(t1.equivalent(t2), "mismatch for {}", rel.name);
        }
    }

    #[test]
    fn dangling_edge_reference_is_an_error() {
        let ctx = infer_sdt(&emp_schema()).unwrap();
        let mut induced = RelInstance::empty_of(&ctx.induced_schema);
        induced.insert_table(
            "WORK_AT",
            Table::with_rows(
                ["wid", "SRC", "TGT"],
                vec![vec![Value::Int(1), Value::Int(9), Value::Int(9)]],
            ),
        );
        assert!(lift_to_graph(&ctx, &induced).is_err());
    }

    #[test]
    fn missing_tables_are_treated_as_empty() {
        let ctx = infer_sdt(&emp_schema()).unwrap();
        let induced = RelInstance::new();
        let lifted = lift_to_graph(&ctx, &induced).unwrap();
        assert_eq!(lifted.node_count(), 0);
        assert_eq!(lifted.edge_count(), 0);
    }
}
