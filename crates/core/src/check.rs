//! The equivalence-checking pipeline (Algorithm 1 and Algorithm 2).
//!
//! [`check_equivalence`] wires together the three steps of the paper:
//!
//! 1. [`infer_sdt`](crate::infer_sdt::infer_sdt) — induced schema + SDT;
//! 2. [`transpile_query`](crate::transpile::transpile_query) — a SQL query
//!    over the induced schema provably equivalent to the Cypher query modulo
//!    the SDT;
//! 3. [`residual_transformer`] + a pluggable [`SqlEquivChecker`] backend —
//!    reduce to SQL-vs-SQL equivalence modulo the residual transformer.
//!
//! The actual backends (bounded model checking à la VeriEQL, deductive
//! verification à la Mediator) live in the `graphiti-checkers` crate; this
//! module only defines the interface and the reduction.

use crate::infer_sdt::{infer_sdt, SdtContext};
use crate::transpile::transpile_query;
use graphiti_common::{Ident, Result};
use graphiti_cypher::Query as CypherQuery;
use graphiti_graph::{GraphInstance, GraphSchema};
use graphiti_relational::{RelInstance, RelSchema, Table};
use graphiti_sql::SqlQuery;
use graphiti_transformer::Transformer;
use serde::{Deserialize, Serialize};

/// A concrete witness that two queries are *not* equivalent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Counterexample {
    /// The relational instance over the induced schema.
    pub induced_instance: RelInstance,
    /// The corresponding relational instance over the target schema
    /// (obtained by applying the residual transformer).
    pub target_instance: RelInstance,
    /// The graph instance corresponding to the induced instance (obtained by
    /// inverting the SDT), when available.
    pub graph_instance: Option<GraphInstance>,
    /// The result of the (transpiled) Cypher-side query.
    pub graph_side_result: Table,
    /// The result of the SQL-side query.
    pub relational_side_result: Table,
}

/// The verdict of an equivalence check.
#[derive(Debug, Clone)]
pub enum CheckOutcome {
    /// Fully verified equivalent (deductive backends).
    Verified,
    /// No counterexample found for instances up to the given bound (bounded
    /// backends); `bound` is the largest per-table row count explored.
    BoundedEquivalent {
        /// Largest per-table row count explored.
        bound: usize,
    },
    /// A counterexample demonstrating non-equivalence.
    Refuted(Box<Counterexample>),
    /// The backend could not decide (unsupported fragment, timeout, ...).
    Unknown(String),
}

impl CheckOutcome {
    /// Returns `true` for `Verified` or `BoundedEquivalent`.
    pub fn is_equivalent_verdict(&self) -> bool {
        matches!(self, CheckOutcome::Verified | CheckOutcome::BoundedEquivalent { .. })
    }

    /// Returns `true` for `Refuted`.
    pub fn is_refuted(&self) -> bool {
        matches!(self, CheckOutcome::Refuted(_))
    }
}

/// A backend that checks equivalence of two SQL queries over different
/// schemas related by a residual database transformer (the `CheckSQL`
/// procedure of Algorithm 2).
pub trait SqlEquivChecker {
    /// Checks whether `induced_query` (over `induced_schema`) is equivalent
    /// to `target_query` (over `target_schema`) modulo `rdt`, which maps
    /// induced instances to target instances.
    fn check_sql(
        &self,
        induced_schema: &RelSchema,
        induced_query: &SqlQuery,
        target_schema: &RelSchema,
        target_query: &SqlQuery,
        rdt: &Transformer,
    ) -> Result<CheckOutcome>;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Computes the residual database transformer `Φ_rdt` (Algorithm 2): every
/// *body* predicate of the user transformer that names a graph label is
/// renamed to the corresponding induced table.
///
/// Because the standard transformer maps each label `l` to the induced table
/// of the same name, this substitution is the identity on predicate names in
/// our representation; the function still re-derives it from the SDT so that
/// alternative naming schemes keep working.
pub fn residual_transformer(user: &Transformer, sdt: &Transformer) -> Transformer {
    let mapping: Vec<(Ident, Ident)> = sdt
        .rules
        .iter()
        .filter(|r| r.body.len() == 1)
        .map(|r| (r.body[0].name.clone(), r.head.name.clone()))
        .collect();
    user.rename_body_predicates(&move |name: &Ident| {
        mapping.iter().find(|(from, _)| from == name).map(|(_, to)| to.clone())
    })
}

/// Everything produced by the front half of the pipeline, useful for
/// callers that want to inspect the transpiled query or the residual
/// transformer (e.g. the experiment harness).
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The SDT context (induced schema, SDT, graph schema).
    pub ctx: SdtContext,
    /// The transpiled SQL query over the induced schema.
    pub transpiled: SqlQuery,
    /// The residual transformer from the induced to the target schema.
    pub rdt: Transformer,
}

/// Runs steps (1) and (2) of Algorithm 1 and computes the residual
/// transformer, without invoking a backend.
pub fn reduce(
    graph_schema: &GraphSchema,
    cypher: &CypherQuery,
    user_transformer: &Transformer,
) -> Result<Reduction> {
    let ctx = infer_sdt(graph_schema)?;
    let transpiled = transpile_query(&ctx, cypher)?;
    let rdt = residual_transformer(user_transformer, &ctx.sdt);
    Ok(Reduction { ctx, transpiled, rdt })
}

/// The full `CheckEquivalence` procedure of Algorithm 1.
pub fn check_equivalence(
    graph_schema: &GraphSchema,
    cypher: &CypherQuery,
    target_schema: &RelSchema,
    sql: &SqlQuery,
    user_transformer: &Transformer,
    backend: &dyn SqlEquivChecker,
) -> Result<CheckOutcome> {
    let reduction = reduce(graph_schema, cypher, user_transformer)?;
    let mut outcome = backend.check_sql(
        &reduction.ctx.induced_schema,
        &reduction.transpiled,
        target_schema,
        sql,
        &reduction.rdt,
    )?;
    // Lift relational counterexamples back to a graph instance (Fig. 23).
    if let CheckOutcome::Refuted(cex) = &mut outcome {
        if cex.graph_instance.is_none() {
            cex.graph_instance =
                crate::counterexample::lift_to_graph(&reduction.ctx, &cex.induced_instance).ok();
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphiti_graph::{EdgeType, NodeType};
    use graphiti_transformer::parse_transformer;

    fn emp_schema() -> GraphSchema {
        GraphSchema::new()
            .with_node(NodeType::new("EMP", ["id", "name"]))
            .with_node(NodeType::new("DEPT", ["dnum", "dname"]))
            .with_edge(EdgeType::new("WORK_AT", "EMP", "DEPT", ["wid"]))
    }

    #[test]
    fn residual_transformer_renames_bodies_only() {
        let ctx = infer_sdt(&emp_schema()).unwrap();
        let user = parse_transformer(
            "EMP(id, name) -> Employee(id, name)\n\
             EMP(id, _), WORK_AT(wid, id, dnum), DEPT(dnum, _) -> Assignment(id, dnum)",
        )
        .unwrap();
        let rdt = residual_transformer(&user, &ctx.sdt);
        assert_eq!(rdt.rule_count(), 2);
        // Heads untouched.
        assert_eq!(rdt.rules[0].head.name.as_str(), "Employee");
        assert_eq!(rdt.rules[1].head.name.as_str(), "Assignment");
        // Bodies now name induced tables (identical names in our scheme).
        assert_eq!(rdt.rules[1].body[1].name.as_str(), "WORK_AT");
    }

    #[test]
    fn reduce_produces_transpiled_query_and_rdt() {
        let cypher = graphiti_cypher::parse_query(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname, Count(n)",
        )
        .unwrap();
        let user = parse_transformer("EMP(id, name) -> Employee(id, name)").unwrap();
        let r = reduce(&emp_schema(), &cypher, &user).unwrap();
        assert!(r.transpiled.has_agg());
        assert_eq!(r.rdt.rule_count(), 1);
        assert_eq!(r.ctx.induced_schema.relations.len(), 3);
    }

    #[test]
    fn outcome_helpers() {
        assert!(CheckOutcome::Verified.is_equivalent_verdict());
        assert!(CheckOutcome::BoundedEquivalent { bound: 3 }.is_equivalent_verdict());
        assert!(!CheckOutcome::Unknown("x".into()).is_equivalent_verdict());
        assert!(!CheckOutcome::Unknown("x".into()).is_refuted());
    }
}
