//! Graphiti core: the paper's primary contribution.
//!
//! This crate implements the three components of the Graphiti pipeline
//! (Algorithm 1):
//!
//! * [`infer_sdt`] — the induced relational schema and the standard database
//!   transformer (Section 5.1, Figure 13);
//! * [`transpile`] — correct-by-construction, syntax-directed transpilation
//!   of Featherweight Cypher into Featherweight SQL over the induced schema
//!   (Section 5.2, Figures 16-18, 21-22);
//! * [`check`] — the reduction to SQL equivalence checking modulo a residual
//!   database transformer (Section 5.3, Algorithm 2), parameterized by a
//!   pluggable [`check::SqlEquivChecker`] backend;
//! * [`counterexample`] — lifting relational counterexamples back to graph
//!   instances, as in Figure 23.
//!
//! # Example: transpiling a Cypher query
//!
//! ```
//! use graphiti_graph::{GraphSchema, NodeType, EdgeType};
//! use graphiti_core::{infer_sdt, transpile_query};
//! use graphiti_cypher::parse_query;
//!
//! let schema = GraphSchema::new()
//!     .with_node(NodeType::new("EMP", ["id", "name"]))
//!     .with_node(NodeType::new("DEPT", ["dnum", "dname"]))
//!     .with_edge(EdgeType::new("WORK_AT", "EMP", "DEPT", ["wid"]));
//! let ctx = infer_sdt(&schema).unwrap();
//! let q = parse_query("MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname, Count(n)").unwrap();
//! let sql = transpile_query(&ctx, &q).unwrap();
//! assert!(sql.has_agg());
//! ```

pub mod check;
pub mod counterexample;
pub mod infer_sdt;
pub mod transpile;

pub use check::{
    check_equivalence, reduce, residual_transformer, CheckOutcome, Counterexample, Reduction,
    SqlEquivChecker,
};
pub use counterexample::lift_to_graph;
pub use infer_sdt::{infer_sdt, SdtContext, SRC_ATTR, TGT_ATTR};
pub use transpile::{transpile_query, transpile_to_sql_text};
