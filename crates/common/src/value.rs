//! The dynamically-typed value domain shared by both data models.
//!
//! Values appear as node/edge properties in property graphs, as attribute
//! values in relational tuples, and as literals in both query languages.
//! `Null` follows SQL semantics: it compares as `Unknown`, propagates through
//! arithmetic, and is skipped by aggregates (except `COUNT(*)`).

use crate::intern::intern;
use crate::truth::Truth;
use crate::{Error, Result};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A database value.
///
/// Strings are stored as interned [`Arc<str>`] (see [`crate::intern`]):
/// cloning a `Value` is always cheap — at most a reference-count bump —
/// which both evaluators rely on when materializing rows, bindings, and
/// grouping keys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL `NULL` / Cypher `null`.
    Null,
    /// Boolean value.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// String value (interned; clones share one allocation).
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for string values (interned).
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(intern(s.as_ref()))
    }

    /// Constructor for derived, likely-unique strings (concatenation
    /// results, formatted identifiers): wraps without interning, so
    /// transient values produced on evaluation hot paths don't accumulate
    /// in the global intern table.
    pub fn str_owned(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Returns `true` if this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the value as an `f64` when it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the value as an `i64` when it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the value as a string slice when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Three-valued equality following SQL semantics: any comparison with
    /// `Null` yields `Unknown`.
    pub fn sql_eq(&self, other: &Value) -> Truth {
        if self.is_null() || other.is_null() {
            return Truth::Unknown;
        }
        Truth::from_bool(self.strict_eq(other))
    }

    /// Strict structural equality where `Null == Null`. This is the equality
    /// used for grouping keys, `UNION` deduplication, and table equivalence
    /// (Definition 4.4), where two `Null`s are considered the same entry.
    pub fn strict_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            // Interned strings are pointer-identical when equal, so the
            // byte comparison is only reached for non-interned duplicates.
            (Value::Str(a), Value::Str(b)) => Arc::ptr_eq(a, b) || a == b,
            _ => false,
        }
    }

    /// Total ordering used by `ORDER BY`, grouping, and deterministic output:
    /// `Null` sorts first, then booleans, numbers, strings.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        let (ra, rb) = (rank(self), rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => {
                let a = self.as_f64().unwrap_or(f64::NAN);
                let b = other.as_f64().unwrap_or(f64::NAN);
                a.partial_cmp(&b).unwrap_or(Ordering::Equal)
            }
        }
    }

    /// Three-valued comparison with the given operator.
    pub fn compare(&self, op: CmpOp, other: &Value) -> Truth {
        if self.is_null() || other.is_null() {
            return Truth::Unknown;
        }
        let ord = match (self, other) {
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => match a.partial_cmp(&b) {
                    Some(o) => o,
                    None => return Truth::Unknown,
                },
                // Heterogeneous comparison (e.g. string vs int): only
                // equality/inequality are meaningful.
                _ => {
                    return match op {
                        CmpOp::Eq => Truth::from_bool(self.strict_eq(other)),
                        CmpOp::Ne => Truth::from_bool(!self.strict_eq(other)),
                        _ => Truth::Unknown,
                    };
                }
            },
        };
        let b = match op {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        };
        Truth::from_bool(b)
    }

    /// Arithmetic with SQL `NULL` propagation. Integer arithmetic stays
    /// integral when both operands are integers (except division by zero,
    /// which yields `Null` as in most SQL dialects' permissive mode).
    pub fn arith(&self, op: BinArith, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(match op {
                BinArith::Add => Value::Int(a.wrapping_add(*b)),
                BinArith::Sub => Value::Int(a.wrapping_sub(*b)),
                BinArith::Mul => Value::Int(a.wrapping_mul(*b)),
                BinArith::Div => {
                    if *b == 0 {
                        Value::Null
                    } else {
                        Value::Int(a.wrapping_div(*b))
                    }
                }
                BinArith::Mod => {
                    if *b == 0 {
                        Value::Null
                    } else {
                        Value::Int(a.wrapping_rem(*b))
                    }
                }
            }),
            _ => {
                let (a, b) = match (self.as_f64(), other.as_f64()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => {
                        // String concatenation with `+` is permitted for
                        // convenience; anything else is a type error.
                        if op == BinArith::Add {
                            if let (Value::Str(a), Value::Str(b)) = (self, other) {
                                return Ok(Value::str_owned(format!("{a}{b}")));
                            }
                        }
                        return Err(Error::eval(format!(
                            "cannot apply {op:?} to {self:?} and {other:?}"
                        )));
                    }
                };
                Ok(match op {
                    BinArith::Add => Value::Float(a + b),
                    BinArith::Sub => Value::Float(a - b),
                    BinArith::Mul => Value::Float(a * b),
                    BinArith::Div => {
                        if b == 0.0 {
                            Value::Null
                        } else {
                            Value::Float(a / b)
                        }
                    }
                    BinArith::Mod => {
                        if b == 0.0 {
                            Value::Null
                        } else {
                            Value::Float(a % b)
                        }
                    }
                })
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.strict_eq(other)
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}

impl From<Arc<str>> for Value {
    fn from(s: Arc<str>) -> Self {
        Value::Str(s)
    }
}

/// Comparison operators shared by both query languages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Returns the operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// SQL surface syntax for the operator.
    pub fn as_sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Binary arithmetic operators shared by both query languages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinArith {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl BinArith {
    /// SQL/Cypher surface syntax for the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            BinArith::Add => "+",
            BinArith::Sub => "-",
            BinArith::Mul => "*",
            BinArith::Div => "/",
            BinArith::Mod => "%",
        }
    }
}

/// Aggregation functions shared by both query languages (Fig. 9 / Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggKind {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

impl AggKind {
    /// Surface syntax of the aggregate.
    pub fn as_str(self) -> &'static str {
        match self {
            AggKind::Count => "Count",
            AggKind::Sum => "Sum",
            AggKind::Avg => "Avg",
            AggKind::Min => "Min",
            AggKind::Max => "Max",
        }
    }

    /// Parses an aggregate name case-insensitively.
    pub fn from_name(name: &str) -> Option<AggKind> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggKind::Count),
            "sum" => Some(AggKind::Sum),
            "avg" => Some(AggKind::Avg),
            "min" => Some(AggKind::Min),
            "max" => Some(AggKind::Max),
            _ => None,
        }
    }

    /// Folds a stream of values according to the aggregate's SQL semantics
    /// (Fig. 19 for the Cypher side, which mirrors SQL):
    /// `Null` inputs are skipped; if *all* inputs are `Null` (or the input is
    /// empty for non-COUNT aggregates) the result is `Null`; `COUNT` counts
    /// non-null inputs and returns `0` for an empty input.
    pub fn fold<'a>(self, values: impl IntoIterator<Item = &'a Value>) -> Value {
        let mut count: i64 = 0;
        let mut sum: f64 = 0.0;
        let mut all_int = true;
        let mut isum: i64 = 0;
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        for v in values {
            if v.is_null() {
                continue;
            }
            count += 1;
            if let Some(f) = v.as_f64() {
                sum += f;
                if let Some(i) = v.as_i64() {
                    isum = isum.wrapping_add(i);
                } else {
                    all_int = false;
                }
            } else {
                all_int = false;
            }
            min = Some(match min {
                None => v.clone(),
                Some(m) => {
                    if v.total_cmp(&m) == Ordering::Less {
                        v.clone()
                    } else {
                        m
                    }
                }
            });
            max = Some(match max {
                None => v.clone(),
                Some(m) => {
                    if v.total_cmp(&m) == Ordering::Greater {
                        v.clone()
                    } else {
                        m
                    }
                }
            });
        }
        match self {
            AggKind::Count => Value::Int(count),
            AggKind::Sum => {
                if count == 0 {
                    // SUM over zero non-NULL inputs is NULL, whether the
                    // input was empty or all-NULL.
                    Value::Null
                } else if all_int {
                    Value::Int(isum)
                } else {
                    Value::Float(sum)
                }
            }
            AggKind::Avg => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
            AggKind::Min => min.unwrap_or(Value::Null),
            AggKind::Max => max.unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_through_comparison() {
        assert_eq!(Value::Null.compare(CmpOp::Eq, &Value::Int(1)), Truth::Unknown);
        assert_eq!(Value::Int(1).compare(CmpOp::Eq, &Value::Null), Truth::Unknown);
        assert_eq!(Value::Int(1).compare(CmpOp::Eq, &Value::Int(1)), Truth::True);
        assert_eq!(Value::Int(1).compare(CmpOp::Lt, &Value::Int(2)), Truth::True);
    }

    #[test]
    fn strict_eq_treats_nulls_equal() {
        assert!(Value::Null.strict_eq(&Value::Null));
        assert!(Value::Int(3).strict_eq(&Value::Float(3.0)));
        assert!(!Value::Int(3).strict_eq(&Value::Str("3".into())));
    }

    #[test]
    fn arithmetic_null_and_div_zero() {
        assert_eq!(Value::Null.arith(BinArith::Add, &Value::Int(2)).unwrap(), Value::Null);
        assert_eq!(Value::Int(6).arith(BinArith::Div, &Value::Int(0)).unwrap(), Value::Null);
        assert_eq!(Value::Int(6).arith(BinArith::Div, &Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(
            Value::Float(1.5).arith(BinArith::Mul, &Value::Int(2)).unwrap(),
            Value::Float(3.0)
        );
    }

    #[test]
    fn string_concat_with_plus() {
        assert_eq!(
            Value::str("ab").arith(BinArith::Add, &Value::str("cd")).unwrap(),
            Value::str("abcd")
        );
        assert!(Value::str("ab").arith(BinArith::Mul, &Value::str("cd")).is_err());
    }

    #[test]
    fn aggregates_skip_nulls() {
        let vals = [Value::Int(1), Value::Null, Value::Int(3)];
        assert_eq!(AggKind::Count.fold(vals.iter()), Value::Int(2));
        assert_eq!(AggKind::Sum.fold(vals.iter()), Value::Int(4));
        assert_eq!(AggKind::Avg.fold(vals.iter()), Value::Float(2.0));
        assert_eq!(AggKind::Min.fold(vals.iter()), Value::Int(1));
        assert_eq!(AggKind::Max.fold(vals.iter()), Value::Int(3));
    }

    #[test]
    fn aggregates_over_all_nulls() {
        let vals = [Value::Null, Value::Null];
        assert_eq!(AggKind::Count.fold(vals.iter()), Value::Int(0));
        assert_eq!(AggKind::Sum.fold(vals.iter()), Value::Null);
        assert_eq!(AggKind::Min.fold(vals.iter()), Value::Null);
    }

    #[test]
    fn aggregates_over_empty() {
        let vals: Vec<Value> = vec![];
        assert_eq!(AggKind::Count.fold(vals.iter()), Value::Int(0));
        assert_eq!(AggKind::Sum.fold(vals.iter()), Value::Null);
        assert_eq!(AggKind::Avg.fold(vals.iter()), Value::Null);
    }

    #[test]
    fn total_order_groups_types() {
        let mut vals = [Value::str("z"), Value::Int(5), Value::Null, Value::Bool(true)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Int(5));
        assert_eq!(vals[3], Value::str("z"));
    }

    #[test]
    fn cmp_flip() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flip(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    }
}
