//! Shared substrate for the Graphiti reproduction.
//!
//! This crate provides the pieces that both the graph and relational data
//! models (and both query languages) need:
//!
//! * [`Value`] — the dynamically-typed value domain used for node/edge
//!   properties and relational attributes, including SQL-style `NULL`.
//! * [`Truth`] — three-valued logic used by predicate evaluation in both
//!   Featherweight Cypher and Featherweight SQL.
//! * [`Error`] — the common error type shared across the workspace.
//! * [`intern`](crate::intern) — the global string interner behind
//!   [`Value::Str`], making value clones cheap on evaluator hot paths.
//! * Small helpers for identifier handling and deterministic hashing.

pub mod api;
pub mod error;
pub mod ident;
pub mod intern;
pub mod truth;
pub mod value;

pub use api::{ApiError, ApiResult};
pub use error::{Error, Result};
pub use ident::Ident;
pub use intern::intern;
pub use truth::Truth;
pub use value::{AggKind, BinArith, CmpOp, Value};
