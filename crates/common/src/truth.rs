//! SQL/Cypher three-valued logic.
//!
//! Both Featherweight SQL and Featherweight Cypher interpret predicates under
//! Kleene's strong three-valued logic (Appendix A of the paper): `⊥ ∧ Null =
//! ⊥`, `⊤ ∨ Null = ⊤`, and otherwise any `Null` operand makes the result
//! `Null`.

use serde::{Deserialize, Serialize};

/// A three-valued truth value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Truth {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// Unknown (the result of comparing with `NULL`).
    Unknown,
}

impl Truth {
    /// Lifts a Rust boolean into three-valued logic.
    pub fn from_bool(b: bool) -> Self {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// Three-valued conjunction.
    pub fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Three-valued disjunction.
    pub fn or(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// Three-valued negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// Returns `true` only for [`Truth::True`] — the filter semantics of both
    /// `WHERE` in SQL and pattern predicates in Cypher (rows whose predicate
    /// evaluates to `Unknown` are dropped).
    pub fn is_true(self) -> bool {
        matches!(self, Truth::True)
    }

    /// Returns `true` for [`Truth::Unknown`].
    pub fn is_unknown(self) -> bool {
        matches!(self, Truth::Unknown)
    }
}

impl From<bool> for Truth {
    fn from(b: bool) -> Self {
        Truth::from_bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::Truth::*;

    #[test]
    fn kleene_and() {
        assert_eq!(False.and(Unknown), False);
        assert_eq!(Unknown.and(False), False);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(Unknown.and(Unknown), Unknown);
        assert_eq!(True.and(True), True);
    }

    #[test]
    fn kleene_or() {
        assert_eq!(True.or(Unknown), True);
        assert_eq!(Unknown.or(True), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.or(Unknown), Unknown);
        assert_eq!(False.or(False), False);
    }

    #[test]
    fn negation_fixes_unknown() {
        assert_eq!(Unknown.not(), Unknown);
        assert_eq!(True.not(), False);
        assert_eq!(False.not(), True);
    }

    #[test]
    fn filter_semantics() {
        assert!(True.is_true());
        assert!(!Unknown.is_true());
        assert!(!False.is_true());
    }
}
