//! Lightweight identifier type with case-preserving equality.
//!
//! Identifiers (labels, table names, attribute names, variable names) are
//! compared *case-insensitively* for keywords at the parser level, but once
//! they reach the data model they are treated as case-preserving strings.
//! [`Ident`] is a thin newtype over `String` so the rest of the codebase can
//! be explicit about which strings are identifiers.

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::fmt;

/// An identifier (label, relation name, attribute name, variable name).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ident(String);

impl Ident {
    /// Creates a new identifier from anything string-like.
    pub fn new(s: impl Into<String>) -> Self {
        Ident(s.into())
    }

    /// Returns the identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns `true` if this identifier equals `other` ignoring ASCII case.
    pub fn eq_ignore_case(&self, other: &str) -> bool {
        self.0.eq_ignore_ascii_case(other)
    }

    /// Consumes the identifier and returns the underlying string.
    pub fn into_string(self) -> String {
        self.0
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident::new(s)
    }
}

impl From<String> for Ident {
    fn from(s: String) -> Self {
        Ident(s)
    }
}

impl Borrow<str> for Ident {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Ident {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq<str> for Ident {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for Ident {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_trip() {
        let id = Ident::new("Concept");
        assert_eq!(id.as_str(), "Concept");
        assert_eq!(id.to_string(), "Concept");
        assert_eq!(id, "Concept");
    }

    #[test]
    fn case_insensitive_helper() {
        let id = Ident::new("MATCH");
        assert!(id.eq_ignore_case("match"));
        assert!(!id.eq_ignore_case("matc"));
    }

    #[test]
    fn usable_as_hash_key_by_str() {
        let mut set: HashSet<Ident> = HashSet::new();
        set.insert(Ident::new("emp"));
        assert!(set.contains("emp"));
        assert!(!set.contains("dept"));
    }
}
