//! Lightweight identifier type with case-preserving equality.
//!
//! Identifiers (labels, table names, attribute names, variable names) are
//! compared *case-insensitively* for keywords at the parser level, but once
//! they reach the data model they are treated as case-preserving strings.
//! [`Ident`] is a thin newtype over an **interned** `Arc<str>` (the same
//! interner backing [`Value::Str`](crate::Value::Str)): the data model
//! clones identifiers constantly — every node and edge carries its label
//! and property keys, and the store's clone-fallback publication path used
//! to deep-copy all of them — so cloning an `Ident` is a reference-count
//! bump, equal identifiers share one allocation, and equality takes an
//! `Arc::ptr_eq` fast path before falling back to a byte comparison.

use crate::intern::intern;
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// An identifier (label, relation name, attribute name, variable name).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ident(Arc<str>);

impl Ident {
    /// Creates a new identifier from anything string-like, interning the
    /// backing storage (equal identifiers share one allocation).
    pub fn new(s: impl AsRef<str>) -> Self {
        Ident(intern(s.as_ref()))
    }

    /// Returns the identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns `true` if this identifier equals `other` ignoring ASCII case.
    pub fn eq_ignore_case(&self, other: &str) -> bool {
        self.0.eq_ignore_ascii_case(other)
    }

    /// Returns the underlying string (copied out of the interner).
    pub fn into_string(self) -> String {
        self.0.as_ref().to_owned()
    }

    /// The interned backing storage.
    pub fn as_arc(&self) -> &Arc<str> {
        &self.0
    }
}

impl PartialEq for Ident {
    fn eq(&self, other: &Self) -> bool {
        // Interned: equal contents are normally pointer-equal.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Ident {}

impl Hash for Ident {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with `str::hash` for `Borrow<str>` map lookups.
        (*self.0).hash(state)
    }
}

impl PartialOrd for Ident {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ident {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident::new(s)
    }
}

impl From<String> for Ident {
    fn from(s: String) -> Self {
        Ident::new(s)
    }
}

impl Borrow<str> for Ident {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Ident {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq<str> for Ident {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Ident {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_trip() {
        let id = Ident::new("Concept");
        assert_eq!(id.as_str(), "Concept");
        assert_eq!(id.to_string(), "Concept");
        assert_eq!(id, "Concept");
    }

    #[test]
    fn case_insensitive_helper() {
        let id = Ident::new("MATCH");
        assert!(id.eq_ignore_case("match"));
        assert!(!id.eq_ignore_case("matc"));
    }

    #[test]
    fn usable_as_hash_key_by_str() {
        let mut set: HashSet<Ident> = HashSet::new();
        set.insert(Ident::new("emp"));
        assert!(set.contains("emp"));
        assert!(!set.contains("dept"));
    }

    #[test]
    fn interned_idents_share_one_allocation() {
        let a = Ident::new("interned-ident-probe");
        let b = Ident::new(String::from("interned-ident-") + "probe");
        let c = a.clone();
        assert!(Arc::ptr_eq(a.as_arc(), b.as_arc()), "equal idents intern to one Arc");
        assert!(Arc::ptr_eq(a.as_arc(), c.as_arc()), "clone is a refcount bump");
        assert_eq!(a, b);
    }

    #[test]
    fn ordering_matches_str_ordering() {
        let mut v = [Ident::new("b"), Ident::new("a"), Ident::new("c")];
        v.sort();
        assert_eq!(v.iter().map(Ident::as_str).collect::<Vec<_>>(), vec!["a", "b", "c"]);
    }
}
