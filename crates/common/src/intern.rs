//! A global string interner backing [`Value::Str`](crate::Value::Str).
//!
//! Both evaluators clone property values constantly (into bindings, rows,
//! grouping keys, hash-join keys), so string values are stored as
//! `Arc<str>`: cloning is a reference-count bump instead of a heap copy.
//! Interning additionally dedupes equal strings behind one allocation,
//! which lets equality checks take an `Arc::ptr_eq` fast path before
//! falling back to a byte comparison.
//!
//! The interner is a process-global table guarded by a mutex.  It is only
//! touched when a string value is *constructed* (parsing, data generation,
//! concatenation) — never on the clone-heavy evaluation hot paths — so the
//! lock is not contended in practice.  Entries live for the lifetime of the
//! process; the workloads here build bounded vocabularies (schema
//! identifiers, corpus literals, small mock-data pools), so unbounded
//! growth is not a concern.

use std::collections::HashSet;
use std::sync::{Arc, Mutex, OnceLock};

fn table() -> &'static Mutex<HashSet<Arc<str>>> {
    static TABLE: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Returns the canonical `Arc<str>` for `s`, inserting it on first use.
///
/// Two calls with equal strings return pointer-identical `Arc`s, so
/// `Arc::ptr_eq` can be used as an equality fast path.
pub fn intern(s: &str) -> Arc<str> {
    let mut set = table().lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    match set.get(s) {
        Some(existing) => Arc::clone(existing),
        None => {
            let arc: Arc<str> = Arc::from(s);
            set.insert(Arc::clone(&arc));
            arc
        }
    }
}

/// Number of distinct strings currently interned (diagnostics / tests).
pub fn interned_count() -> usize {
    table().lock().unwrap_or_else(|poisoned| poisoned.into_inner()).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes_and_is_ptr_equal() {
        let a = intern("shared-string");
        let b = intern("shared-string");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(&*a, "shared-string");
    }

    #[test]
    fn distinct_strings_get_distinct_arcs() {
        let a = intern("intern-test-x");
        let b = intern("intern-test-y");
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn count_is_monotonic() {
        let before = interned_count();
        intern("intern-test-count-probe");
        assert!(interned_count() >= before);
    }
}
