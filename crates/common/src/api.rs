//! The unified public error surface of the serving API.
//!
//! The workspace grew two error families: [`Error`](crate::Error) for
//! query-language / schema / evaluation failures, and the store's typed
//! `StoreError` taxonomy for durability failures.  A wire protocol must
//! freeze **one** vocabulary, and the embedded API must report through
//! the same one so a caller cannot observe which transport it is behind.
//! [`ApiError`] is that vocabulary: every variant carries a stable
//! numeric [wire code](ApiError::code) plus a human-readable message,
//! and the pair round-trips losslessly through
//! [`ApiError::to_wire`]/[`ApiError::from_wire`] — a client
//! reconstructs exactly the error the server formatted.

use crate::Error;
use std::fmt;

/// Convenience alias for fallible session/service operations.
pub type ApiResult<T> = std::result::Result<T, ApiError>;

/// The one public error enum of the `graphiti` session API, shared
/// verbatim by the in-process embedding and the wire protocol.
///
/// The first block mirrors the query-side [`Error`] taxonomy; the second
/// block carries the store/service failures a serving front-end adds
/// (durability, admission control, protocol framing, session lifecycle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// A lexer or parser error (message names the language).
    Parse(String),
    /// Malformed schema, or a query naming unknown schema elements.
    Schema(String),
    /// An instance violates its schema or integrity constraints.
    Instance(String),
    /// Runtime evaluation failure (type error, unknown column, ...).
    Eval(String),
    /// The construct is recognized but not supported.
    Unsupported(String),
    /// A commit delta failed incremental validation; nothing changed.
    Rejected(String),
    /// An I/O operation failed and was cleanly rolled back.
    Io(String),
    /// On-disk state failed a checksum or structural invariant.
    Corrupt(String),
    /// The store is fenced read-only after an untrustable I/O failure.
    Fenced(String),
    /// Admission control refused the request; retry later.
    Backpressure(String),
    /// A malformed, truncated, or oversized protocol frame.
    Protocol(String),
    /// The session is closed (explicitly, or by a server-side failure).
    SessionClosed(String),
    /// An internal invariant broke (including panicked workers).
    Internal(String),
    /// The request's deadline budget expired before a reply could be
    /// produced.  For commits the outcome is ambiguous: the write may
    /// still land, so retries must carry an idempotency token.
    DeadlineExceeded(String),
    /// The server is draining for shutdown and refuses new requests;
    /// retry against another (or the restarted) server.
    Draining(String),
}

impl ApiError {
    /// The stable wire code of this variant.  Codes are append-only
    /// protocol surface: existing values never change meaning.
    pub fn code(&self) -> u16 {
        match self {
            ApiError::Parse(_) => 1,
            ApiError::Schema(_) => 2,
            ApiError::Instance(_) => 3,
            ApiError::Eval(_) => 4,
            ApiError::Unsupported(_) => 5,
            ApiError::Rejected(_) => 6,
            ApiError::Io(_) => 7,
            ApiError::Corrupt(_) => 8,
            ApiError::Fenced(_) => 9,
            ApiError::Backpressure(_) => 10,
            ApiError::Protocol(_) => 11,
            ApiError::SessionClosed(_) => 12,
            ApiError::Internal(_) => 13,
            ApiError::DeadlineExceeded(_) => 14,
            ApiError::Draining(_) => 15,
        }
    }

    /// The human-readable message (without the variant prefix
    /// `Display` adds).
    pub fn message(&self) -> &str {
        match self {
            ApiError::Parse(m)
            | ApiError::Schema(m)
            | ApiError::Instance(m)
            | ApiError::Eval(m)
            | ApiError::Unsupported(m)
            | ApiError::Rejected(m)
            | ApiError::Io(m)
            | ApiError::Corrupt(m)
            | ApiError::Fenced(m)
            | ApiError::Backpressure(m)
            | ApiError::Protocol(m)
            | ApiError::SessionClosed(m)
            | ApiError::Internal(m)
            | ApiError::DeadlineExceeded(m)
            | ApiError::Draining(m) => m,
        }
    }

    /// Splits into the `(code, message)` pair a protocol frame carries.
    pub fn to_wire(&self) -> (u16, String) {
        (self.code(), self.message().to_string())
    }

    /// Rebuilds the error from its wire pair.  Unknown codes (a newer
    /// server) degrade to [`ApiError::Internal`] without losing the
    /// message.
    pub fn from_wire(code: u16, message: impl Into<String>) -> ApiError {
        let m = message.into();
        match code {
            1 => ApiError::Parse(m),
            2 => ApiError::Schema(m),
            3 => ApiError::Instance(m),
            4 => ApiError::Eval(m),
            5 => ApiError::Unsupported(m),
            6 => ApiError::Rejected(m),
            7 => ApiError::Io(m),
            8 => ApiError::Corrupt(m),
            9 => ApiError::Fenced(m),
            10 => ApiError::Backpressure(m),
            11 => ApiError::Protocol(m),
            12 => ApiError::SessionClosed(m),
            13 => ApiError::Internal(m),
            14 => ApiError::DeadlineExceeded(m),
            15 => ApiError::Draining(m),
            other => ApiError::Internal(format!("unknown error code {other}: {m}")),
        }
    }

    /// Whether the request may sensibly be retried as-is after waiting
    /// (admission-control pushback, not a hard failure).
    pub fn is_backpressure(&self) -> bool {
        matches!(self, ApiError::Backpressure(_))
    }

    /// Whether the error reports a fenced (read-only degraded) store.
    pub fn is_fenced(&self) -> bool {
        matches!(self, ApiError::Fenced(_))
    }

    /// Whether the error reports a rejected (validation-failed) delta.
    pub fn is_rejected(&self) -> bool {
        matches!(self, ApiError::Rejected(_))
    }

    /// Whether a client may safely retry the request after backing off.
    ///
    /// Retryable errors are transient serving conditions — admission
    /// pushback, an expired deadline, a draining server — where the
    /// request itself is fine.  Validation failures ([`Rejected`]), a
    /// fenced store, and protocol/internal faults are never retryable:
    /// repeating them cannot succeed and may mask real damage.  Note
    /// that retrying a timed-out or disconnected *commit* is only
    /// exactly-once when it carries an idempotency token.
    ///
    /// [`Rejected`]: ApiError::Rejected
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ApiError::Backpressure(_) | ApiError::DeadlineExceeded(_) | ApiError::Draining(_)
        )
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Parse(m) => write!(f, "parse error: {m}"),
            ApiError::Schema(m) => write!(f, "schema error: {m}"),
            ApiError::Instance(m) => write!(f, "instance error: {m}"),
            ApiError::Eval(m) => write!(f, "evaluation error: {m}"),
            ApiError::Unsupported(m) => write!(f, "unsupported: {m}"),
            ApiError::Rejected(m) => write!(f, "commit rejected: {m}"),
            ApiError::Io(m) => write!(f, "i/o error: {m}"),
            ApiError::Corrupt(m) => write!(f, "corrupt state: {m}"),
            ApiError::Fenced(m) => write!(f, "store fenced: {m}"),
            ApiError::Backpressure(m) => write!(f, "backpressure: {m}"),
            ApiError::Protocol(m) => write!(f, "protocol error: {m}"),
            ApiError::SessionClosed(m) => write!(f, "session closed: {m}"),
            ApiError::Internal(m) => write!(f, "internal error: {m}"),
            ApiError::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
            ApiError::Draining(m) => write!(f, "server draining: {m}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<Error> for ApiError {
    fn from(e: Error) -> ApiError {
        match e {
            Error::Parse { language, message } => ApiError::Parse(format!("{language}: {message}")),
            Error::Schema(m) => ApiError::Schema(m),
            Error::Instance(m) => ApiError::Instance(m),
            Error::Eval(m) => ApiError::Eval(m),
            Error::Unsupported(m) => ApiError::Unsupported(m),
            // Transformer/checker failures cannot reach the serving
            // surface through supported requests; they fold into the
            // internal bucket rather than widening the wire vocabulary.
            Error::Transformer(m) => ApiError::Internal(format!("transformer: {m}")),
            Error::Checker(m) => ApiError::Internal(format!("checker: {m}")),
            Error::Io(m) => ApiError::Io(m),
            Error::Fenced(m) => ApiError::Fenced(m),
        }
    }
}

/// Folds an [`ApiError`] back into the query-side [`Error`] taxonomy —
/// the inverse a wire client needs when it rebuilds per-query outcomes
/// (whose error slot is an [`Error`]) from a decoded batch reply.
/// Query-side variants map back one-to-one; service-side variants fold
/// into the closest query-side class, keeping the full message.
impl From<ApiError> for Error {
    fn from(e: ApiError) -> Error {
        match e {
            ApiError::Parse(m) => Error::parse("api", m),
            ApiError::Schema(m) => Error::schema(m),
            ApiError::Instance(m) | ApiError::Rejected(m) | ApiError::Corrupt(m) => {
                Error::instance(m)
            }
            ApiError::Eval(m) => Error::eval(m),
            ApiError::Unsupported(m) => Error::unsupported(m),
            ApiError::Io(m)
            | ApiError::Backpressure(m)
            | ApiError::Protocol(m)
            | ApiError::DeadlineExceeded(m)
            | ApiError::Draining(m) => Error::io(m),
            ApiError::Fenced(m) => Error::fenced(m),
            ApiError::SessionClosed(m) | ApiError::Internal(m) => Error::checker(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip_is_lossless() {
        let all = [
            ApiError::Parse("cypher: bad token".into()),
            ApiError::Schema("x".into()),
            ApiError::Instance("x".into()),
            ApiError::Eval("x".into()),
            ApiError::Unsupported("x".into()),
            ApiError::Rejected("duplicate key".into()),
            ApiError::Io("short write".into()),
            ApiError::Corrupt("bad crc".into()),
            ApiError::Fenced("fsync failed".into()),
            ApiError::Backpressure("queue full".into()),
            ApiError::Protocol("oversized frame".into()),
            ApiError::SessionClosed("worker panicked".into()),
            ApiError::Internal("invariant".into()),
            ApiError::DeadlineExceeded("budget spent in queue".into()),
            ApiError::Draining("server is shutting down".into()),
        ];
        let mut codes: Vec<u16> = all.iter().map(ApiError::code).collect();
        codes.dedup();
        assert_eq!(codes.len(), all.len(), "wire codes must be distinct");
        for e in all {
            let (code, message) = e.to_wire();
            assert_eq!(ApiError::from_wire(code, message), e);
        }
    }

    #[test]
    fn retryable_predicate_covers_transient_errors_only() {
        assert!(ApiError::Backpressure("queue full".into()).is_retryable());
        assert!(ApiError::DeadlineExceeded("budget spent".into()).is_retryable());
        assert!(ApiError::Draining("shutting down".into()).is_retryable());
        assert!(!ApiError::Rejected("duplicate key".into()).is_retryable());
        assert!(!ApiError::Fenced("fsync failed".into()).is_retryable());
        assert!(!ApiError::Internal("invariant".into()).is_retryable());
        assert!(!ApiError::Io("short write".into()).is_retryable());
    }

    #[test]
    fn unknown_code_degrades_to_internal() {
        let e = ApiError::from_wire(999, "future variant");
        assert!(matches!(e, ApiError::Internal(_)));
        assert!(e.to_string().contains("future variant"));
    }

    #[test]
    fn from_error_preserves_reporting() {
        let e: ApiError = Error::parse("cypher", "unexpected `)`").into();
        assert!(e.to_string().contains("cypher"));
        assert!(e.to_string().contains("unexpected"));
        assert!(ApiError::from(Error::fenced("wal")).is_fenced());
    }
}
