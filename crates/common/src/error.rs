//! Error handling shared by every crate in the workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// The unified error type of the Graphiti reproduction.
///
/// Variants are intentionally coarse-grained: each one identifies the
/// subsystem that failed plus a human-readable message, which is what the
/// command-line tools and the experiment harness surface to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A lexer or parser error (Cypher, SQL, or transformer DSL).
    Parse {
        /// Which language was being parsed (e.g. `"cypher"`, `"sql"`).
        language: &'static str,
        /// Human-readable description including position information.
        message: String,
    },
    /// A schema is malformed or a query refers to unknown schema elements.
    Schema(String),
    /// A database instance violates its schema or integrity constraints.
    Instance(String),
    /// Runtime evaluation failure (type error, unknown column, ...).
    Eval(String),
    /// The transpiler does not support the given construct.
    Unsupported(String),
    /// A transformer could not be applied or inverted.
    Transformer(String),
    /// An equivalence-checking backend failed or gave up.
    Checker(String),
    /// An I/O operation failed (durability layer, file import/export).
    Io(String),
    /// A durable store has fenced itself read-only after an I/O failure
    /// whose outcome cannot be trusted (see `graphiti-store`).
    Fenced(String),
}

impl Error {
    /// Builds a parse error for `language` with the given message.
    pub fn parse(language: &'static str, message: impl Into<String>) -> Self {
        Error::Parse { language, message: message.into() }
    }

    /// Builds a schema error.
    pub fn schema(message: impl Into<String>) -> Self {
        Error::Schema(message.into())
    }

    /// Builds an instance error.
    pub fn instance(message: impl Into<String>) -> Self {
        Error::Instance(message.into())
    }

    /// Builds an evaluation error.
    pub fn eval(message: impl Into<String>) -> Self {
        Error::Eval(message.into())
    }

    /// Builds an "unsupported construct" error.
    pub fn unsupported(message: impl Into<String>) -> Self {
        Error::Unsupported(message.into())
    }

    /// Builds a transformer error.
    pub fn transformer(message: impl Into<String>) -> Self {
        Error::Transformer(message.into())
    }

    /// Builds a checker error.
    pub fn checker(message: impl Into<String>) -> Self {
        Error::Checker(message.into())
    }

    /// Builds an I/O error.
    pub fn io(message: impl Into<String>) -> Self {
        Error::Io(message.into())
    }

    /// Builds a fenced-store error.
    pub fn fenced(message: impl Into<String>) -> Self {
        Error::Fenced(message.into())
    }

    /// Returns `true` if this error reports a fenced (read-only
    /// degraded) store.
    pub fn is_fenced(&self) -> bool {
        matches!(self, Error::Fenced(_))
    }

    /// Returns `true` if this error indicates an unsupported construct
    /// rather than a hard failure.
    pub fn is_unsupported(&self) -> bool {
        matches!(self, Error::Unsupported(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { language, message } => write!(f, "{language} parse error: {message}"),
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Instance(m) => write!(f, "instance error: {m}"),
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Transformer(m) => write!(f, "transformer error: {m}"),
            Error::Checker(m) => write!(f, "checker error: {m}"),
            Error::Io(m) => write!(f, "i/o error: {m}"),
            Error::Fenced(m) => write!(f, "store fenced: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_subsystem() {
        let e = Error::parse("cypher", "unexpected token `)` at 12");
        assert!(e.to_string().contains("cypher"));
        assert!(e.to_string().contains("unexpected token"));
    }

    #[test]
    fn unsupported_flag() {
        assert!(Error::unsupported("variable-length paths").is_unsupported());
        assert!(!Error::eval("boom").is_unsupported());
    }

    #[test]
    fn fenced_flag() {
        assert!(Error::fenced("wal fsync failed").is_fenced());
        assert!(!Error::io("short write").is_fenced());
        assert!(Error::io("enospc").to_string().contains("i/o error"));
    }
}
