//! `FaultLink`: deterministic wire-fault injection for socket traffic.
//!
//! The store's `FaultVfs` proved out a method — make failure a
//! *scheduled, deterministic* event indexed by operation count, then
//! sweep the index over a whole workload and assert invariants after
//! every single fault point.  `FaultLink` is the same philosophy one
//! layer up: a TCP proxy that forwards bytes between a client and a
//! server, counting **transfer operations** (each successful read of a
//! chunk in either direction is one op, shared across both directions
//! and all connections), and injecting one configured fault when the
//! counter reaches a target index:
//!
//! * [`LinkFault::Disconnect`] — drop the connection instead of
//!   forwarding the chunk (the bytes vanish; both sides see a dead
//!   peer);
//! * [`LinkFault::Stall`] — sit on the chunk for a fixed duration
//!   before forwarding it (exercising idle/stall/deadline governors);
//! * [`LinkFault::TornWrite`] — forward only the first half of the
//!   chunk, then drop the connection (a torn frame mid-flight).
//!
//! The op counter is 1-based and monotone across the proxy's lifetime,
//! so a sweep driver can probe a workload once (counting total ops with
//! no fault armed), then re-run it once per index — exactly the
//! probe-then-sweep shape of the store's chaos tests.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One scheduled wire fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// Drop the connection instead of forwarding the chunk.
    Disconnect,
    /// Delay the chunk this long before forwarding it.
    Stall(Duration),
    /// Forward only the first half of the chunk, then drop the
    /// connection.
    TornWrite,
}

#[derive(Debug)]
struct LinkState {
    /// Transfer ops performed so far (1-based: the first chunk is op 1).
    ops: AtomicU64,
    /// The op index at which to inject; 0 means no fault armed.
    fail_at: AtomicU64,
    /// Encoded fault kind: 0 disconnect, 1 torn write, else stall ms.
    fault_code: AtomicU64,
    stop: AtomicBool,
}

const FAULT_DISCONNECT: u64 = u64::MAX;
const FAULT_TORN: u64 = u64::MAX - 1;

/// A fault-injecting TCP proxy in front of one target address.
///
/// Connect clients to [`FaultLink::addr`]; each accepted connection is
/// paired with a fresh connection to the target and pumped in both
/// directions until one side closes or a fault kills it.
#[derive(Debug)]
pub struct FaultLink {
    addr: SocketAddr,
    state: Arc<LinkState>,
    accepter: Option<std::thread::JoinHandle<()>>,
}

impl FaultLink {
    /// Starts a proxy on an OS-assigned localhost port, forwarding to
    /// `target`.
    pub fn start(target: SocketAddr) -> std::io::Result<FaultLink> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let state = Arc::new(LinkState {
            ops: AtomicU64::new(0),
            fail_at: AtomicU64::new(0),
            fault_code: AtomicU64::new(FAULT_DISCONNECT),
            stop: AtomicBool::new(false),
        });
        // Short accept timeout so `stop` is observed promptly.
        listener.set_nonblocking(false)?;
        let accept_state = Arc::clone(&state);
        let accepter =
            std::thread::Builder::new().name("faultlink-accept".into()).spawn(move || {
                // A connect-poke from Drop unblocks accept(); afterwards
                // the stop flag ends the loop.
                for conn in listener.incoming() {
                    if accept_state.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(client) = conn else { continue };
                    let Ok(server) = TcpStream::connect(target) else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    pump_pair(client, server, Arc::clone(&accept_state));
                }
            })?;
        Ok(FaultLink { addr, state, accepter: Some(accepter) })
    }

    /// The proxy's listening address (point clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Transfer ops performed so far across all connections and both
    /// directions.
    pub fn ops(&self) -> u64 {
        self.state.ops.load(Ordering::SeqCst)
    }

    /// Arms `fault` to fire at the `k`-th transfer op (1-based,
    /// counted from proxy start).  Passing `0` disarms.
    pub fn fail_nth(&self, k: u64, fault: LinkFault) {
        let code = match fault {
            LinkFault::Disconnect => FAULT_DISCONNECT,
            LinkFault::TornWrite => FAULT_TORN,
            LinkFault::Stall(d) => (d.as_millis() as u64).min(FAULT_TORN - 1),
        };
        self.state.fault_code.store(code, Ordering::SeqCst);
        self.state.fail_at.store(k, Ordering::SeqCst);
    }

    /// Disarms any scheduled fault.
    pub fn disarm(&self) {
        self.state.fail_at.store(0, Ordering::SeqCst);
    }
}

impl Drop for FaultLink {
    fn drop(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // Poke the accepter out of accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accepter.take() {
            let _ = h.join();
        }
    }
}

/// Spawns the two one-directional pumps for one proxied connection.
fn pump_pair(client: TcpStream, server: TcpStream, state: Arc<LinkState>) {
    let (Ok(client_rx), Ok(server_rx)) = (client.try_clone(), server.try_clone()) else {
        let _ = client.shutdown(Shutdown::Both);
        let _ = server.shutdown(Shutdown::Both);
        return;
    };
    let up_state = Arc::clone(&state);
    let _ = std::thread::Builder::new()
        .name("faultlink-up".into())
        .spawn(move || pump(client_rx, server, up_state));
    let _ = std::thread::Builder::new()
        .name("faultlink-down".into())
        .spawn(move || pump(server_rx, client, state));
}

/// Forwards chunks from `from` to `to`, injecting the armed fault when
/// the global op counter hits the target.  Read timeouts keep the pump
/// responsive to the stop flag.
fn pump(mut from: TcpStream, mut to: TcpStream, state: Arc<LinkState>) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 4096];
    loop {
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let op = state.ops.fetch_add(1, Ordering::SeqCst) + 1;
        let fail_at = state.fail_at.load(Ordering::SeqCst);
        if fail_at != 0 && op == fail_at {
            match state.fault_code.load(Ordering::SeqCst) {
                FAULT_DISCONNECT => break,
                FAULT_TORN => {
                    let _ = to.write_all(&buf[..n / 2]);
                    let _ = to.flush();
                    break;
                }
                stall_ms => {
                    std::thread::sleep(Duration::from_millis(stall_ms));
                    if to.write_all(&buf[..n]).is_err() {
                        break;
                    }
                    continue;
                }
            }
        }
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    // Tear down both directions so the peers observe the death.
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}
