//! The differential soundness oracle (Theorem 5.7, executable form).
//!
//! For a schema-valid graph `G` over `Ψ_G` and an in-fragment Cypher query
//! `Q`, the paper proves that `⟦Q⟧(G)` is table-equivalent to
//! `⟦transpile(Q)⟧(Φ_sdt(G))` — evaluating the transpiled SQL over the
//! SDT-image of the graph. [`differential_oracle`] checks exactly that on
//! concrete inputs, and is the primitive every property test in the
//! workspace builds on.
//!
//! Evaluation runs through [`graphiti_engine`]: the (graph, SDT-image)
//! pair is frozen into a [`Snapshot`], the Cypher side executes through
//! the engine's cached-plan path, and the SQL side executes the transpiled
//! AST through the compiled-plan path — so every oracle invocation across
//! the workspace's property tests also differentially exercises the
//! production batch engine against the paper's semantics.
//! [`differential_oracle_batch`] amortizes one snapshot over many queries
//! and fans the checks out across a worker pool.

use graphiti_core::transpile_query;
use graphiti_cypher::ast::Query;
use graphiti_engine::{BatchQuery, Engine, QuerySurface, SqlTarget};
use graphiti_graph::{GraphInstance, GraphSchema};
use graphiti_relational::Table;

/// Why the oracle could not confirm soundness.
#[derive(Debug)]
pub enum OracleError {
    /// The pipeline itself failed (invalid instance, parse error,
    /// out-of-fragment query, evaluation error) before the two results
    /// could be compared.
    Pipeline(graphiti_common::Error),
    /// Both sides evaluated but the result tables differ — a soundness
    /// violation (or a deliberately injected bug).
    Mismatch {
        /// The query whose two evaluations disagree.
        query: String,
        /// The transpiled SQL text.
        sql: String,
        /// The Cypher-side result.
        cypher_result: Table,
        /// The SQL-side result.
        sql_result: Table,
    },
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::Pipeline(e) => write!(f, "oracle pipeline error: {e}"),
            OracleError::Mismatch { query, sql, cypher_result, sql_result } => write!(
                f,
                "soundness violation for `{query}`\nsql under test: {sql}\n\
                 cypher result:\n{cypher_result}\nsql result:\n{sql_result}"
            ),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<graphiti_common::Error> for OracleError {
    fn from(e: graphiti_common::Error) -> Self {
        OracleError::Pipeline(e)
    }
}

/// Checks the central soundness property on one concrete (graph, query)
/// pair: Cypher evaluation on `graph` must be table-equivalent (ordered
/// table-equivalent for `ORDER BY` queries) to SQL evaluation of the
/// transpiled query on the SDT-image of `graph`.
///
/// Returns the two (equivalent) result tables on success so callers can
/// assert further properties about them.
// The `Mismatch` variant carries both full result tables for diagnostics;
// it is constructed once per failing test, so its size is irrelevant.
#[allow(clippy::result_large_err)]
pub fn differential_oracle(
    schema: &GraphSchema,
    graph: &GraphInstance,
    cypher_text: &str,
) -> Result<(Table, Table), OracleError> {
    differential_oracle_impl(schema, graph, cypher_text, None)
}

/// Like [`differential_oracle`], but evaluates the provided SQL text (over
/// the *induced* schema) instead of the transpilation of the Cypher query.
///
/// This is the negative-testing entry point: feeding a deliberately wrong
/// SQL query must produce [`OracleError::Mismatch`], which keeps the
/// oracle's disagreement path itself under test.
#[allow(clippy::result_large_err)]
pub fn differential_oracle_against_sql(
    schema: &GraphSchema,
    graph: &GraphInstance,
    cypher_text: &str,
    sql_text: &str,
) -> Result<(Table, Table), OracleError> {
    differential_oracle_impl(schema, graph, cypher_text, Some(sql_text))
}

#[allow(clippy::result_large_err)]
fn differential_oracle_impl(
    schema: &GraphSchema,
    graph: &GraphInstance,
    cypher_text: &str,
    sql_text: Option<&str>,
) -> Result<(Table, Table), OracleError> {
    let engine = Engine::for_graph(schema.clone(), graph.clone())?;
    check_one(&engine, cypher_text, sql_text)
}

/// Checks the soundness property against **any** query surface — a bare
/// [`Engine`], a live `GraphStore`, or anything else implementing
/// [`QuerySurface`].  The Cypher query and its transpilation both
/// evaluate on the surface's *current* snapshot, so running this against
/// a store after a mutation history differentially tests the
/// incremental re-freeze path against the paper's semantics, with no
/// store-vs-engine dispatch anywhere in the oracle.
#[allow(clippy::result_large_err)]
pub fn differential_oracle_on<S: QuerySurface + ?Sized>(
    surface: &S,
    cypher_text: &str,
) -> Result<(Table, Table), OracleError> {
    check_one(surface, cypher_text, None)
}

/// Runs one (cypher, optional handwritten sql) check through a prebuilt
/// query surface.
#[allow(clippy::result_large_err)]
fn check_one<S: QuerySurface + ?Sized>(
    surface: &S,
    cypher_text: &str,
    sql_text: Option<&str>,
) -> Result<(Table, Table), OracleError> {
    let query = graphiti_cypher::parse_query(cypher_text)?;
    let cypher_result = surface.execute(&BatchQuery::cypher(cypher_text)).result?;
    let sql = match sql_text {
        None => transpile_query(surface.snapshot().ctx(), &query)?,
        Some(text) => graphiti_sql::parse_query(text)?,
    };
    let sql_result = surface.execute_sql_ast(&sql, &SqlTarget::Induced).result?;

    let equivalent = if matches!(query, Query::OrderBy { .. }) {
        cypher_result.equivalent_ordered(&sql_result)
    } else {
        cypher_result.equivalent(&sql_result)
    };
    if equivalent {
        Ok((cypher_result, sql_result))
    } else {
        Err(OracleError::Mismatch {
            query: cypher_text.to_string(),
            sql: graphiti_sql::query_to_string(&sql),
            cypher_result,
            sql_result,
        })
    }
}

/// Checks the soundness property for many queries against one graph,
/// freezing a single engine snapshot and fanning the per-query checks out
/// across `workers` threads.
///
/// Returns the per-query result tables in input order, or the first error
/// in input order.  Because the engine's plan cache is shared across the
/// batch, this also exercises concurrent cache fills under the oracle.
#[allow(clippy::result_large_err)]
pub fn differential_oracle_batch(
    schema: &GraphSchema,
    graph: &GraphInstance,
    queries: &[&str],
    workers: usize,
) -> Result<Vec<(Table, Table)>, OracleError> {
    let engine = Engine::for_graph(schema.clone(), graph.clone())?;
    let results = graphiti_engine::run_parallel(queries.len(), workers, |i| {
        check_one(&engine, queries[i], None)
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn oracle_passes_on_emp_fixtures() {
        let schema = fixtures::emp::schema();
        let graph = fixtures::emp::graph();
        for q in fixtures::emp::QUERIES {
            differential_oracle(&schema, &graph, q)
                .unwrap_or_else(|e| panic!("oracle failed on `{q}`: {e}"));
        }
    }

    #[test]
    fn oracle_passes_on_biomed_fixtures() {
        let schema = fixtures::biomed::schema();
        let graph = fixtures::biomed::figure_3a_graph();
        for q in fixtures::biomed::QUERIES {
            differential_oracle(&schema, &graph, q)
                .unwrap_or_else(|e| panic!("oracle failed on `{q}`: {e}"));
        }
    }

    #[test]
    fn oracle_rejects_out_of_fragment_queries() {
        let schema = fixtures::emp::schema();
        let graph = fixtures::emp::graph();
        let err = differential_oracle(&schema, &graph, "MATCH (n:NOPE) RETURN n.x AS x");
        assert!(matches!(err, Err(OracleError::Pipeline(_))));
    }

    #[test]
    fn oracle_reports_invalid_instances_as_pipeline_errors() {
        // An instance that is *not* schema-valid must surface as a pipeline
        // error, never as a bogus mismatch.
        let schema = fixtures::emp::schema();
        let mut graph = fixtures::emp::graph();
        graph.add_node("EMP", [("id", graphiti_common::Value::Int(1))]); // duplicate key
        let err = differential_oracle(&schema, &graph, fixtures::emp::QUERIES[0]);
        assert!(matches!(err, Err(OracleError::Pipeline(_))));
    }

    #[test]
    fn oracle_detects_a_wrong_sql_translation_as_mismatch() {
        // The motivating-example shape: the Cypher query counts employees
        // per department, the "translation" returns department names only —
        // the oracle must refute it, proving the disagreement path works.
        let schema = fixtures::emp::schema();
        let graph = fixtures::emp::graph();
        let cypher = "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname AS dept, Count(n) AS c";
        let wrong_sql = "SELECT d.dname AS dept, d.dnum AS c FROM DEPT AS d";
        let err = differential_oracle_against_sql(&schema, &graph, cypher, wrong_sql);
        match err {
            Err(OracleError::Mismatch { cypher_result, sql_result, .. }) => {
                assert!(!cypher_result.equivalent(&sql_result));
            }
            other => panic!("expected Mismatch, got {other:?}"),
        }
    }

    #[test]
    fn oracle_refutes_a_reversed_order_by() {
        // ORDER BY queries go through the *ordered* comparison: the same
        // bag of rows in the wrong order must be a mismatch.
        let schema = fixtures::emp::schema();
        let graph = fixtures::emp::graph();
        let cypher = "MATCH (n:EMP) RETURN n.id AS id ORDER BY id";
        let reversed = "SELECT n.id AS id FROM EMP AS n ORDER BY n.id DESC";
        let err = differential_oracle_against_sql(&schema, &graph, cypher, reversed);
        assert!(matches!(err, Err(OracleError::Mismatch { .. })), "got {err:?}");
    }

    #[test]
    fn oracle_accepts_a_correct_handwritten_translation() {
        // Sanity for the against-sql entry point: the transpiler's own
        // output, round-tripped through text, must still pass.
        let schema = fixtures::emp::schema();
        let graph = fixtures::emp::graph();
        let cypher = fixtures::emp::QUERIES[1];
        let ctx = graphiti_core::infer_sdt(&schema).unwrap();
        let sql = transpile_query(&ctx, &graphiti_cypher::parse_query(cypher).unwrap()).unwrap();
        let sql_text = graphiti_sql::query_to_string(&sql);
        differential_oracle_against_sql(&schema, &graph, cypher, &sql_text)
            .unwrap_or_else(|e| panic!("round-tripped transpilation rejected: {e}"));
    }
}
