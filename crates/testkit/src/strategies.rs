//! Proptest strategies for schema-valid graphs and in-fragment queries.
//!
//! Both strategies implement [`proptest::Strategy`] directly (rather than
//! being built from combinators) because they need the schema at generation
//! time: default-key values must be fresh per label, edge endpoints must
//! respect declared source/target types, and query templates must mention
//! labels and property keys that actually exist.

use graphiti_common::Value;
use graphiti_graph::{GraphInstance, GraphSchema};
use proptest::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Small string pool for non-key properties; collisions across nodes are
/// deliberate so that joins, `GROUP BY`, and `DISTINCT` have work to do.
const STRINGS: &[&str] = &["a", "b", "c"];

/// Strategy generating schema-valid [`GraphInstance`]s: see
/// [`arb_instance`].
#[derive(Debug, Clone)]
pub struct ArbInstance {
    schema: GraphSchema,
    max_nodes_per_type: usize,
    max_edges_per_type: usize,
}

impl Strategy for ArbInstance {
    type Value = GraphInstance;

    fn generate(&self, rng: &mut StdRng) -> GraphInstance {
        let mut g = GraphInstance::new();
        let mut by_label: std::collections::BTreeMap<String, Vec<graphiti_graph::NodeId>> =
            std::collections::BTreeMap::new();
        for ty in &self.schema.node_types {
            let count = rng.gen_range(0..=self.max_nodes_per_type);
            for i in 0..count {
                let props = props(&ty.keys, i as i64, rng);
                let id = g.add_node(ty.label.as_str(), props);
                by_label.entry(ty.label.to_string()).or_default().push(id);
            }
        }
        let mut next_edge_key = 0i64;
        for ty in &self.schema.edge_types {
            let sources = by_label.get(ty.src.as_str()).cloned().unwrap_or_default();
            let targets = by_label.get(ty.tgt.as_str()).cloned().unwrap_or_default();
            if sources.is_empty() || targets.is_empty() {
                continue;
            }
            let count = rng.gen_range(0..=self.max_edges_per_type);
            for _ in 0..count {
                let src = sources[rng.gen_range(0..sources.len())];
                let tgt = targets[rng.gen_range(0..targets.len())];
                let props = props(&ty.keys, next_edge_key, rng);
                next_edge_key += 1;
                g.add_edge(ty.label.as_str(), src, tgt, props);
            }
        }
        g
    }
}

/// Default-key values (the first key) are sequential, guaranteeing
/// per-label uniqueness; the remaining properties draw from small
/// int/string pools. Shared by node and edge generation.
fn props(
    keys: &[graphiti_common::Ident],
    fresh_key: i64,
    rng: &mut StdRng,
) -> Vec<(String, Value)> {
    keys.iter()
        .enumerate()
        .map(|(i, key)| {
            let value = if i == 0 { Value::Int(fresh_key) } else { random_value(rng) };
            (key.to_string(), value)
        })
        .collect()
}

fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..4usize) {
        0 => Value::Int(rng.gen_range(0..4i64)),
        1 => Value::str(STRINGS[rng.gen_range(0..STRINGS.len())]),
        2 => Value::Bool(rng.gen_bool(0.5)),
        _ => Value::Null,
    }
}

/// Returns a strategy for instances of `schema` with at most
/// `max_nodes_per_type` nodes and `max_edges_per_type` edges per type.
///
/// Generated instances always satisfy
/// [`GraphInstance::validate`](graphiti_graph::GraphInstance::validate):
/// labels are declared, default keys are fresh integers, non-key properties
/// draw from small pools (including `NULL`), and edges only connect nodes
/// of the declared endpoint types.
pub fn arb_instance(
    schema: &GraphSchema,
    max_nodes_per_type: usize,
    max_edges_per_type: usize,
) -> ArbInstance {
    ArbInstance { schema: schema.clone(), max_nodes_per_type, max_edges_per_type }
}

/// Strategy generating in-fragment Cypher query text: see [`arb_cypher`].
#[derive(Debug, Clone)]
pub struct ArbCypher {
    schema: GraphSchema,
}

impl Strategy for ArbCypher {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let nodes = &self.schema.node_types;
        assert!(!nodes.is_empty(), "arb_cypher requires at least one node type");
        let n = &nodes[rng.gen_range(0..nodes.len())];
        let nk = pick_key(&n.keys, rng);
        let template = if self.schema.edge_types.is_empty() {
            rng.gen_range(0..3usize)
        } else {
            rng.gen_range(0..8usize)
        };
        match template {
            // Single-type templates.
            0 => format!("MATCH (n:{l}) RETURN n.{nk} AS a", l = n.label),
            1 => {
                let c = rng.gen_range(0..3i64);
                format!(
                    "MATCH (n:{l}) WHERE n.{k} > {c} RETURN n.{k} AS a",
                    l = n.label,
                    k = n.keys[0]
                )
            }
            2 => format!("MATCH (n:{l}) RETURN Count(*) AS total", l = n.label),
            // Edge templates: pick an edge type and its endpoint types.
            _ => {
                let e = &self.schema.edge_types[rng.gen_range(0..self.schema.edge_types.len())];
                let src = self.schema.node_type(e.src.as_str()).expect("declared src");
                let tgt = self.schema.node_type(e.tgt.as_str()).expect("declared tgt");
                let sk = pick_key(&src.keys, rng);
                let tk = pick_key(&tgt.keys, rng);
                let pattern =
                    format!("(n:{s})-[e:{l}]->(m:{t})", s = src.label, l = e.label, t = tgt.label);
                match template {
                    3 => format!("MATCH {pattern} RETURN n.{sk} AS a, m.{tk} AS b"),
                    4 => format!("MATCH {pattern} RETURN m.{tk} AS grp, Count(n) AS cnt"),
                    5 => format!(
                        "MATCH (n:{s}) OPTIONAL MATCH {pattern} RETURN n.{sk} AS a, m.{tk} AS b",
                        s = src.label
                    ),
                    6 => format!(
                        "MATCH (m:{t}) WHERE EXISTS ({pattern}) RETURN m.{tk} AS a",
                        t = tgt.label
                    ),
                    _ => {
                        let c = rng.gen_range(0..3i64);
                        format!(
                            "MATCH {pattern} WHERE n.{k} > {c} RETURN n.{k} AS a, m.{tk} AS b",
                            k = src.keys[0]
                        )
                    }
                }
            }
        }
    }
}

fn pick_key(keys: &[graphiti_common::Ident], rng: &mut StdRng) -> String {
    keys[rng.gen_range(0..keys.len())].to_string()
}

/// Returns a strategy for small Featherweight Cypher queries over `schema`.
///
/// Every generated query parses and stays inside the transpiler's fragment:
/// templates cover plain matches, predicates, `Count(*)`, traversals,
/// grouping aggregation, `OPTIONAL MATCH`, and `EXISTS`, instantiated with
/// labels and property keys drawn from `schema`.
pub fn arb_cypher(schema: &GraphSchema) -> ArbCypher {
    assert!(
        !schema.node_types.is_empty(),
        "arb_cypher requires a schema with at least one node type"
    );
    ArbCypher { schema: schema.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Generated instances are schema-valid by construction, for both
        /// fixture schemas.
        #[test]
        fn generated_instances_validate(
            emp in arb_instance(&fixtures::emp::schema(), 5, 8),
            bio in arb_instance(&fixtures::biomed::schema(), 4, 6),
        ) {
            prop_assert!(emp.validate(&fixtures::emp::schema()).is_ok());
            prop_assert!(bio.validate(&fixtures::biomed::schema()).is_ok());
        }

        /// Generated queries parse and stay in the transpiler's fragment.
        #[test]
        fn generated_queries_parse_and_transpile(
            q in arb_cypher(&fixtures::emp::schema()),
        ) {
            let parsed = graphiti_cypher::parse_query(&q);
            prop_assert!(parsed.is_ok(), "`{}` failed to parse: {:?}", q, parsed.err());
            let ctx = graphiti_core::infer_sdt(&fixtures::emp::schema()).unwrap();
            let sql = graphiti_core::transpile_query(&ctx, &parsed.unwrap());
            prop_assert!(sql.is_ok(), "`{}` failed to transpile: {:?}", q, sql.err());
        }

        /// The paper's central soundness property, via the oracle, on
        /// random (graph, query) pairs over the EMP schema.
        #[test]
        fn oracle_holds_on_random_graphs_and_queries(
            graph in arb_instance(&fixtures::emp::schema(), 4, 6),
            q in arb_cypher(&fixtures::emp::schema()),
        ) {
            let schema = fixtures::emp::schema();
            let result = crate::oracle::differential_oracle(&schema, &graph, &q);
            prop_assert!(result.is_ok(), "{}", result.err().map(|e| e.to_string()).unwrap_or_default());
        }
    }
}
