//! Test support for the Graphiti workspace: shared fixtures, property-based
//! generators, and the differential soundness oracle.
//!
//! Every crate in the workspace tests some slice of the same pipeline
//! (schema → SDT inference → transpilation → evaluation), and before this
//! crate existed each test file re-declared its own EMP/DEPT schema and
//! hand-rolled graph builders. `graphiti-testkit` centralizes that:
//!
//! * [`fixtures`] — the canonical EMP/DEPT/WORK_AT scenario and the paper's
//!   Section 2 biomedical scenario (CONCEPT/PA/SENTENCE), as plain
//!   functions returning schemas, instances, and query batteries;
//! * [`strategies`] — proptest [`Strategy`](proptest::Strategy) values
//!   generating schema-valid [`GraphInstance`](graphiti_graph::GraphInstance)s
//!   for *any* schema, and parseable Featherweight Cypher query texts
//!   derived from a schema;
//! * [`oracle`] — [`differential_oracle`](oracle::differential_oracle), the
//!   executable form of the paper's Theorem 5.7: evaluating a Cypher query
//!   on a graph must agree with evaluating its transpilation on the
//!   SDT-image of that graph;
//! * [`faultlink`] — [`FaultLink`](faultlink::FaultLink), a
//!   deterministic fault-injecting TCP proxy (disconnect, stall, torn
//!   write by operation index) for wire-level chaos sweeps.
//!
//! # Example
//!
//! ```
//! use graphiti_testkit::{fixtures, oracle};
//!
//! let schema = fixtures::emp::schema();
//! let graph = fixtures::emp::graph();
//! for query in fixtures::emp::QUERIES {
//!     oracle::differential_oracle(&schema, &graph, query).unwrap();
//! }
//! ```

pub mod faultlink;
pub mod fixtures;
pub mod oracle;
pub mod strategies;

pub use faultlink::{FaultLink, LinkFault};
pub use oracle::{
    differential_oracle, differential_oracle_against_sql, differential_oracle_batch,
    differential_oracle_on, OracleError,
};
pub use strategies::{arb_cypher, arb_instance, ArbCypher, ArbInstance};
