//! Shared schemas, instances, and query batteries.
//!
//! Two scenarios cover the shapes the pipeline cares about:
//!
//! * [`emp`] — the EMP/DEPT/WORK_AT employee scenario used throughout the
//!   workspace's unit tests: two node types, one edge type, and a query
//!   battery exercising every Featherweight Cypher construct the
//!   transpiler supports.
//! * [`biomed`] — the paper's Section 2 motivating scenario
//!   (CONCEPT/PA/SENTENCE with CS and SP edges), including the Figure 3a
//!   instance on which the buggy translation of Figure 4 is refuted.

/// The EMP/DEPT/WORK_AT employee scenario.
pub mod emp {
    use graphiti_common::Value;
    use graphiti_graph::{EdgeType, GraphInstance, GraphSchema, NodeType};

    /// Schema: `EMP(id, ename)`, `DEPT(dnum, dname)`,
    /// `WORK_AT(wid): EMP -> DEPT`.
    pub fn schema() -> GraphSchema {
        GraphSchema::new()
            .with_node(NodeType::new("EMP", ["id", "ename"]))
            .with_node(NodeType::new("DEPT", ["dnum", "dname"]))
            .with_edge(EdgeType::new("WORK_AT", "EMP", "DEPT", ["wid"]))
    }

    /// A small deterministic instance: three employees, two departments,
    /// one employee without a department, and one shared department name.
    pub fn graph() -> GraphInstance {
        let mut g = GraphInstance::new();
        let ada = g.add_node("EMP", [("id", Value::Int(1)), ("ename", Value::str("Ada"))]);
        let bob = g.add_node("EMP", [("id", Value::Int(2)), ("ename", Value::str("Bob"))]);
        let _cy = g.add_node("EMP", [("id", Value::Int(3)), ("ename", Value::str("Cy"))]);
        let cs = g.add_node("DEPT", [("dnum", Value::Int(1)), ("dname", Value::str("CS"))]);
        let ee = g.add_node("DEPT", [("dnum", Value::Int(2)), ("dname", Value::str("CS"))]);
        g.add_edge("WORK_AT", ada, cs, [("wid", Value::Int(10))]);
        g.add_edge("WORK_AT", bob, ee, [("wid", Value::Int(11))]);
        g
    }

    /// Featherweight Cypher queries that are in the transpiler's fragment,
    /// one per supported construct (plain match, traversal, aggregation,
    /// filtering, `OPTIONAL MATCH`, `EXISTS`, `Count(*)`, self-join).
    pub const QUERIES: &[&str] = &[
        "MATCH (n:EMP) RETURN n.ename AS name, n.id AS id",
        "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.ename AS name, m.dname AS dept",
        "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname AS dept, Count(n) AS headcount",
        "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WHERE n.id > 0 AND m.dnum = 1 RETURN n.id AS id",
        "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) \
         RETURN n.id AS id, m.dnum AS dept",
        "MATCH (m:DEPT) WHERE EXISTS ((n:EMP)-[e:WORK_AT]->(m:DEPT)) RETURN m.dname AS dept",
        "MATCH (n:EMP) RETURN Count(*) AS total",
        "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) MATCH (n2:EMP)-[e2:WORK_AT]->(m:DEPT) \
         WHERE n.id < n2.id RETURN n.id AS a, n2.id AS b",
        // ORDER BY keys end in the unique `id` so the expected order is
        // total and the oracle's ordered comparison is well-defined.
        "MATCH (n:EMP) RETURN n.id AS id ORDER BY id",
        "MATCH (n:EMP) RETURN n.ename AS name, n.id AS id ORDER BY name, id",
    ];
}

/// The paper's Section 2 biomedical scenario.
pub mod biomed {
    use graphiti_common::Value;
    use graphiti_graph::{EdgeType, GraphInstance, GraphSchema, NodeType};

    /// Schema of Figure 2a: concepts, predication assertions, and
    /// sentences, linked by CS (concept-to-assertion) and SP
    /// (assertion-to-sentence) edges.
    pub fn schema() -> GraphSchema {
        GraphSchema::new()
            .with_node(NodeType::new("CONCEPT", ["CID", "Name"]))
            .with_node(NodeType::new("PA", ["PID", "PCSID"]))
            .with_node(NodeType::new("SENTENCE", ["SID", "PMID"]))
            .with_edge(EdgeType::new("CS", "CONCEPT", "PA", ["CSEID", "CSID"]))
            .with_edge(EdgeType::new("SP", "PA", "SENTENCE", ["SPID", "SPSID"]))
    }

    /// The Figure 3a instance: Atropine appears in two predication
    /// assertions that both occur in sentence 0, so the co-occurrence count
    /// of the motivating example is 2, not 1.
    pub fn figure_3a_graph() -> GraphInstance {
        let mut g = GraphInstance::new();
        let atropine =
            g.add_node("CONCEPT", [("CID", Value::Int(1)), ("Name", Value::str("Atropine"))]);
        let _aspirin =
            g.add_node("CONCEPT", [("CID", Value::Int(2)), ("Name", Value::str("Aspirin"))]);
        let pa0 = g.add_node("PA", [("PID", Value::Int(0)), ("PCSID", Value::Int(0))]);
        let pa1 = g.add_node("PA", [("PID", Value::Int(1)), ("PCSID", Value::Int(1))]);
        let s0 = g.add_node("SENTENCE", [("SID", Value::Int(0)), ("PMID", Value::Int(0))]);
        let _s1 = g.add_node("SENTENCE", [("SID", Value::Int(1)), ("PMID", Value::Int(0))]);
        g.add_edge("CS", atropine, pa0, [("CSEID", Value::Int(0)), ("CSID", Value::Int(0))]);
        g.add_edge("CS", atropine, pa1, [("CSEID", Value::Int(1)), ("CSID", Value::Int(1))]);
        g.add_edge("SP", pa0, s0, [("SPID", Value::Int(0)), ("SPSID", Value::Int(0))]);
        g.add_edge("SP", pa1, s0, [("SPID", Value::Int(1)), ("SPSID", Value::Int(0))]);
        g
    }

    /// In-fragment queries over the biomedical schema, exercising two-hop
    /// traversals and aggregation over them.
    pub const QUERIES: &[&str] = &[
        "MATCH (c:CONCEPT) RETURN c.Name AS name",
        "MATCH (c:CONCEPT)-[e:CS]->(p:PA) RETURN c.CID AS cid, p.PID AS pid",
        "MATCH (c:CONCEPT)-[e:CS]->(p:PA) RETURN c.Name AS name, Count(p) AS assertions",
        "MATCH (p:PA)-[e:SP]->(s:SENTENCE) WHERE s.PMID = 0 RETURN p.PID AS pid",
        "MATCH (c:CONCEPT) OPTIONAL MATCH (c:CONCEPT)-[e:CS]->(p:PA) \
         RETURN c.CID AS cid, p.PID AS pid",
        "MATCH (s:SENTENCE) WHERE EXISTS ((p:PA)-[e:SP]->(s:SENTENCE)) RETURN s.SID AS sid",
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_instances_are_schema_valid() {
        assert!(emp::graph().validate(&emp::schema()).is_ok());
        assert!(biomed::figure_3a_graph().validate(&biomed::schema()).is_ok());
    }

    #[test]
    fn fixture_queries_parse() {
        for q in emp::QUERIES.iter().chain(biomed::QUERIES) {
            graphiti_cypher::parse_query(q).unwrap_or_else(|e| panic!("`{q}` failed: {e}"));
        }
    }
}
