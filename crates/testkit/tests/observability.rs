//! Registry-dedup regression tests: the stats structs are **views over
//! the shared metrics registry**, not a second set of counters.
//!
//! PR10 replaced the store's, group committer's, and service's plain
//! `u64` counters with registry-backed cells, keeping `StoreStats` /
//! `ServiceStats` / `GroupStats` as point-in-time reads of the same
//! cells.  These tests pin that contract:
//!
//! * every pre-existing counter name still *moves* — a workload that
//!   commits, rejects, queries, checkpoints, and group-commits advances
//!   the registry cell, and the stats view reads the identical value;
//! * the registry's Prometheus rendering carries every pinned name, so
//!   a scrape sees the same vocabulary the stats structs always
//!   exposed.
//!
//! If a future change forks a counter (stats struct incremented here,
//! registry cell there), the equality assertions below catch the split.

use graphiti_common::Value;
use graphiti_store::{Delta, Graphiti, Session};
use graphiti_testkit::fixtures;
use std::path::PathBuf;

/// A unique scratch directory under the workspace `target/` dir (tests
/// must not touch paths outside the repository).
fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/testkit-observability")
        .join(format!("{tag}-{}-{}", std::process::id(), NEXT.fetch_add(1, Ordering::SeqCst)));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn emp(id: i64) -> Delta {
    let mut delta = Delta::new();
    delta.add_node("EMP", [("id", Value::Int(id)), ("ename", Value::str("obs"))]);
    delta
}

/// The pre-existing stats vocabulary, pinned name by name: each
/// `(registry name, stats view value)` pair must agree exactly, and the
/// names marked `moved` must be non-zero after the workload.
#[test]
fn every_preexisting_counter_name_still_moves_through_the_registry() {
    let dir = scratch("counters");
    let service = Graphiti::builder(fixtures::emp::schema())
        .bootstrap(fixtures::emp::graph())
        .durable(&dir)
        .group_commit_default()
        .open()
        .expect("durable open");

    // Workload: successful commits (some through the group committer,
    // which is the only write path here), one rejected commit
    // (duplicate default key), repeated queries (plan-cache hit +
    // miss), an idempotent replay, and a forced checkpoint.
    for i in 0..4 {
        service.commit(emp(100 + i)).expect("commit");
    }
    let dup = service.commit(emp(100));
    assert!(dup.is_err(), "duplicate default key must reject");
    let token = 0xAB_u128;
    let first = service
        .try_commit_tagged(emp(200), Some(token), None)
        .expect("tagged commit")
        .expect("not backpressured");
    let replay = service
        .try_commit_tagged(emp(200), Some(token), None)
        .expect("tagged replay")
        .expect("not backpressured");
    assert_eq!(first.generation, replay.generation, "replay returns the original generation");
    let mut session = service.session();
    for _ in 0..3 {
        session
            .query(&graphiti_engine::BatchQuery::cypher("MATCH (n:EMP) RETURN n.id AS i"))
            .expect("query");
    }
    session.checkpoint().expect("checkpoint");

    let stats = service.store().stats();
    let service_stats = service.service_stats();
    let registry = service.obs().registry();

    // (name, stats-view value, must-have-moved)
    let pins: &[(&str, u64, bool)] = &[
        ("graphiti_store_commits_total", stats.commits, true),
        ("graphiti_store_rejected_commits_total", stats.rejected_commits, true),
        ("graphiti_store_compactions_total", stats.compactions, false),
        ("graphiti_store_graph_clones_total", stats.graph_clones, false),
        ("graphiti_store_graph_reclaims_total", stats.graph_reclaims, false),
        ("graphiti_store_fence_events_total", stats.fence_events, false),
        ("graphiti_store_fenced_commits_total", stats.fenced_commits, false),
        ("graphiti_store_idempotent_replays_total", stats.idempotent_replays, true),
        ("graphiti_wal_records_total", stats.wal_records, true),
        ("graphiti_wal_bytes_total", stats.wal_bytes, true),
        ("graphiti_checkpoints_written_total", stats.checkpoints, true),
        ("graphiti_checkpoint_failures_total", stats.checkpoint_failures, false),
        ("graphiti_wal_segments_removed_total", stats.wal_segments_removed, false),
        ("graphiti_wal_replayed_commits_total", stats.replayed_commits, false),
        ("graphiti_wal_retries_total", stats.wal_retries, false),
        ("graphiti_wal_append_failures_total", stats.wal_append_failures, false),
        ("graphiti_groups_formed_total", service_stats.groups_formed, true),
        ("graphiti_group_members_total", service_stats.group_members, true),
        ("graphiti_backpressured_total", service_stats.backpressured, false),
    ];
    for (name, view, moved) in pins {
        let cell = registry.counter(name).get();
        assert_eq!(
            cell, *view,
            "{name}: registry cell ({cell}) and stats view ({view}) must be the same counter"
        );
        if *moved {
            assert!(cell > 0, "{name} must have moved under this workload");
        }
    }

    // The service-level view reads the same registry: the query
    // distribution counted our three queries (at least; the engine may
    // also have run none extra).
    assert!(service_stats.queries >= 3, "query histogram counts executions");
    assert_eq!(
        service_stats.queries,
        registry.histogram("graphiti_query_micros").count(),
        "ServiceStats::queries is the registry histogram's count"
    );
    assert_eq!(service_stats.commits, stats.commits);

    // Plan-cache counters joined the registry too, and the repeated
    // query must have hit.
    let hits = registry.counter("graphiti_plan_cache_hits_total").get();
    let misses = registry.counter("graphiti_plan_cache_misses_total").get();
    assert!(misses >= 1, "first execution misses the plan cache");
    assert!(hits >= 1, "repeated execution hits the plan cache");

    // A Prometheus scrape of the registry carries every pinned name.
    let rendered = service.obs().render_metrics();
    for (name, _, _) in pins {
        assert!(rendered.contains(name), "rendered metrics must include {name}");
    }
    for histogram in [
        "graphiti_commit_e2e_micros",
        "graphiti_wal_append_micros",
        "graphiti_wal_fsync_micros",
        "graphiti_group_commit_size",
        "graphiti_group_queue_wait_micros",
        "graphiti_query_micros",
    ] {
        assert!(rendered.contains(histogram), "rendered metrics must include {histogram}");
    }

    drop(session);
    drop(service);
    std::fs::remove_dir_all(&dir).ok();
}

/// Counter state survives checkpoint → reopen: the restored registry
/// cells seed from the checkpoint image exactly like the old plain
/// fields did.
#[test]
fn counters_restore_from_checkpoints_into_the_registry() {
    let dir = scratch("restore");
    let commits_before;
    {
        let service = Graphiti::builder(fixtures::emp::schema())
            .bootstrap(fixtures::emp::graph())
            .durable(&dir)
            .open()
            .expect("durable open");
        for i in 0..3 {
            service.commit(emp(300 + i)).expect("commit");
        }
        service.store().checkpoint_now().expect("checkpoint");
        commits_before = service.store().stats().commits;
        assert_eq!(commits_before, 3);
    }
    let reopened = Graphiti::builder(fixtures::emp::schema())
        .bootstrap(fixtures::emp::graph())
        .durable(&dir)
        .open()
        .expect("reopen");
    let stats = reopened.store().stats();
    assert_eq!(stats.commits, commits_before, "commit count survives reopen");
    assert_eq!(
        reopened.obs().registry().counter("graphiti_store_commits_total").get(),
        commits_before,
        "the restored count lives in the registry cell, not a shadow field"
    );
    drop(reopened);
    std::fs::remove_dir_all(&dir).ok();
}
