//! Chaos harness: every I/O operation the store performs is a potential
//! failure point, and none of them may break the commit contract.
//!
//! Each proptest case draws a random schema-valid mutation script, runs
//! it once fault-free through a counting [`FaultVfs`] to learn how many
//! VFS operations the script performs, then **sweeps**: for every k it
//! re-runs the script on a fresh directory with the k-th operation
//! forced to fail (alternating plain errors and torn short writes).
//! The invariants, regardless of where the fault lands:
//!
//! * **no panic, ever** — every failure surfaces as a typed
//!   [`StoreError`];
//! * a failed commit is **side-effect-free** (the store equals the
//!   oracle at the committed prefix and stays live), or the store
//!   **fences** read-only — readers keep serving the last published
//!   generation and further commits return `Fenced`;
//! * no generation publishes before its WAL record is durable: a
//!   post-crash reopen with the real filesystem recovers **exactly**
//!   the acknowledged prefix;
//! * recovery itself is sweepable: reopening a valid directory with a
//!   fault at every operation of the recovery path either succeeds
//!   exactly or fails typed.
//!
//! The sweep is exhaustive over call sites by construction — `FaultVfs`
//! counts reads too, so recovery-path reads are coverable.  The per-push
//! CI `chaos` job runs a modest case count; the nightly leg raises it
//! via `PROPTEST_CASES` (honored below).

use graphiti_common::{Ident, Value};
use graphiti_engine::{BatchQuery, SqlTarget};
use graphiti_graph::{GraphInstance, GraphSchema};
use graphiti_store::{
    Delta, DurabilityOptions, EdgeKey, FaultKind, FaultVfs, GraphStore, NodeKey, NodeRef, OpClass,
};
use graphiti_testkit::{arb_instance, fixtures};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Opens a durable store through [`GraphStore::builder`] — the one
/// supported entry point; every durable open in this harness funnels
/// through these two helpers.
fn open_durable_with(
    dir: &Path,
    schema: GraphSchema,
    bootstrap: GraphInstance,
    opts: DurabilityOptions,
) -> Result<GraphStore, graphiti_store::StoreError> {
    GraphStore::builder(schema).durable(dir).bootstrap(bootstrap).durability(opts).open()
}

/// Like [`open_durable_with`], with every I/O operation routed through
/// the given (fault-injecting) VFS.
fn open_durable_with_vfs(
    dir: &Path,
    schema: GraphSchema,
    bootstrap: GraphInstance,
    opts: DurabilityOptions,
    fs: Arc<dyn graphiti_store::Vfs>,
) -> Result<GraphStore, graphiti_store::StoreError> {
    GraphStore::builder(schema).durable(dir).bootstrap(bootstrap).durability(opts).vfs(fs).open()
}

/// `PROPTEST_CASES`-honoring case count (`ProptestConfig::with_cases`
/// would pin it, so the nightly deep run could not raise it).
fn cases(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default_cases)
}

/// A unique scratch directory under the workspace `target/` dir (tests
/// must not touch paths outside the repository).
fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/testkit-chaos")
        .join(format!("{tag}-{}-{}", std::process::id(), NEXT.fetch_add(1, Ordering::SeqCst)));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Both-layouts table equality plus query equivalence against the oracle.
fn assert_store_equals_oracle(live: &GraphStore, oracle: &GraphStore, context: &str) {
    assert_eq!(live.generation(), oracle.generation(), "generation ({context})");
    let (a, b) = (live.snapshot(), oracle.snapshot());
    let col_a = a.sql_columnar(&SqlTarget::Induced).unwrap();
    for (name, ta) in a.induced().tables() {
        let tb = b.induced().table(name).unwrap_or_else(|| panic!("missing `{name}` ({context})"));
        assert_eq!(ta, tb, "row image of `{name}` ({context})");
        assert_eq!(col_a.table(name).unwrap().to_table(), *tb, "columnar `{name}` ({context})");
    }
    assert_eq!(a.induced().tables().count(), b.induced().tables().count(), "table count");
    for q in fixtures::emp::QUERIES.iter().take(3) {
        let (lo, oo) = (
            live.engine().execute(&BatchQuery::cypher(*q)),
            oracle.engine().execute(&BatchQuery::cypher(*q)),
        );
        let (lo, oo) = (lo.result.expect(q), oo.result.expect(q));
        assert!(lo.equivalent(&oo), "query `{q}` diverges ({context}):\n{lo}\nvs\n{oo}");
    }
}

// ------------------------------------------------------ script generator
// Same shape as `durability.rs`'s (which documents why each test binary
// carries its own copy): random, valid-by-construction deltas.

fn random_prop_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..4usize) {
        0 => Value::Int(rng.gen_range(0..4i64)),
        1 => Value::str(["a", "b", "c"][rng.gen_range(0..3usize)]),
        2 => Value::Bool(rng.gen_bool(0.5)),
        _ => Value::Null,
    }
}

fn props_for(keys: &[Ident], fresh_pk: i64, rng: &mut StdRng) -> Vec<(String, Value)> {
    keys.iter()
        .enumerate()
        .map(|(i, k)| {
            let v = if i == 0 { Value::Int(fresh_pk) } else { random_prop_value(rng) };
            (k.to_string(), v)
        })
        .collect()
}

fn random_delta(
    rng: &mut StdRng,
    store: &GraphStore,
    schema: &GraphSchema,
    next_pk: &mut i64,
) -> Delta {
    let mut delta = Delta::new();
    let nodes = store.node_directory();
    let edges = store.edge_directory();
    let mut removed_nodes: HashSet<NodeKey> = HashSet::new();
    let mut removed_edges: HashSet<EdgeKey> = HashSet::new();
    let mut staged: Vec<(NodeRef, Ident)> = Vec::new();
    let mut staged_endpoints: HashSet<NodeKey> = HashSet::new();
    let ops = rng.gen_range(1..=5usize);
    for _ in 0..ops {
        match rng.gen_range(0..100u32) {
            0..=39 => {
                let ty = &schema.node_types[rng.gen_range(0..schema.node_types.len())];
                *next_pk += 1;
                let r = delta.add_node(ty.label.clone(), props_for(&ty.keys, *next_pk, rng));
                staged.push((r, ty.label.clone()));
            }
            40..=64 if !schema.edge_types.is_empty() => {
                let ty = &schema.edge_types[rng.gen_range(0..schema.edge_types.len())];
                let pick = |label: &Ident,
                            rng: &mut StdRng,
                            staged: &[(NodeRef, Ident)]|
                 -> Option<NodeRef> {
                    let mut candidates: Vec<NodeRef> = nodes
                        .iter()
                        .filter(|(k, l, _)| l == label && !removed_nodes.contains(k))
                        .map(|(k, _, _)| NodeRef::Key(*k))
                        .collect();
                    candidates.extend(staged.iter().filter(|(_, l)| l == label).map(|(r, _)| *r));
                    if candidates.is_empty() {
                        None
                    } else {
                        Some(candidates[rng.gen_range(0..candidates.len())])
                    }
                };
                let (Some(src), Some(tgt)) =
                    (pick(&ty.src, rng, &staged), pick(&ty.tgt, rng, &staged))
                else {
                    continue;
                };
                *next_pk += 1;
                delta.add_edge(ty.label.clone(), src, tgt, props_for(&ty.keys, *next_pk, rng));
                for endpoint in [src, tgt] {
                    if let NodeRef::Key(k) = endpoint {
                        staged_endpoints.insert(k);
                    }
                }
            }
            65..=79 => {
                let candidates: Vec<EdgeKey> = edges
                    .iter()
                    .filter(|(k, ..)| !removed_edges.contains(k))
                    .map(|(k, ..)| *k)
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let victim = candidates[rng.gen_range(0..candidates.len())];
                delta.remove_edge(victim);
                removed_edges.insert(victim);
            }
            80..=87 => {
                let candidates: Vec<NodeKey> = nodes
                    .iter()
                    .filter(|(k, _, _)| {
                        !removed_nodes.contains(k)
                            && !staged_endpoints.contains(k)
                            && edges
                                .iter()
                                .filter(|(ek, ..)| !removed_edges.contains(ek))
                                .all(|(_, _, _, s, t)| s != k && t != k)
                    })
                    .map(|(k, _, _)| *k)
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let victim = candidates[rng.gen_range(0..candidates.len())];
                delta.remove_node(victim);
                removed_nodes.insert(victim);
            }
            _ => {
                let candidates: Vec<(NodeKey, Ident)> = nodes
                    .iter()
                    .filter(|(k, _, _)| !removed_nodes.contains(k))
                    .map(|(k, l, _)| (*k, l.clone()))
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let (key, label) = candidates[rng.gen_range(0..candidates.len())].clone();
                let ty = schema.node_type(label.as_str()).expect("declared");
                if ty.keys.len() > 1 && rng.gen_bool(0.7) {
                    let prop = &ty.keys[rng.gen_range(1..ty.keys.len())];
                    delta.set_node_prop(key, prop.clone(), random_prop_value(rng));
                } else {
                    *next_pk += 1;
                    delta.set_node_prop(key, ty.keys[0].clone(), Value::Int(*next_pk));
                }
            }
        }
    }
    delta
}

/// Generates a fixed script by evolving an in-memory oracle, so every
/// faulted run replays byte-identical deltas.
fn scripted(
    schema: &GraphSchema,
    graph: &GraphInstance,
    rng: &mut StdRng,
    commits: usize,
) -> Vec<Delta> {
    let oracle = GraphStore::open(schema.clone(), graph.clone()).expect("valid instance");
    let mut next_pk: i64 = 1_000_000;
    let mut deltas = Vec::with_capacity(commits);
    for _ in 0..commits {
        let d = random_delta(rng, &oracle, schema, &mut next_pk);
        oracle.commit(d.clone()).expect("valid-by-construction");
        deltas.push(d);
    }
    deltas
}

/// An in-memory oracle at generation `prefix` of the script.
fn oracle_at(
    schema: &GraphSchema,
    graph: &GraphInstance,
    deltas: &[Delta],
    prefix: usize,
) -> GraphStore {
    let oracle = GraphStore::open(schema.clone(), graph.clone()).expect("valid instance");
    for d in &deltas[..prefix] {
        oracle.commit(d.clone()).expect("replaying a committed prefix");
    }
    oracle
}

fn chaos_opts(rng: &mut StdRng) -> DurabilityOptions {
    DurabilityOptions {
        // Strict redo rule: the fsync path is where fencing lives.
        fsync_each_commit: true,
        checkpoint_interval: [0, 2, 3][rng.gen_range(0..3usize)],
        keep_checkpoints: 2,
        // No retries: the first injected failure must surface, so the
        // sweep observes every failure path deterministically.
        wal_retry_attempts: 0,
        wal_retry_backoff_ms: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    /// The main sweep: fail the k-th VFS operation, for every k the
    /// script performs, and check the whole contract each time.
    #[test]
    fn every_io_failure_point_preserves_the_commit_contract(
        graph in arb_instance(&fixtures::emp::schema(), 3, 5),
        seed in any::<u64>(),
    ) {
        let schema = fixtures::emp::schema();
        let mut rng = StdRng::seed_from_u64(seed);
        let opts = chaos_opts(&mut rng);
        let commits = rng.gen_range(2..=4usize);
        let deltas = scripted(&schema, &graph, &mut rng, commits);

        // Probe run: count the operations a fault-free run performs.
        let total_ops = {
            let dir = scratch("probe");
            let vfs = FaultVfs::default();
            let store = open_durable_with_vfs(
                &dir, schema.clone(), graph.clone(), opts, Arc::new(vfs.clone()),
            ).expect("fault-free open");
            for d in &deltas {
                store.commit(d.clone()).expect("fault-free commit");
            }
            drop(store);
            std::fs::remove_dir_all(&dir).ok();
            vfs.ops()
        };
        prop_assert!(total_ops >= 5, "the probe must observe the script's I/O");

        for k in 1..=total_ops {
            let kind = if k % 2 == 0 { FaultKind::ShortWrite } else { FaultKind::Error };
            let dir = scratch("sweep");
            let vfs = FaultVfs::default();
            vfs.fail_nth_kind(k, kind);
            let opened = open_durable_with_vfs(
                &dir, schema.clone(), graph.clone(), opts, Arc::new(vfs.clone()),
            );
            let mut committed = 0usize;
            match opened {
                Err(e) => {
                    // A fault during bootstrap fails typed; the partial
                    // directory must still be recoverable or typed-bad.
                    prop_assert!(!e.is_rejected(), "bootstrap fault misclassified: {e}");
                }
                Ok(store) => {
                    let mut failure: Option<graphiti_store::StoreError> = None;
                    for d in &deltas {
                        match store.commit(d.clone()) {
                            Ok(_) => committed += 1,
                            Err(e) => { failure = Some(e); break; }
                        }
                    }
                    if let Some(e) = failure {
                        prop_assert!(
                            e.is_io() || e.is_fenced(),
                            "an injected fault surfaced as `{e}` — only Io (rolled back) \
                             or Fenced are legal for a valid delta"
                        );
                        // Side-effect-free or fenced: either way the
                        // published state is exactly the committed prefix.
                        prop_assert_eq!(store.is_fenced(), e.is_fenced());
                        let oracle = oracle_at(&schema, &graph, &deltas, committed);
                        assert_store_equals_oracle(&store, &oracle, &format!("after fault k={k}"));
                        if e.is_fenced() {
                            // Fenced: commits are refused, reads keep serving.
                            let retry = store.commit(deltas[committed].clone());
                            prop_assert!(retry.unwrap_err().is_fenced());
                        } else {
                            // Live: the same delta goes through on retry
                            // (the one-shot fault is spent).
                            store.commit(deltas[committed].clone()).expect("retry after Io");
                            committed += 1;
                        }
                    }
                    drop(store);
                }
            }
            // Reopen on the real filesystem: recovery must land exactly
            // on the acknowledged prefix — never a partial commit, never
            // a lost acknowledged one.  (One-shot faults always roll the
            // failed record back, so "exact" is the right bound.)
            if committed > 0 || wal_or_checkpoint_exists(&dir) {
                let recovered = open_durable_with(
                    &dir, schema.clone(), GraphInstance::new(), opts,
                ).expect("reopen after a contained fault must recover");
                let oracle = oracle_at(&schema, &graph, &deltas, committed);
                assert_store_equals_oracle(&recovered, &oracle, &format!("recovery k={k}"));
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// fsyncgate, property form: syncs start failing *and stay failing*
    /// at a random point (writes/reads/truncation still work).  The
    /// store must fence — and `checkpoint_now` must fully recover it
    /// once the disk heals.
    #[test]
    fn sticky_sync_failure_fences_and_checkpoint_now_recovers(
        graph in arb_instance(&fixtures::emp::schema(), 3, 5),
        seed in any::<u64>(),
    ) {
        let schema = fixtures::emp::schema();
        let mut rng = StdRng::seed_from_u64(seed);
        let opts = chaos_opts(&mut rng);
        let commits = rng.gen_range(2..=4usize);
        let deltas = scripted(&schema, &graph, &mut rng, commits);
        let dir = scratch("sticky");
        let vfs = FaultVfs::default();
        let store = open_durable_with_vfs(
            &dir, schema.clone(), graph.clone(), opts, Arc::new(vfs.clone()),
        ).expect("fault-free open");
        let healthy = rng.gen_range(0..deltas.len());
        for d in &deltas[..healthy] {
            store.commit(d.clone()).expect("pre-fault commit");
        }
        // The disk stops syncing (but not writing) somewhere in the next
        // commit — or a later one.
        vfs.fail_from(vfs.ops() + rng.gen_range(1..=8u64));
        vfs.exempt(&[OpClass::Read, OpClass::Write, OpClass::SetLen, OpClass::Meta]);
        let mut committed = healthy;
        let mut fenced = false;
        for d in &deltas[healthy..] {
            match store.commit(d.clone()) {
                Ok(_) => committed += 1,
                Err(e) => {
                    prop_assert!(e.is_fenced(), "a sync failure must fence, got: {e}");
                    fenced = true;
                    break;
                }
            }
        }
        if fenced {
            prop_assert!(store.is_fenced());
            let oracle = oracle_at(&schema, &graph, &deltas, committed);
            assert_store_equals_oracle(&store, &oracle, "fenced reads");
            // The disk heals: checkpoint_now re-captures state on fresh
            // files and lifts the fence; the interrupted script finishes.
            vfs.clear();
            store.checkpoint_now().expect("fence recovery");
            prop_assert!(!store.is_fenced());
            for d in &deltas[committed..] {
                store.commit(d.clone()).expect("post-recovery commit");
            }
        }
        let oracle = oracle_at(&schema, &graph, &deltas, deltas.len());
        if fenced || committed == deltas.len() {
            assert_store_equals_oracle(&store, &oracle, "final state");
        }
        drop(store);
        let recovered = open_durable_with(
            &dir, schema.clone(), GraphInstance::new(), opts,
        ).expect("reopen");
        if fenced || committed == deltas.len() {
            assert_store_equals_oracle(&recovered, &oracle, "final recovery");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Recovery-path sweep: a valid directory reopened with a fault at
    /// every operation of the recovery path (reads included) either
    /// recovers exactly or fails with a typed error — never a panic,
    /// never a silently wrong store.
    #[test]
    fn recovery_under_injected_faults_is_exact_or_typed(
        graph in arb_instance(&fixtures::emp::schema(), 3, 5),
        seed in any::<u64>(),
    ) {
        let schema = fixtures::emp::schema();
        let mut rng = StdRng::seed_from_u64(seed);
        let opts = chaos_opts(&mut rng);
        let commits = rng.gen_range(2..=4usize);
        let deltas = scripted(&schema, &graph, &mut rng, commits);
        let dir = scratch("recovery-base");
        {
            let store = open_durable_with(
                &dir, schema.clone(), graph.clone(), opts,
            ).expect("durable open");
            for d in &deltas {
                store.commit(d.clone()).expect("fault-free commit");
            }
        }
        let oracle = oracle_at(&schema, &graph, &deltas, deltas.len());
        // Probe the recovery path's operation count.
        let recovery_ops = {
            let probe_dir = scratch("recovery-probe");
            copy_dir(&dir, &probe_dir);
            let vfs = FaultVfs::default();
            let recovered = open_durable_with_vfs(
                &probe_dir, schema.clone(), GraphInstance::new(), opts,
                Arc::new(vfs.clone()),
            ).expect("fault-free recovery");
            assert_store_equals_oracle(&recovered, &oracle, "probe recovery");
            drop(recovered);
            std::fs::remove_dir_all(&probe_dir).ok();
            vfs.ops()
        };
        for k in 1..=recovery_ops {
            let case_dir = scratch("recovery-sweep");
            copy_dir(&dir, &case_dir);
            let vfs = FaultVfs::default();
            vfs.fail_nth(k);
            match open_durable_with_vfs(
                &case_dir, schema.clone(), GraphInstance::new(), opts,
                Arc::new(vfs.clone()),
            ) {
                Ok(recovered) => {
                    // The fault landed on a best-effort step: the result
                    // must still be exact.
                    assert_store_equals_oracle(
                        &recovered, &oracle, &format!("faulted recovery k={k}"),
                    );
                }
                Err(e) => {
                    prop_assert!(
                        !e.is_rejected() && !e.is_fenced(),
                        "recovery fault misclassified as `{e}`"
                    );
                }
            }
            std::fs::remove_dir_all(&case_dir).ok();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Whether the directory holds any durable artifact worth recovering
/// (a bootstrap fault can abort before either file exists).
fn wal_or_checkpoint_exists(dir: &Path) -> bool {
    std::fs::read_dir(dir).is_ok_and(|entries| {
        entries.filter_map(|e| e.ok()).any(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.ends_with(".wal") || name.ends_with(".ckpt")
        })
    })
}
