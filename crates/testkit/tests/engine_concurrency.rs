//! Concurrency and plan-cache properties of the batch engine.
//!
//! The engine's contract is that batching, worker count, and the plan
//! cache are *invisible* to results: a parallel batch over any snapshot
//! must produce exactly the tables a serial pass produces, and a warmed
//! cache must never change an outcome.  These properties are checked here
//! on random schema-valid instances and random in-fragment queries, with
//! the differential oracle riding along so the parallel path is also
//! checked against the paper's semantics (Theorem 5.7).
//!
//! The nightly differential-fuzz CI job raises the case count via
//! `PROPTEST_CASES`.

use graphiti_engine::{BatchQuery, Engine, SqlTarget};
use graphiti_testkit::{differential_oracle_batch, fixtures, strategies};
use proptest::prelude::*;

/// Builds the mixed Cypher + transpiled-SQL batch for a set of query
/// texts over a frozen engine.
fn mixed_batch(engine: &Engine, queries: &[String]) -> Vec<BatchQuery> {
    let mut batch = Vec::new();
    for text in queries {
        batch.push(BatchQuery::cypher(text));
        // The transpilation, as a service would receive it: text keyed
        // through the plan cache.
        if let Ok(parsed) = graphiti_cypher::parse_query(text) {
            if let Ok(sql) = graphiti_core::transpile_query(engine.snapshot().ctx(), &parsed) {
                batch.push(BatchQuery::sql(graphiti_sql::query_to_string(&sql)));
            }
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A parallel batch produces, per index, exactly the serial result —
    /// same tables, same errors — at every worker count.
    #[test]
    fn parallel_batches_equal_serial_batches(
        graph in strategies::arb_instance(&fixtures::emp::schema(), 4, 6),
        queries in proptest::collection::vec(strategies::arb_cypher(&fixtures::emp::schema()), 1..6),
    ) {
        let engine = Engine::for_graph(fixtures::emp::schema(), graph).unwrap();
        let batch = mixed_batch(&engine, &queries);
        let serial = engine.run_batch(&batch, 1);
        for workers in [2, 4, 8] {
            let parallel = engine.run_batch(&batch, workers);
            prop_assert_eq!(serial.outcomes.len(), parallel.outcomes.len());
            for (s, p) in serial.outcomes.iter().zip(parallel.outcomes.iter()) {
                match (&s.result, &p.result) {
                    (Ok(st), Ok(pt)) => prop_assert_eq!(st, pt),
                    (Err(_), Err(_)) => {}
                    other => prop_assert!(false, "serial/parallel disagree: {other:?}"),
                }
            }
        }
    }

    /// The plan cache never changes results: a cold engine and a warmed
    /// engine produce identical outcomes, and the warm run actually hits.
    #[test]
    fn warm_cache_equals_cold_cache(
        graph in strategies::arb_instance(&fixtures::biomed::schema(), 3, 5),
        queries in proptest::collection::vec(strategies::arb_cypher(&fixtures::biomed::schema()), 1..5),
    ) {
        let engine = Engine::for_graph(fixtures::biomed::schema(), graph).unwrap();
        let batch = mixed_batch(&engine, &queries);
        // (Duplicate texts inside the random batch may let even the cold
        // run hit, so only the warm run's counters are exact.)
        let cold = engine.run_batch(&batch, 4);
        let warm = engine.run_batch(&batch, 4);
        prop_assert_eq!(warm.cache_misses, 0);
        prop_assert_eq!(warm.cache_hits as usize, batch.len());
        for (c, w) in cold.outcomes.iter().zip(warm.outcomes.iter()) {
            match (&c.result, &w.result) {
                (Ok(ct), Ok(wt)) => prop_assert_eq!(ct, wt),
                (Err(_), Err(_)) => {}
                other => prop_assert!(false, "cold/warm disagree: {other:?}"),
            }
        }
    }

    /// The parallel differential oracle holds on random (graph, queries)
    /// pairs: Cypher-on-graph stays equivalent to transpiled-SQL-on-image
    /// when evaluated concurrently through one shared engine.
    #[test]
    fn oracle_holds_under_parallel_batches(
        graph in strategies::arb_instance(&fixtures::emp::schema(), 4, 6),
        queries in proptest::collection::vec(strategies::arb_cypher(&fixtures::emp::schema()), 1..8),
    ) {
        let texts: Vec<&str> = queries.iter().map(String::as_str).collect();
        let schema = fixtures::emp::schema();
        let result = differential_oracle_batch(&schema, &graph, &texts, 4);
        prop_assert!(result.is_ok(), "{}", result.err().map(|e| e.to_string()).unwrap_or_default());
        prop_assert_eq!(result.unwrap().len(), texts.len());
    }
}

/// Deterministic regression: one snapshot, every worker count, every
/// fixture query, results must be bit-identical to the serial pass.
#[test]
fn fixture_batteries_are_worker_count_invariant() {
    for (schema, graph, queries) in [
        (fixtures::emp::schema(), fixtures::emp::graph(), fixtures::emp::QUERIES),
        (
            fixtures::biomed::schema(),
            fixtures::biomed::figure_3a_graph(),
            fixtures::biomed::QUERIES,
        ),
    ] {
        let engine = Engine::for_graph(schema, graph).unwrap();
        let batch: Vec<BatchQuery> = queries.iter().map(|q| BatchQuery::cypher(*q)).collect();
        let serial = engine.run_batch(&batch, 1);
        assert_eq!(serial.err_count(), 0);
        for workers in [2, 3, 8, 32] {
            let parallel = engine.run_batch(&batch, workers);
            for (s, p) in serial.outcomes.iter().zip(parallel.outcomes.iter()) {
                assert_eq!(s.result.as_ref().unwrap(), p.result.as_ref().unwrap());
            }
        }
    }
}

/// The induced target and the graph stay consistent through the engine:
/// a handwritten SQL probe of the induced instance agrees with the
/// corresponding Cypher count.
#[test]
fn induced_target_is_queryable_alongside_the_graph() {
    let engine = Engine::for_graph(fixtures::emp::schema(), fixtures::emp::graph()).unwrap();
    let cypher = engine.execute(&BatchQuery::cypher("MATCH (n:EMP) RETURN Count(*) AS c"));
    let sql = engine.execute(&BatchQuery::Sql {
        text: "SELECT Count(*) AS c FROM EMP AS e".to_string(),
        target: SqlTarget::Induced,
    });
    assert_eq!(cypher.result.unwrap().rows, sql.result.unwrap().rows);
}
