//! Differential tests of the vectorized (columnar) SQL executor against
//! the row-at-a-time oracle path, plus `Table ⇄ ColumnTable` round-trip
//! properties.
//!
//! PR 4 adds `graphiti_sql::eval_vectorized`: compiled plans execute
//! column-at-a-time over `ColumnTable`s.  The correctness contract is the
//! paper's bag equivalence (Definition 4.4): on every (instance, query)
//! pair the vectorized executor must agree with `eval_compiled` (the
//! retained row engine, which in turn is differentially tested against the
//! naive interpreter) — and in fact these tests assert the stronger
//! *identical-table* property (same columns, same row order), which holds
//! because every vector kernel replays the row engine's iteration order.

use graphiti_common::Value;
use graphiti_core::{infer_sdt, transpile_query};
use graphiti_graph::{GraphInstance, GraphSchema};
use graphiti_relational::{ColumnInstance, ColumnTable, Table};
use graphiti_testkit::{arb_cypher, arb_instance, fixtures};
use graphiti_transformer::apply_to_graph;
use proptest::prelude::*;

/// Asserts that the vectorized and row-at-a-time executions of the
/// transpilation of `query_text` agree over the SDT-image of `graph`.
fn vectorized_agrees(schema: &GraphSchema, graph: &GraphInstance, query_text: &str) {
    let query = graphiti_cypher::parse_query(query_text)
        .unwrap_or_else(|e| panic!("`{query_text}` failed to parse: {e}"));
    let ctx = infer_sdt(schema).expect("SDT inference");
    let sql = transpile_query(&ctx, &query)
        .unwrap_or_else(|e| panic!("`{query_text}` failed to transpile: {e}"));
    let induced = apply_to_graph(&ctx.sdt, schema, graph, &ctx.induced_schema)
        .expect("SDT image construction");
    let columnar = ColumnInstance::from_rel(&induced);
    let plan = graphiti_sql::compile_query(&induced, &sql)
        .unwrap_or_else(|e| panic!("`{query_text}` failed to compile: {e}"));
    let row = graphiti_sql::eval_compiled(&induced, &plan)
        .unwrap_or_else(|e| panic!("row engine failed on `{query_text}`: {e}"));
    let vec = graphiti_sql::eval_vectorized(&induced, &columnar, &plan)
        .unwrap_or_else(|e| panic!("vectorized engine failed on `{query_text}`: {e}"));
    // Identical tables (stronger than Definition 4.4 equivalence) ...
    assert_eq!(
        row, vec,
        "vectorized result differs on `{query_text}`:\nrow:\n{row}\nvectorized:\n{vec}"
    );
    // ... which in particular implies bag equivalence.
    assert!(row.equivalent(&vec));
}

/// One adversarially-typed value: `NULL`-heavy, both numeric
/// representations, NaN, booleans, and strings — exercising every
/// `ColumnData` representation including the all-NULL and mixed fallbacks.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        Just(Value::Null),
        (-50i64..50).prop_map(Value::Int),
        (-20i64..20).prop_map(|f| Value::Float(f as f64 / 7.0)),
        Just(Value::Float(f64::NAN)),
        any::<bool>().prop_map(Value::Bool),
        sample::select(vec!["", "a", "b", "ab", "c"]).prop_map(Value::str),
    ]
}

/// A random table over such values.
fn arb_table() -> impl Strategy<Value = Table> {
    (1usize..5).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(arb_value(), n..n + 1), 0..12)
            .prop_map(move |rows| Table::with_rows((0..n).map(|i| format!("t.c{i}")), rows))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Vectorized ≡ row-at-a-time on the transpilations of random queries
    /// over the SDT-images of random EMP graphs.
    #[test]
    fn vectorized_agrees_on_random_emp_inputs(
        graph in arb_instance(&fixtures::emp::schema(), 5, 10),
        q in arb_cypher(&fixtures::emp::schema()),
    ) {
        vectorized_agrees(&fixtures::emp::schema(), &graph, &q);
    }

    /// Vectorized ≡ row-at-a-time over the biomedical schema (two edge
    /// types, multi-join transpilations).
    #[test]
    fn vectorized_agrees_on_random_biomed_inputs(
        graph in arb_instance(&fixtures::biomed::schema(), 4, 8),
        q in arb_cypher(&fixtures::biomed::schema()),
    ) {
        vectorized_agrees(&fixtures::biomed::schema(), &graph, &q);
    }

    /// `Table → ColumnTable → Table` is lossless for every value mix,
    /// including NULL-heavy, all-NULL, NaN-bearing, and heterogeneous
    /// columns.
    #[test]
    fn column_table_round_trip_is_lossless(t in arb_table()) {
        let ct = ColumnTable::from_table(&t);
        prop_assert_eq!(ct.len(), t.len());
        prop_assert_eq!(ct.arity(), t.arity());
        let back = ct.to_table();
        // Structural identity: same columns, same rows, with Int/Float
        // representations preserved exactly (PartialEq on Value treats
        // Int(3) == Float(3.0), so check the discriminants too).
        prop_assert_eq!(&back.columns, &t.columns);
        prop_assert_eq!(back.len(), t.len());
        for (a, b) in back.rows.iter().zip(t.rows.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert!(
                    x.strict_eq(y) || (matches!((x, y), (Value::Float(p), Value::Float(q))
                        if p.is_nan() && q.is_nan())),
                    "value changed in round trip: {:?} vs {:?}", x, y
                );
                prop_assert_eq!(
                    std::mem::discriminant(x),
                    std::mem::discriminant(y),
                    "representation changed in round trip: {:?} vs {:?}", x, y
                );
            }
        }
    }

    /// Row materialization and by-name access agree with the row table.
    #[test]
    fn column_table_rows_and_lookups_agree(t in arb_table()) {
        let ct = ColumnTable::from_table(&t);
        for (i, row) in t.rows.iter().enumerate() {
            let got = ct.row(i);
            prop_assert_eq!(&got, row);
        }
        for (c, name) in t.columns.iter().enumerate() {
            prop_assert_eq!(ct.column_index(name), Some(c));
            prop_assert_eq!(ct.column_index(name), t.column_index(name));
        }
        prop_assert_eq!(ct.column_index("no.such.column"), None);
    }
}

/// The vectorized executor agrees with the row engine on the full fixture
/// query batteries (deterministic instances, every supported construct).
#[test]
fn vectorized_agrees_on_fixture_corpus() {
    let emp_schema = fixtures::emp::schema();
    let emp_graph = fixtures::emp::graph();
    for q in fixtures::emp::QUERIES {
        vectorized_agrees(&emp_schema, &emp_graph, q);
    }
    let bio_schema = fixtures::biomed::schema();
    let bio_graph = fixtures::biomed::figure_3a_graph();
    for q in fixtures::biomed::QUERIES {
        vectorized_agrees(&bio_schema, &bio_graph, q);
    }
}

/// The engine (whose SQL path is now vectorized) still satisfies the
/// differential oracle (Theorem 5.7) on the fixture scenarios.
#[test]
fn oracle_holds_with_vectorized_engine_on_fixtures() {
    let schema = fixtures::emp::schema();
    let graph = fixtures::emp::graph();
    for q in fixtures::emp::QUERIES {
        graphiti_testkit::differential_oracle(&schema, &graph, q)
            .unwrap_or_else(|e| panic!("oracle failed on `{q}`: {e}"));
    }
}
