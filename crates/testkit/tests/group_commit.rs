//! Group-commit equivalence: concurrency must buy throughput, never new
//! semantics.
//!
//! Each case script-generates self-contained deltas for N writer
//! threads, commits them **concurrently** through a [`GroupCommitter`]
//! (random group size, so singleton groups, full coalescing, and
//! everything between get drawn), and then checks that the result is
//! indistinguishable from *some serial interleaving* of the accepted
//! deltas:
//!
//! * every accepted member got its own distinct generation, and the
//!   accepted generations are exactly `1..=n` — the witness order;
//! * replaying the accepted deltas **solo** (no group committer) in
//!   generation order accepts every one of them, at the same
//!   generation;
//! * the two stores publish bag-equal induced tables, in both layouts
//!   (the columnar image must equal the row image on each store);
//! * the transpilation soundness oracle holds on both stores' live
//!   query surfaces;
//! * every failed member failed `Rejected` — individually, without
//!   poisoning its group (nothing fences an in-memory store).
//!
//! Deltas deliberately draw default keys from a small space so
//! collisions land both inside one group and across groups, exercising
//! the per-member rejection path under coalescing.  The per-push CI
//! runs a modest case count; raise it via `PROPTEST_CASES`.

use graphiti_common::{Ident, Value};
use graphiti_engine::SqlTarget;
use graphiti_graph::GraphSchema;
use graphiti_store::{Delta, GraphStore, GroupOptions, QuerySurface, StoreError};
use graphiti_testkit::{differential_oracle_on, fixtures};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// `PROPTEST_CASES`-honoring case count (`ProptestConfig::with_cases`
/// would pin it, so the nightly deep run could not raise it).
fn cases(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default_cases)
}

fn props_for(keys: &[Ident], pk: i64, rng: &mut StdRng) -> Vec<(String, Value)> {
    keys.iter()
        .enumerate()
        .map(|(i, k)| {
            let v = if i == 0 {
                Value::Int(pk)
            } else {
                match rng.gen_range(0..3usize) {
                    0 => Value::Int(rng.gen_range(0..4i64)),
                    1 => Value::str(["a", "b", "c"][rng.gen_range(0..3usize)]),
                    _ => Value::Null,
                }
            };
            (k.to_string(), v)
        })
        .collect()
}

/// One random **self-contained, non-empty** delta: node adds with
/// default keys drawn from a small shared space (collisions intended),
/// plus edges between nodes staged by this same delta — no dependence
/// on the store's current state, so any thread can submit it at any
/// time.  (Empty deltas are excluded: they ack at the *current*
/// generation without advancing it, which is covered by the store's
/// unit tests and would only blur the interleaving witness here.)
fn random_delta(rng: &mut StdRng, schema: &GraphSchema, pk_space: i64) -> Delta {
    let mut delta = Delta::new();
    let mut staged: Vec<(graphiti_store::NodeRef, Ident)> = Vec::new();
    for i in 0..rng.gen_range(1..=4usize) {
        if i == 0 || rng.gen_bool(0.7) || schema.edge_types.is_empty() {
            let ty = &schema.node_types[rng.gen_range(0..schema.node_types.len())];
            let pk = rng.gen_range(0..pk_space);
            let r = delta.add_node(ty.label.clone(), props_for(&ty.keys, pk, rng));
            staged.push((r, ty.label.clone()));
        } else {
            let ty = &schema.edge_types[rng.gen_range(0..schema.edge_types.len())];
            let src = staged.iter().filter(|(_, l)| l == &ty.src).map(|(r, _)| *r).next_back();
            let tgt = staged.iter().filter(|(_, l)| l == &ty.tgt).map(|(r, _)| *r).next_back();
            let (Some(src), Some(tgt)) = (src, tgt) else { continue };
            let pk = rng.gen_range(0..pk_space);
            delta.add_edge(ty.label.clone(), src, tgt, props_for(&ty.keys, pk, rng));
        }
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(48) })]

    #[test]
    fn concurrent_group_commit_equals_a_serial_interleaving(seed in any::<u64>()) {
        let schema = fixtures::emp::schema();
        let mut rng = StdRng::seed_from_u64(seed);
        let threads = rng.gen_range(2..=4usize);
        let per_thread = rng.gen_range(2..=6usize);
        let pk_space = rng.gen_range(3..=32i64);
        let scripts: Vec<Vec<Delta>> = (0..threads)
            .map(|_| {
                (0..per_thread).map(|_| random_delta(&mut rng, &schema, pk_space)).collect()
            })
            .collect();

        // Concurrent run, through the group committer.
        let store = Arc::new(GraphStore::builder(schema.clone()).open().unwrap());
        let committer = Arc::new(store.group_committer(GroupOptions {
            max_group: rng.gen_range(1..=8usize),
            queue_depth: rng.gen_range(1..=16usize),
        }));
        let mut handles = Vec::new();
        for script in scripts {
            let committer = Arc::clone(&committer);
            handles.push(std::thread::spawn(move || {
                let mut accepted = Vec::new();
                let mut rejected = 0usize;
                for delta in script {
                    match committer.submit(delta.clone()).wait() {
                        Ok(info) => accepted.push((info.generation, delta)),
                        Err(StoreError::Rejected(_)) => rejected += 1,
                        Err(other) => panic!("group member failed non-Rejected: {other}"),
                    }
                }
                (accepted, rejected)
            }));
        }
        let mut accepted: Vec<(u64, Delta)> = Vec::new();
        let mut rejected = 0usize;
        for h in handles {
            let (a, r) = h.join().expect("writer threads never panic");
            accepted.extend(a);
            rejected += r;
        }
        drop(committer);
        prop_assert_eq!(accepted.len() + rejected, threads * per_thread);

        // The accepted generations are exactly 1..=n: a total order with
        // no gaps is itself the witness serial interleaving.
        accepted.sort_by_key(|(g, _)| *g);
        let gens: Vec<u64> = accepted.iter().map(|(g, _)| *g).collect();
        prop_assert_eq!(&gens, &(1..=accepted.len() as u64).collect::<Vec<_>>());
        prop_assert_eq!(store.generation(), accepted.len() as u64);

        // Serial replay: the same deltas, solo commits, witness order.
        let serial = GraphStore::builder(schema.clone()).open().unwrap();
        for (gen, delta) in &accepted {
            let info = serial
                .commit(delta.clone())
                .expect("an accepted group member must replay serially");
            prop_assert_eq!(info.generation, *gen);
        }

        // Both stores publish the same induced image, in both layouts.
        let snap = store.snapshot();
        let serial_snap = serial.snapshot();
        for (name, serial_table) in serial_snap.induced().tables() {
            let live = snap.induced().table(name).unwrap_or_else(|| panic!("missing `{name}`"));
            prop_assert_eq!(&live.columns, &serial_table.columns);
            prop_assert!(
                live.rows_bag_equal(serial_table),
                "`{}` diverges:\ngroup-committed:\n{}\nserial:\n{}",
                name, live, serial_table
            );
        }
        for (which, s) in [("group", &snap), ("serial", &serial_snap)] {
            let columnar = s.sql_columnar(&SqlTarget::Induced).unwrap();
            for (name, row_table) in s.induced().tables() {
                let col_image = columnar
                    .table(name)
                    .unwrap_or_else(|| panic!("missing columnar `{name}`"))
                    .to_table();
                prop_assert_eq!(
                    &col_image, row_table,
                    "{} store: columnar image of `{}` diverges from rows", which, name
                );
            }
        }

        // The soundness oracle holds on both live surfaces.
        for q in fixtures::emp::QUERIES {
            differential_oracle_on(&*store, q)
                .unwrap_or_else(|e| panic!("group store oracle failed on `{q}`: {e}"));
            differential_oracle_on(&serial, q)
                .unwrap_or_else(|e| panic!("serial store oracle failed on `{q}`: {e}"));
        }
    }
}
