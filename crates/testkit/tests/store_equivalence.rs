//! Differential tests of the writable store's **incremental re-freeze**
//! against the cold freeze oracle.
//!
//! The contract under test is `commit(delta) ≡ freeze(apply(graph, delta))`:
//! after any schema-valid mutation sequence, the snapshot generation the
//! store published incrementally (per-label row deltas patched onto the
//! previous generation's images) must match what a from-scratch
//! [`Snapshot::freeze`] of the same master graph would produce —
//!
//! * per induced table: identical columns and **bag-equal** rows (the
//!   cold path materializes rows in set-sorted order, the incremental
//!   path in log order; multiplicities must still agree exactly, which
//!   also pins down dedup/bag-count-sensitive behavior);
//! * the columnar image must equal the row image row-for-row;
//! * every fixture query must evaluate equivalently (Definition 4.4)
//!   through the store's engine and through a fresh engine over the cold
//!   freeze — including aggregation queries whose results are sensitive
//!   to row multiplicities.
//!
//! Mutation scripts are generated from a seed: adds, removals (edge and
//! node), property updates (including default-key re-keys, which must
//! rewrite incident edges' SRC/TGT foreign keys), interleaved across
//! several commits, plus dedicated tombstone-heavy histories that drive
//! the log compactor.

use graphiti_common::{Ident, Value};
use graphiti_engine::{BatchQuery, Engine, Snapshot, SqlTarget};
use graphiti_graph::GraphSchema;
use graphiti_store::{Delta, EdgeKey, GraphStore, NodeKey, NodeRef, QuerySurface};
use graphiti_testkit::{arb_instance, differential_oracle_on, fixtures};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Asserts the full incremental-vs-cold contract for the store's current
/// generation.
fn assert_commit_equals_cold_freeze(store: &GraphStore, queries: &[&str]) {
    let snap = store.snapshot();
    let cold = Snapshot::freeze(snap.schema().clone(), snap.graph().clone())
        .expect("the master graph must stay schema-valid");
    // Table images: equal columns, bag-equal rows, columnar == row image.
    let columnar = snap.sql_columnar(&SqlTarget::Induced).unwrap();
    for (name, cold_table) in cold.induced().tables() {
        let live = snap.induced().table(name).unwrap_or_else(|| panic!("missing `{name}`"));
        assert_eq!(live.columns, cold_table.columns, "columns of `{name}`");
        assert!(
            live.rows_bag_equal(cold_table),
            "`{name}` diverges from cold freeze:\nincremental:\n{live}\ncold:\n{cold_table}"
        );
        let col_image =
            columnar.table(name).unwrap_or_else(|| panic!("missing columnar `{name}`")).to_table();
        assert_eq!(col_image, *live, "columnar image of `{name}` diverges from row image");
    }
    // Query equivalence through both surfaces — the store and a fresh
    // engine over the cold freeze are both just `QuerySurface`s here.
    let cold_engine = Engine::new(cold);
    for q in queries {
        let live = store.execute(&BatchQuery::cypher(*q));
        let oracle = cold_engine.execute(&BatchQuery::cypher(*q));
        let (live, oracle) = (live.result.expect(q), oracle.result.expect(q));
        assert!(
            live.equivalent(&oracle),
            "query `{q}` disagrees:\nincremental:\n{live}\ncold:\n{oracle}"
        );
        // And the transpilation soundness oracle holds directly on the
        // live store's surface: Cypher on the incremental snapshot must
        // agree with transpiled SQL on its incremental induced image.
        differential_oracle_on(store, q)
            .unwrap_or_else(|e| panic!("surface oracle failed on `{q}`: {e}"));
    }
    // Per-label SQL aggregation over the induced image (bag-count
    // sensitive by construction).
    for ty in &snap.schema().node_types {
        let q = format!("SELECT Count(*) AS c FROM {} AS t", ty.label);
        let live = store.execute(&BatchQuery::sql(&q)).result.expect("count");
        let oracle = cold_engine.execute(&BatchQuery::sql(&q)).result.expect("count");
        assert!(live.equivalent(&oracle), "`{q}` disagrees");
    }
}

/// Draws a random value for a non-default property.
fn random_prop_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..4usize) {
        0 => Value::Int(rng.gen_range(0..4i64)),
        1 => Value::str(["a", "b", "c"][rng.gen_range(0..3usize)]),
        2 => Value::Bool(rng.gen_bool(0.5)),
        _ => Value::Null,
    }
}

fn props_for(keys: &[Ident], fresh_pk: i64, rng: &mut StdRng) -> Vec<(String, Value)> {
    keys.iter()
        .enumerate()
        .map(|(i, k)| {
            let v = if i == 0 { Value::Int(fresh_pk) } else { random_prop_value(rng) };
            (k.to_string(), v)
        })
        .collect()
}

/// Builds one random, *valid-by-construction* delta against the store's
/// current state: additions, removals (edges first), and property updates
/// including occasional default-key re-keys.
fn random_delta(
    rng: &mut StdRng,
    store: &GraphStore,
    schema: &GraphSchema,
    next_pk: &mut i64,
) -> Delta {
    let mut delta = Delta::new();
    let nodes = store.node_directory();
    let edges = store.edge_directory();
    let mut removed_nodes: HashSet<NodeKey> = HashSet::new();
    let mut removed_edges: HashSet<EdgeKey> = HashSet::new();
    // Nodes staged by this delta, by label, usable as fresh endpoints.
    let mut staged: Vec<(NodeRef, Ident)> = Vec::new();
    // Existing nodes that edges staged by this delta now hang off —
    // removing them would (correctly) be rejected.
    let mut staged_endpoints: HashSet<NodeKey> = HashSet::new();
    let ops = rng.gen_range(1..=6usize);
    for _ in 0..ops {
        match rng.gen_range(0..100u32) {
            // Add a node.
            0..=34 => {
                let ty = &schema.node_types[rng.gen_range(0..schema.node_types.len())];
                *next_pk += 1;
                let r = delta.add_node(ty.label.clone(), props_for(&ty.keys, *next_pk, rng));
                staged.push((r, ty.label.clone()));
            }
            // Add an edge between two live (or staged) endpoints.
            35..=59 if !schema.edge_types.is_empty() => {
                let ty = &schema.edge_types[rng.gen_range(0..schema.edge_types.len())];
                let pick = |label: &Ident,
                            rng: &mut StdRng,
                            staged: &[(NodeRef, Ident)]|
                 -> Option<NodeRef> {
                    let mut candidates: Vec<NodeRef> = nodes
                        .iter()
                        .filter(|(k, l, _)| l == label && !removed_nodes.contains(k))
                        .map(|(k, _, _)| NodeRef::Key(*k))
                        .collect();
                    candidates.extend(staged.iter().filter(|(_, l)| l == label).map(|(r, _)| *r));
                    if candidates.is_empty() {
                        None
                    } else {
                        Some(candidates[rng.gen_range(0..candidates.len())])
                    }
                };
                let (Some(src), Some(tgt)) =
                    (pick(&ty.src, rng, &staged), pick(&ty.tgt, rng, &staged))
                else {
                    continue;
                };
                *next_pk += 1;
                delta.add_edge(ty.label.clone(), src, tgt, props_for(&ty.keys, *next_pk, rng));
                for endpoint in [src, tgt] {
                    if let NodeRef::Key(k) = endpoint {
                        staged_endpoints.insert(k);
                    }
                }
            }
            // Remove an edge.
            60..=74 => {
                let candidates: Vec<EdgeKey> = edges
                    .iter()
                    .filter(|(k, ..)| !removed_edges.contains(k))
                    .map(|(k, ..)| *k)
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let victim = candidates[rng.gen_range(0..candidates.len())];
                delta.remove_edge(victim);
                removed_edges.insert(victim);
            }
            // Remove a node whose (remaining) incident edges this delta
            // already removed.
            75..=84 => {
                let candidates: Vec<NodeKey> = nodes
                    .iter()
                    .filter(|(k, _, _)| {
                        !removed_nodes.contains(k)
                            && !staged_endpoints.contains(k)
                            && edges
                                .iter()
                                .filter(|(ek, ..)| !removed_edges.contains(ek))
                                .all(|(_, _, _, s, t)| s != k && t != k)
                    })
                    .map(|(k, _, _)| *k)
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let victim = candidates[rng.gen_range(0..candidates.len())];
                delta.remove_node(victim);
                removed_nodes.insert(victim);
            }
            // Update an edge property (payload key or default-key re-key).
            85..=89 => {
                let candidates: Vec<(EdgeKey, Ident)> = edges
                    .iter()
                    .filter(|(k, ..)| !removed_edges.contains(k))
                    .map(|(k, l, ..)| (*k, l.clone()))
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let (key, label) = candidates[rng.gen_range(0..candidates.len())].clone();
                let ty = schema.edge_type(label.as_str()).expect("declared");
                if ty.keys.len() > 1 && rng.gen_bool(0.7) {
                    let prop = &ty.keys[rng.gen_range(1..ty.keys.len())];
                    delta.set_edge_prop(key, prop.clone(), random_prop_value(rng));
                } else {
                    *next_pk += 1;
                    delta.set_edge_prop(key, ty.keys[0].clone(), Value::Int(*next_pk));
                }
            }
            // Update a node property: usually a payload key, sometimes a
            // default-key re-key (which must ripple into edge SRC/TGT).
            _ => {
                let candidates: Vec<(NodeKey, Ident)> = nodes
                    .iter()
                    .filter(|(k, _, _)| !removed_nodes.contains(k))
                    .map(|(k, l, _)| (*k, l.clone()))
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let (key, label) = candidates[rng.gen_range(0..candidates.len())].clone();
                let ty = schema.node_type(label.as_str()).expect("declared");
                if ty.keys.len() > 1 && rng.gen_bool(0.7) {
                    let prop = &ty.keys[rng.gen_range(1..ty.keys.len())];
                    delta.set_node_prop(key, prop.clone(), random_prop_value(rng));
                } else {
                    *next_pk += 1;
                    delta.set_node_prop(key, ty.keys[0].clone(), Value::Int(*next_pk));
                }
            }
        }
    }
    delta
}

/// Runs a seeded mutation script of `commits` deltas, asserting the full
/// contract after every commit.
fn run_script(
    schema: &GraphSchema,
    initial: graphiti_graph::GraphInstance,
    queries: &[&str],
    seed: u64,
    commits: usize,
) {
    let store = GraphStore::open(schema.clone(), initial).expect("valid initial instance");
    let mut rng = StdRng::seed_from_u64(seed);
    // Fresh default keys start far above anything arb_instance generated.
    let mut next_pk: i64 = 1_000_000;
    for _ in 0..commits {
        let delta = random_delta(&mut rng, &store, schema, &mut next_pk);
        store.commit(delta).expect("valid-by-construction deltas must commit");
        assert_commit_equals_cold_freeze(&store, queries);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `commit(delta) ≡ freeze(apply(graph, delta))` on random EMP
    /// instances and random mutation scripts.
    #[test]
    fn incremental_commits_match_cold_freeze_on_emp(
        graph in arb_instance(&fixtures::emp::schema(), 4, 6),
        seed in any::<u64>(),
    ) {
        run_script(&fixtures::emp::schema(), graph, fixtures::emp::QUERIES, seed, 4);
    }

    /// The same contract on the biomedical schema (two edge types,
    /// two-hop traversals in the query battery).
    #[test]
    fn incremental_commits_match_cold_freeze_on_biomed(
        graph in arb_instance(&fixtures::biomed::schema(), 3, 5),
        seed in any::<u64>(),
    ) {
        run_script(&fixtures::biomed::schema(), graph, fixtures::biomed::QUERIES, seed, 4);
    }

    /// Tombstone-heavy histories: grow, then tear most of the graph down
    /// edge-by-edge and node-by-node across several commits (driving the
    /// compactor), then regrow.  Images must match the cold freeze at
    /// every generation.
    #[test]
    fn tombstone_heavy_histories_survive_compaction(
        graph in arb_instance(&fixtures::emp::schema(), 5, 8),
        seed in any::<u64>(),
    ) {
        let schema = fixtures::emp::schema();
        let store = GraphStore::open(schema.clone(), graph).expect("valid instance");
        let mut rng = StdRng::seed_from_u64(seed);
        // Wave 1: drop every edge, a few per commit.
        loop {
            let edges = store.edge_directory();
            if edges.is_empty() {
                break;
            }
            let mut delta = Delta::new();
            for (k, ..) in edges.iter().take(rng.gen_range(1..=3usize)) {
                delta.remove_edge(*k);
            }
            store.commit(delta).expect("edge removals are always valid");
            assert_commit_equals_cold_freeze(&store, fixtures::emp::QUERIES);
        }
        // Wave 2: drop every node.
        loop {
            let nodes = store.node_directory();
            if nodes.is_empty() {
                break;
            }
            let mut delta = Delta::new();
            for (k, ..) in nodes.iter().take(rng.gen_range(1..=3usize)) {
                delta.remove_node(*k);
            }
            store.commit(delta).expect("isolated-node removals are always valid");
            assert_commit_equals_cold_freeze(&store, fixtures::emp::QUERIES);
        }
        prop_assert_eq!(store.snapshot().graph().node_count(), 0);
        // Wave 3: regrow a small graph on the emptied store.
        let mut next_pk = 2_000_000i64;
        for _ in 0..3 {
            let delta = random_delta(&mut rng, &store, &schema, &mut next_pk);
            store.commit(delta).expect("regrowth deltas must commit");
            assert_commit_equals_cold_freeze(&store, fixtures::emp::QUERIES);
        }
        let stats = store.stats();
        prop_assert!(
            stats.tombstoned_rows < 32 || stats.compactions > 0,
            "a teardown this size must either compact or stay under the threshold"
        );
    }
}

/// Deterministic end-to-end churn on the fixture instance, including a
/// forced compaction sweep between generations.
#[test]
fn fixture_churn_with_forced_compaction() {
    let schema = fixtures::emp::schema();
    let store = GraphStore::open(schema.clone(), fixtures::emp::graph()).unwrap();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut next_pk = 3_000_000i64;
    for round in 0..12 {
        let delta = random_delta(&mut rng, &store, &schema, &mut next_pk);
        store.commit(delta).unwrap();
        if round % 3 == 2 {
            store.compact_now();
        }
        assert_commit_equals_cold_freeze(&store, fixtures::emp::QUERIES);
    }
    assert_eq!(store.stats().commits, 12);
}
