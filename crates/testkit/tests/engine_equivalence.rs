//! Differential tests of the indexed/compiled engines against the retained
//! naive engines.
//!
//! PR 2 replaced both reference evaluators' execution strategies: Cypher
//! pattern matching walks persistent adjacency indexes instead of
//! rescanning the edge arena per binding, and SQL evaluation runs
//! pre-compiled positional programs instead of resolving columns by string
//! per row.  The naive strategies are retained as
//! `eval_query_unoptimized` on both sides, and these tests assert the
//! paper-level correctness contract: on every (instance, query) pair the
//! old and new engines produce **table-equivalent** results
//! (Definition 4.4) — for both Cypher and SQL.

use graphiti_core::{infer_sdt, transpile_query};
use graphiti_graph::{GraphInstance, GraphSchema};
use graphiti_testkit::{arb_cypher, arb_instance, fixtures};
use graphiti_transformer::apply_to_graph;
use proptest::prelude::*;

/// Asserts that the indexed and naive Cypher engines agree on one
/// (graph, query) pair, and returns whether the query was in-fragment.
fn cypher_engines_agree(schema: &GraphSchema, graph: &GraphInstance, query_text: &str) {
    let query = graphiti_cypher::parse_query(query_text)
        .unwrap_or_else(|e| panic!("`{query_text}` failed to parse: {e}"));
    let indexed = graphiti_cypher::eval_query(schema, graph, &query)
        .unwrap_or_else(|e| panic!("indexed engine failed on `{query_text}`: {e}"));
    let naive = graphiti_cypher::eval_query_unoptimized(schema, graph, &query)
        .unwrap_or_else(|e| panic!("naive engine failed on `{query_text}`: {e}"));
    assert!(
        indexed.equivalent(&naive),
        "cypher engines disagree on `{query_text}`:\nindexed:\n{indexed}\nnaive:\n{naive}"
    );
}

/// Asserts that the compiled and naive SQL engines agree on the
/// transpilation of `query_text` evaluated over the SDT-image of `graph`.
fn sql_engines_agree(schema: &GraphSchema, graph: &GraphInstance, query_text: &str) {
    let query = graphiti_cypher::parse_query(query_text)
        .unwrap_or_else(|e| panic!("`{query_text}` failed to parse: {e}"));
    let ctx = infer_sdt(schema).expect("SDT inference");
    let sql = transpile_query(&ctx, &query)
        .unwrap_or_else(|e| panic!("`{query_text}` failed to transpile: {e}"));
    let induced = apply_to_graph(&ctx.sdt, schema, graph, &ctx.induced_schema)
        .expect("SDT image construction");
    let compiled = graphiti_sql::eval_query(&induced, &sql)
        .unwrap_or_else(|e| panic!("compiled engine failed on `{query_text}`: {e}"));
    let naive = graphiti_sql::eval_query_unoptimized(&induced, &sql)
        .unwrap_or_else(|e| panic!("naive engine failed on `{query_text}`: {e}"));
    assert!(
        compiled.equivalent(&naive),
        "sql engines disagree on `{query_text}`:\ncompiled:\n{compiled}\nnaive:\n{naive}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Indexed vs naive Cypher on random EMP graphs and random queries.
    #[test]
    fn cypher_engines_agree_on_random_emp_inputs(
        graph in arb_instance(&fixtures::emp::schema(), 5, 10),
        q in arb_cypher(&fixtures::emp::schema()),
    ) {
        cypher_engines_agree(&fixtures::emp::schema(), &graph, &q);
    }

    /// Indexed vs naive Cypher on random biomedical graphs (two edge
    /// types, two-hop traversals) and random queries.
    #[test]
    fn cypher_engines_agree_on_random_biomed_inputs(
        graph in arb_instance(&fixtures::biomed::schema(), 4, 8),
        q in arb_cypher(&fixtures::biomed::schema()),
    ) {
        cypher_engines_agree(&fixtures::biomed::schema(), &graph, &q);
    }

    /// Compiled vs naive SQL on the transpilations of random queries over
    /// the SDT-images of random EMP graphs.
    #[test]
    fn sql_engines_agree_on_random_emp_inputs(
        graph in arb_instance(&fixtures::emp::schema(), 5, 10),
        q in arb_cypher(&fixtures::emp::schema()),
    ) {
        sql_engines_agree(&fixtures::emp::schema(), &graph, &q);
    }

    /// Compiled vs naive SQL over the biomedical schema.
    #[test]
    fn sql_engines_agree_on_random_biomed_inputs(
        graph in arb_instance(&fixtures::biomed::schema(), 4, 8),
        q in arb_cypher(&fixtures::biomed::schema()),
    ) {
        sql_engines_agree(&fixtures::biomed::schema(), &graph, &q);
    }
}

/// Both engine pairs agree on the full fixture query batteries over the
/// deterministic fixture instances.
#[test]
fn engines_agree_on_fixture_corpus() {
    let emp_schema = fixtures::emp::schema();
    let emp_graph = fixtures::emp::graph();
    for q in fixtures::emp::QUERIES {
        cypher_engines_agree(&emp_schema, &emp_graph, q);
        sql_engines_agree(&emp_schema, &emp_graph, q);
    }
    let bio_schema = fixtures::biomed::schema();
    let bio_graph = fixtures::biomed::figure_3a_graph();
    for q in fixtures::biomed::QUERIES {
        cypher_engines_agree(&bio_schema, &bio_graph, q);
        sql_engines_agree(&bio_schema, &bio_graph, q);
    }
}

/// The differential oracle (Theorem 5.7) still holds end-to-end with the
/// new engines on both fixture scenarios: the indexed Cypher result is
/// table-equivalent to the compiled SQL result on the SDT image.
#[test]
fn oracle_holds_with_new_engines_on_fixtures() {
    let schema = fixtures::emp::schema();
    let graph = fixtures::emp::graph();
    for q in fixtures::emp::QUERIES {
        graphiti_testkit::differential_oracle(&schema, &graph, q)
            .unwrap_or_else(|e| panic!("oracle failed on `{q}`: {e}"));
    }
}
