//! Kill-and-recover tests of the durable store (WAL + checkpoints).
//!
//! The contract under test is **crash-prefix equivalence**: for any
//! schema-valid mutation script and any byte-level cut of the WAL tail,
//! `open_durable(cut(dir)) ≡` the store at the last commit whose record
//! survives the cut in full —
//!
//! * the recovered generation is some durable prefix of the committed
//!   script (never a partial commit, never past the cut);
//! * every induced table matches an in-memory oracle that replayed
//!   exactly that prefix — identical columns and rows in **both**
//!   layouts (the row image and the columnar image), since recovery must
//!   preserve log order, not just bag-equality;
//! * every fixture query evaluates equivalently through the recovered
//!   store's engine and the oracle's;
//! * the recovered store keeps accepting (and re-logging) commits.
//!
//! Scripts are seeded like `store_equivalence`'s (the generator is
//! duplicated here: it lives in that test binary, and the testkit lib
//! cannot depend on `graphiti-store`).  Checkpoint cadence is drawn per
//! case so cuts land in fresh segments, checkpoint-covered territory, and
//! bootstrap-only directories alike.  The nightly durability CI job
//! raises the case count via `PROPTEST_CASES`.

use graphiti_common::{Ident, Value};
use graphiti_engine::{BatchQuery, SqlTarget};
use graphiti_graph::{GraphInstance, GraphSchema};
use graphiti_store::{
    wal_segment_files, Delta, DurabilityOptions, EdgeKey, GraphStore, NodeKey, NodeRef,
};
use graphiti_testkit::{arb_instance, fixtures};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// Opens a durable store through [`GraphStore::builder`] — the one
/// supported entry point; every durable open in this harness funnels
/// through here.
fn open_durable_with(
    dir: &Path,
    schema: GraphSchema,
    bootstrap: GraphInstance,
    opts: DurabilityOptions,
) -> Result<GraphStore, graphiti_store::StoreError> {
    GraphStore::builder(schema).durable(dir).bootstrap(bootstrap).durability(opts).open()
}

/// A unique scratch directory under the workspace `target/` dir (tests
/// must not touch paths outside the repository).
fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/testkit-durability")
        .join(format!("{tag}-{}-{}", std::process::id(), NEXT.fetch_add(1, Ordering::SeqCst)));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Recovery must reproduce the oracle *exactly*: same generation, same
/// row and columnar images (row order included — log order survives
/// recovery), and query-equivalent through both engines.
fn assert_recovered_equals_oracle(recovered: &GraphStore, oracle: &GraphStore, queries: &[&str]) {
    assert_eq!(recovered.generation(), oracle.generation(), "generation");
    let (a, b) = (recovered.snapshot(), oracle.snapshot());
    let mut names_a: Vec<&String> = a.induced().tables().map(|(n, _)| n).collect();
    let mut names_b: Vec<&String> = b.induced().tables().map(|(n, _)| n).collect();
    names_a.sort();
    names_b.sort();
    assert_eq!(names_a, names_b, "induced table sets");
    let col_a = a.sql_columnar(&SqlTarget::Induced).unwrap();
    for (name, ta) in a.induced().tables() {
        let tb = b.induced().table(name).unwrap();
        assert_eq!(ta, tb, "row image of `{name}` (log order must survive recovery)");
        let ca = col_a.table(name).unwrap().to_table();
        assert_eq!(ca, *tb, "columnar image of `{name}`");
    }
    for q in queries {
        let live = recovered.engine().execute(&BatchQuery::cypher(*q));
        let oracle_out = oracle.engine().execute(&BatchQuery::cypher(*q));
        let (live, oracle_out) = (live.result.expect(q), oracle_out.result.expect(q));
        assert!(
            live.equivalent(&oracle_out),
            "query `{q}` disagrees after recovery:\nrecovered:\n{live}\noracle:\n{oracle_out}"
        );
    }
}

/// Draws a random value for a non-default property.
fn random_prop_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..4usize) {
        0 => Value::Int(rng.gen_range(0..4i64)),
        1 => Value::str(["a", "b", "c"][rng.gen_range(0..3usize)]),
        2 => Value::Bool(rng.gen_bool(0.5)),
        _ => Value::Null,
    }
}

fn props_for(keys: &[Ident], fresh_pk: i64, rng: &mut StdRng) -> Vec<(String, Value)> {
    keys.iter()
        .enumerate()
        .map(|(i, k)| {
            let v = if i == 0 { Value::Int(fresh_pk) } else { random_prop_value(rng) };
            (k.to_string(), v)
        })
        .collect()
}

/// Builds one random, *valid-by-construction* delta against the store's
/// current state (same shape as `store_equivalence`'s generator).
fn random_delta(
    rng: &mut StdRng,
    store: &GraphStore,
    schema: &GraphSchema,
    next_pk: &mut i64,
) -> Delta {
    let mut delta = Delta::new();
    let nodes = store.node_directory();
    let edges = store.edge_directory();
    let mut removed_nodes: HashSet<NodeKey> = HashSet::new();
    let mut removed_edges: HashSet<EdgeKey> = HashSet::new();
    let mut staged: Vec<(NodeRef, Ident)> = Vec::new();
    let mut staged_endpoints: HashSet<NodeKey> = HashSet::new();
    let ops = rng.gen_range(1..=6usize);
    for _ in 0..ops {
        match rng.gen_range(0..100u32) {
            0..=34 => {
                let ty = &schema.node_types[rng.gen_range(0..schema.node_types.len())];
                *next_pk += 1;
                let r = delta.add_node(ty.label.clone(), props_for(&ty.keys, *next_pk, rng));
                staged.push((r, ty.label.clone()));
            }
            35..=59 if !schema.edge_types.is_empty() => {
                let ty = &schema.edge_types[rng.gen_range(0..schema.edge_types.len())];
                let pick = |label: &Ident,
                            rng: &mut StdRng,
                            staged: &[(NodeRef, Ident)]|
                 -> Option<NodeRef> {
                    let mut candidates: Vec<NodeRef> = nodes
                        .iter()
                        .filter(|(k, l, _)| l == label && !removed_nodes.contains(k))
                        .map(|(k, _, _)| NodeRef::Key(*k))
                        .collect();
                    candidates.extend(staged.iter().filter(|(_, l)| l == label).map(|(r, _)| *r));
                    if candidates.is_empty() {
                        None
                    } else {
                        Some(candidates[rng.gen_range(0..candidates.len())])
                    }
                };
                let (Some(src), Some(tgt)) =
                    (pick(&ty.src, rng, &staged), pick(&ty.tgt, rng, &staged))
                else {
                    continue;
                };
                *next_pk += 1;
                delta.add_edge(ty.label.clone(), src, tgt, props_for(&ty.keys, *next_pk, rng));
                for endpoint in [src, tgt] {
                    if let NodeRef::Key(k) = endpoint {
                        staged_endpoints.insert(k);
                    }
                }
            }
            60..=74 => {
                let candidates: Vec<EdgeKey> = edges
                    .iter()
                    .filter(|(k, ..)| !removed_edges.contains(k))
                    .map(|(k, ..)| *k)
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let victim = candidates[rng.gen_range(0..candidates.len())];
                delta.remove_edge(victim);
                removed_edges.insert(victim);
            }
            75..=84 => {
                let candidates: Vec<NodeKey> = nodes
                    .iter()
                    .filter(|(k, _, _)| {
                        !removed_nodes.contains(k)
                            && !staged_endpoints.contains(k)
                            && edges
                                .iter()
                                .filter(|(ek, ..)| !removed_edges.contains(ek))
                                .all(|(_, _, _, s, t)| s != k && t != k)
                    })
                    .map(|(k, _, _)| *k)
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let victim = candidates[rng.gen_range(0..candidates.len())];
                delta.remove_node(victim);
                removed_nodes.insert(victim);
            }
            85..=89 => {
                let candidates: Vec<(EdgeKey, Ident)> = edges
                    .iter()
                    .filter(|(k, ..)| !removed_edges.contains(k))
                    .map(|(k, l, ..)| (*k, l.clone()))
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let (key, label) = candidates[rng.gen_range(0..candidates.len())].clone();
                let ty = schema.edge_type(label.as_str()).expect("declared");
                if ty.keys.len() > 1 && rng.gen_bool(0.7) {
                    let prop = &ty.keys[rng.gen_range(1..ty.keys.len())];
                    delta.set_edge_prop(key, prop.clone(), random_prop_value(rng));
                } else {
                    *next_pk += 1;
                    delta.set_edge_prop(key, ty.keys[0].clone(), Value::Int(*next_pk));
                }
            }
            _ => {
                let candidates: Vec<(NodeKey, Ident)> = nodes
                    .iter()
                    .filter(|(k, _, _)| !removed_nodes.contains(k))
                    .map(|(k, l, _)| (*k, l.clone()))
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let (key, label) = candidates[rng.gen_range(0..candidates.len())].clone();
                let ty = schema.node_type(label.as_str()).expect("declared");
                if ty.keys.len() > 1 && rng.gen_bool(0.7) {
                    let prop = &ty.keys[rng.gen_range(1..ty.keys.len())];
                    delta.set_node_prop(key, prop.clone(), random_prop_value(rng));
                } else {
                    *next_pk += 1;
                    delta.set_node_prop(key, ty.keys[0].clone(), Value::Int(*next_pk));
                }
            }
        }
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random mutation script, then a crash that cuts the newest WAL
    /// segment at a random byte offset: recovery must land exactly on
    /// the longest durable prefix of the script.
    #[test]
    fn crash_recovery_lands_on_a_durable_prefix(
        graph in arb_instance(&fixtures::emp::schema(), 4, 6),
        seed in any::<u64>(),
        cut_permille in 0u32..=1000,
    ) {
        let cut_frac = f64::from(cut_permille) / 1000.0;
        let schema = fixtures::emp::schema();
        let mut rng = StdRng::seed_from_u64(seed);
        let opts = DurabilityOptions {
            // Flushed-not-fsynced is the same recovery contract for a
            // process kill, and keeps the case count affordable.
            fsync_each_commit: false,
            checkpoint_interval: [0, 2, 3][rng.gen_range(0..3usize)],
            keep_checkpoints: 2,
            ..DurabilityOptions::default()
        };
        let dir = scratch("crash");
        let store = open_durable_with(
            &dir, schema.clone(), graph.clone(), opts,
        ).expect("durable open on a valid instance");
        let mut deltas: Vec<Delta> = Vec::new();
        let mut next_pk: i64 = 1_000_000;
        let commits = rng.gen_range(3..=6usize);
        for _ in 0..commits {
            let d = random_delta(&mut rng, &store, &schema, &mut next_pk);
            deltas.push(d.clone());
            store.commit(d).expect("valid-by-construction deltas must commit");
        }
        let committed = store.generation();
        drop(store); // the "kill": no graceful checkpoint on the way out

        // Crash image: copy the directory, then cut the newest WAL
        // segment at a byte offset drawn over its whole length.
        let cut_dir = scratch("crash-cut");
        copy_dir(&dir, &cut_dir);
        if let Some(newest) = wal_segment_files(&cut_dir).unwrap().pop() {
            let len = std::fs::metadata(&newest).unwrap().len();
            let cut = ((len as f64) * cut_frac).round() as u64;
            let f = std::fs::OpenOptions::new().write(true).open(&newest).unwrap();
            f.set_len(cut.min(len)).unwrap();
        }

        let recovered = open_durable_with(
            &cut_dir, schema.clone(), GraphInstance::new(), opts,
        ).expect("recovery must never fail on a torn tail");
        let g = recovered.generation();
        prop_assert!(g <= committed, "recovery cannot invent generations");
        prop_assert!(
            recovered.stats().last_checkpoint_generation <= g,
            "recovery can never land before the newest checkpoint"
        );

        // Oracle: an in-memory store replaying exactly the recovered
        // prefix (stable keys and generations are deterministic, so the
        // recorded deltas replay verbatim).
        let oracle = GraphStore::open(schema.clone(), graph).expect("valid instance");
        for d in deltas {
            if oracle.generation() >= g {
                break;
            }
            oracle.commit(d).expect("replaying a committed prefix");
        }
        prop_assert_eq!(oracle.generation(), g, "no durable prefix reproduces the recovery");
        assert_recovered_equals_oracle(&recovered, &oracle, fixtures::emp::QUERIES);

        // Life goes on: the recovered store accepts and logs new commits.
        let d = random_delta(&mut rng, &recovered, &schema, &mut next_pk);
        recovered.commit(d).expect("post-recovery commits must succeed");

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&cut_dir).ok();
    }

    /// Clean shutdown and reopen (no cut at all) is the degenerate case:
    /// recovery must reproduce the final state bit-for-bit, whatever the
    /// checkpoint cadence left on disk.
    #[test]
    fn clean_reopen_reproduces_the_final_state(
        graph in arb_instance(&fixtures::emp::schema(), 3, 5),
        seed in any::<u64>(),
    ) {
        let schema = fixtures::emp::schema();
        let mut rng = StdRng::seed_from_u64(seed);
        let opts = DurabilityOptions {
            fsync_each_commit: false,
            checkpoint_interval: [0, 1, 4][rng.gen_range(0..3usize)],
            keep_checkpoints: 1,
            ..DurabilityOptions::default()
        };
        let dir = scratch("reopen");
        let store = open_durable_with(
            &dir, schema.clone(), graph.clone(), opts,
        ).expect("durable open");
        let oracle = GraphStore::open(schema.clone(), graph).expect("valid instance");
        let mut next_pk: i64 = 1_000_000;
        for _ in 0..rng.gen_range(2..=5usize) {
            let d = random_delta(&mut rng, &store, &schema, &mut next_pk);
            oracle.commit(d.clone()).expect("oracle commit");
            store.commit(d).expect("durable commit");
        }
        drop(store);
        let recovered = open_durable_with(
            &dir, schema.clone(), GraphInstance::new(), opts,
        ).expect("reopen");
        assert_recovered_equals_oracle(&recovered, &oracle, fixtures::emp::QUERIES);
        std::fs::remove_dir_all(&dir).ok();
    }
}
