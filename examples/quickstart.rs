//! Quickstart: infer the induced relational schema for a graph schema,
//! transpile a Cypher query to SQL, and execute both sides on matching
//! database instances.
//!
//! Run with `cargo run --example quickstart`.

use graphiti_common::Value;
use graphiti_core::{infer_sdt, transpile_query, transpile_to_sql_text};
use graphiti_cypher::{eval_query as eval_cypher, parse_query as parse_cypher};
use graphiti_graph::{EdgeType, GraphInstance, GraphSchema, NodeType};
use graphiti_sql::eval_query as eval_sql;
use graphiti_transformer::apply_to_graph;

fn main() -> graphiti_common::Result<()> {
    // 1. A graph schema (Figure 14a of the paper).
    let schema = GraphSchema::new()
        .with_node(NodeType::new("EMP", ["id", "name"]))
        .with_node(NodeType::new("DEPT", ["dnum", "dname"]))
        .with_edge(EdgeType::new("WORK_AT", "EMP", "DEPT", ["wid"]));

    // 2. Infer the induced relational schema and the standard transformer.
    let ctx = infer_sdt(&schema)?;
    println!("Induced relational schema:");
    for rel in &ctx.induced_schema.relations {
        let attrs: Vec<&str> = rel.attrs.iter().map(|a| a.as_str()).collect();
        println!("  {}({})", rel.name, attrs.join(", "));
    }
    println!("\nStandard database transformer:\n{}", ctx.sdt);

    // 3. Transpile a Cypher query (Example 3.4 of the paper).
    let cypher_text = "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname AS name, Count(n) AS num";
    let cypher = parse_cypher(cypher_text)?;
    println!("Cypher query:\n  {cypher_text}");
    println!(
        "\nTranspiled SQL over the induced schema:\n  {}",
        transpile_to_sql_text(&ctx, &cypher)?
    );

    // 4. Build a small graph instance and check that the transpiled SQL
    //    computes the same table as the Cypher query (Theorem 5.7 at work).
    let mut graph = GraphInstance::new();
    let ada = graph.add_node("EMP", [("id", Value::Int(1)), ("name", Value::str("Ada"))]);
    let bob = graph.add_node("EMP", [("id", Value::Int(2)), ("name", Value::str("Bob"))]);
    let cs = graph.add_node("DEPT", [("dnum", Value::Int(1)), ("dname", Value::str("CS"))]);
    graph.add_edge("WORK_AT", ada, cs, [("wid", Value::Int(10))]);
    graph.add_edge("WORK_AT", bob, cs, [("wid", Value::Int(11))]);

    let cypher_result = eval_cypher(&schema, &graph, &cypher)?;
    let induced_instance = apply_to_graph(&ctx.sdt, &schema, &graph, &ctx.induced_schema)?;
    let sql_ast = transpile_query(&ctx, &cypher)?;
    let sql_result = eval_sql(&induced_instance, &sql_ast)?;

    println!("\nCypher result:\n{cypher_result}");
    println!("Transpiled SQL result:\n{sql_result}");
    println!("Equivalent (Definition 4.4): {}", cypher_result.equivalent(&sql_result));
    Ok(())
}
