//! A database-migration scenario: a team is moving an HR application from a
//! relational schema (`Employee`/`Department`/`Assignment`) to a property
//! graph, and wants a machine-checked guarantee that the rewritten Cypher
//! queries behave exactly like the legacy SQL queries.
//!
//! This example runs both Graphiti backends on a handful of query pairs:
//! the deductive backend proves full (unbounded) equivalence for the pairs
//! in its fragment, and the bounded backend catches a subtly wrong rewrite.
//!
//! Run with `cargo run --release --example employee_migration`.

use graphiti_benchmarks::schemas;
use graphiti_checkers::{BoundedChecker, DeductiveChecker};
use graphiti_core::{check_equivalence, CheckOutcome};
use graphiti_cypher::parse_query as parse_cypher;
use graphiti_sql::parse_query as parse_sql;
use std::time::Duration;

fn main() -> graphiti_common::Result<()> {
    let domain = schemas::employees();
    let transformer = domain.transformer()?;

    // (description, cypher, sql)
    let pairs = [
        (
            "employees of department 3",
            "MATCH (e:EMP)-[w:WORK_AT]->(d:DEPT) WHERE d.dnum = 3 RETURN e.ename AS name",
            "SELECT e.EmpName AS name FROM Employee AS e \
             JOIN Assignment AS a ON a.EmpRef = e.EmpId \
             JOIN Department AS d ON a.DeptRef = d.DeptNo WHERE d.DeptNo = 3",
        ),
        (
            "employee/department directory",
            "MATCH (e:EMP)-[w:WORK_AT]->(d:DEPT) RETURN e.id AS emp, d.dnum AS dept",
            "SELECT a.EmpRef AS emp, a.DeptRef AS dept FROM Assignment AS a",
        ),
        (
            "headcount per department (wrong rewrite: groups by department id instead of name)",
            "MATCH (e:EMP)-[w:WORK_AT]->(d:DEPT) RETURN d.dname AS dept, Count(e) AS headcount",
            "SELECT d.DeptNo AS dept, Count(*) AS headcount FROM Department AS d \
             JOIN Assignment AS a ON a.DeptRef = d.DeptNo GROUP BY d.DeptNo",
        ),
    ];

    let deductive = DeductiveChecker::new();
    let bounded = BoundedChecker::with_budget(Duration::from_secs(20));

    for (description, cypher_text, sql_text) in pairs {
        println!("== {description} ==");
        let cypher = parse_cypher(cypher_text)?;
        let sql = parse_sql(sql_text)?;

        let deductive_outcome = check_equivalence(
            &domain.graph_schema,
            &cypher,
            &domain.target_schema,
            &sql,
            &transformer,
            &deductive,
        )?;
        println!("  deductive backend : {}", describe(&deductive_outcome));

        let bounded_outcome = check_equivalence(
            &domain.graph_schema,
            &cypher,
            &domain.target_schema,
            &sql,
            &transformer,
            &bounded,
        )?;
        println!("  bounded backend   : {}", describe(&bounded_outcome));
        if let CheckOutcome::Refuted(cex) = &bounded_outcome {
            println!(
                "  counterexample    : graph with {} nodes / {} edges, results {} vs {} rows",
                cex.graph_instance.as_ref().map(|g| g.node_count()).unwrap_or(0),
                cex.graph_instance.as_ref().map(|g| g.edge_count()).unwrap_or(0),
                cex.graph_side_result.len(),
                cex.relational_side_result.len()
            );
        }
        println!();
    }
    Ok(())
}

fn describe(outcome: &CheckOutcome) -> String {
    match outcome {
        CheckOutcome::Verified => "verified equivalent (unbounded)".to_string(),
        CheckOutcome::BoundedEquivalent { bound } => {
            format!("no counterexample up to {bound} rows per table")
        }
        CheckOutcome::Refuted(_) => "NOT equivalent (counterexample found)".to_string(),
        CheckOutcome::Unknown(reason) => format!("unknown: {reason}"),
    }
}
