//! The motivating example of the paper (Section 2): a published SQL/Cypher
//! pair over a biomedical database that is claimed to be equivalent but is
//! not — the Cypher query double-counts paths through shared sentences.
//!
//! This example (1) rebuilds the Figure 3 instances, (2) shows the two
//! queries disagreeing (counts 2 vs 4), (3) runs Graphiti's bounded checker
//! to refute equivalence automatically, and (4) shows that the corrected
//! Cypher query from Appendix C agrees with the SQL query on this instance.
//!
//! Run with `cargo run --release --example biomedical_analytics`.

use graphiti_benchmarks::full_corpus;
use graphiti_checkers::BoundedChecker;
use graphiti_common::Value;
use graphiti_core::{check_equivalence, CheckOutcome};
use graphiti_cypher::{eval_query as eval_cypher, parse_query as parse_cypher};
use graphiti_graph::GraphInstance;
use graphiti_sql::eval_query as eval_sql;
use graphiti_transformer::apply_to_graph;
use std::time::Duration;

fn main() -> graphiti_common::Result<()> {
    // The motivating-example benchmark from the corpus carries the schemas,
    // the transformer, and both query texts.
    let corpus = full_corpus();
    let bench = corpus
        .iter()
        .find(|b| b.id == "academic/motivating-example")
        .expect("corpus contains the motivating example");

    // ---------------------------------------------------------------------
    // 1. The Figure 3a graph instance.
    let mut graph = GraphInstance::new();
    let atropine =
        graph.add_node("CONCEPT", [("CID", Value::Int(1)), ("Name", Value::str("Atropine"))]);
    let _aspirin =
        graph.add_node("CONCEPT", [("CID", Value::Int(2)), ("Name", Value::str("Aspirin"))]);
    let pa0 = graph.add_node("PA", [("PID", Value::Int(0)), ("PCSID", Value::Int(0))]);
    let pa1 = graph.add_node("PA", [("PID", Value::Int(1)), ("PCSID", Value::Int(1))]);
    let s0 = graph.add_node("SENTENCE", [("SID", Value::Int(0)), ("PMID", Value::Int(0))]);
    let _s1 = graph.add_node("SENTENCE", [("SID", Value::Int(1)), ("PMID", Value::Int(0))]);
    graph.add_edge("CS", atropine, pa0, [("CSEID", Value::Int(0)), ("CSID", Value::Int(0))]);
    graph.add_edge("CS", atropine, pa1, [("CSEID", Value::Int(1)), ("CSID", Value::Int(1))]);
    graph.add_edge("SP", pa0, s0, [("SPID", Value::Int(0)), ("SPSID", Value::Int(0))]);
    graph.add_edge("SP", pa1, s0, [("SPID", Value::Int(1)), ("SPSID", Value::Int(0))]);

    // 2. The corresponding relational instance (Figure 3b) via the user
    //    transformer, and both query results.
    let transformer = bench.transformer()?;
    let relational =
        apply_to_graph(&transformer, &bench.graph_schema, &graph, &bench.target_schema)?;
    let cypher = bench.cypher()?;
    let sql = bench.sql()?;
    let cypher_result = eval_cypher(&bench.graph_schema, &graph, &cypher)?;
    let sql_result = eval_sql(&relational, &sql)?;
    println!("Cypher query result (Figure 4d):\n{cypher_result}");
    println!("SQL query result (Figure 4b):\n{sql_result}");
    println!(
        "The pair is {} on the Figure 3 instance.\n",
        if cypher_result.equivalent(&sql_result) { "equivalent" } else { "NOT equivalent" }
    );

    // 3. Let Graphiti refute equivalence automatically.
    let checker = BoundedChecker::with_budget(Duration::from_secs(60));
    let outcome = check_equivalence(
        &bench.graph_schema,
        &cypher,
        &bench.target_schema,
        &sql,
        &transformer,
        &checker,
    )?;
    match outcome {
        CheckOutcome::Refuted(cex) => {
            println!("Graphiti refuted equivalence. Counterexample (graph side):");
            if let Some(g) = &cex.graph_instance {
                println!("  {} nodes, {} edges", g.node_count(), g.edge_count());
            }
            println!("  Cypher-side result:\n{}", cex.graph_side_result);
            println!("  SQL-side result:\n{}", cex.relational_side_result);
        }
        other => println!("Unexpected outcome: {other:?}"),
    }

    // 4. The corrected query from Appendix C agrees with the SQL query on
    //    this instance: the EXISTS predicate prevents double counting.
    let corrected = parse_cypher(
        "MATCH (s:SENTENCE)<-[r3:SP]-(p2:PA)<-[r4:CS]-(c2:CONCEPT) \
         WHERE EXISTS { MATCH (c1:CONCEPT {CID: 1})-[r1:CS]->(p1:PA)-[r2:SP]->(s:SENTENCE) } \
         RETURN c2.CID AS cid, Count(*) AS freq",
    )?;
    let corrected_result = eval_cypher(&bench.graph_schema, &graph, &corrected)?;
    println!("\nCorrected Cypher query (Appendix C) result:\n{corrected_result}");
    println!(
        "Corrected query agrees with the SQL query on this instance: {}",
        corrected_result.equivalent(&sql_result)
    );
    Ok(())
}
