//! Bug hunting over the hand-written benchmarks: runs Graphiti with the
//! bounded-model-checking backend on every StackOverflow / Tutorial /
//! Academic pair and reports which "supposedly equivalent" translations are
//! actually wrong — reproducing the headline finding of Section 6.1 (bugs in
//! a Neo4j tutorial example and in queries from the wild).
//!
//! Run with `cargo run --release --example tutorial_bug_hunt`.

use graphiti_benchmarks::{full_corpus, Category};
use graphiti_checkers::BoundedChecker;
use graphiti_core::{check_equivalence, CheckOutcome};
use std::time::Duration;

fn main() -> graphiti_common::Result<()> {
    // Keep only the hand-written pairs (generated benchmark ids end with a
    // three-digit sequence number).
    let corpus: Vec<_> = full_corpus()
        .into_iter()
        .filter(|b| {
            matches!(b.category, Category::StackOverflow | Category::Tutorial | Category::Academic)
        })
        .filter(|b| !b.id.chars().rev().take(3).all(|c| c.is_ascii_digit()))
        .collect();

    let checker = BoundedChecker::with_budget(Duration::from_secs(20));
    let mut refuted = 0;
    let mut verified = 0;
    for bench in &corpus {
        let cypher = bench.cypher()?;
        let sql = bench.sql()?;
        let transformer = bench.transformer()?;
        let outcome = check_equivalence(
            &bench.graph_schema,
            &cypher,
            &bench.target_schema,
            &sql,
            &transformer,
            &checker,
        )?;
        match outcome {
            CheckOutcome::Refuted(cex) => {
                refuted += 1;
                println!("✗ {}: NOT equivalent", bench.id);
                println!("    Cypher: {}", bench.cypher_text);
                println!("    SQL:    {}", bench.sql_text);
                if let Some(g) = &cex.graph_instance {
                    println!(
                        "    Counterexample graph: {} nodes, {} edges; results differ ({} vs {} rows)",
                        g.node_count(),
                        g.edge_count(),
                        cex.graph_side_result.len(),
                        cex.relational_side_result.len()
                    );
                }
            }
            CheckOutcome::BoundedEquivalent { bound } => {
                verified += 1;
                println!("✓ {}: no counterexample up to {} rows per table", bench.id, bound);
            }
            CheckOutcome::Verified => {
                verified += 1;
                println!("✓ {}: verified", bench.id);
            }
            CheckOutcome::Unknown(reason) => {
                println!("? {}: unknown ({reason})", bench.id);
            }
        }
    }
    println!(
        "\n{} pairs checked: {refuted} refuted, {verified} with no counterexample.",
        corpus.len()
    );
    Ok(())
}
