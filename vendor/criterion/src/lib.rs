//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the subset of the criterion 0.5 API that the `graphiti-bench`
//! benchmarks use — [`Criterion::benchmark_group`], [`BenchmarkGroup`]
//! builders, [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a deliberately
//! simple measurement loop: one warm-up iteration, then `sample_size` timed
//! iterations, reporting min/mean. No statistics, plots, or HTML reports.
//! Swapping this vendored crate for the real one upgrades the measurement
//! without touching the benchmark sources.

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for a parameterised benchmark, e.g. `scale/1000`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, also forces lazy init
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time hint (accepted for API compatibility;
    /// the stub always runs exactly `sample_size` iterations).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, self.sample_size, |b| f(b));
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group (printing is done per-benchmark; this is a no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Creates a driver with the default sample size (10).
    pub fn new() -> Self {
        Criterion { default_sample_size: 10 }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size.max(1);
        BenchmarkGroup { criterion: self, name: name.into(), sample_size }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = self.default_sample_size.max(1);
        self.run_one(name, samples, |b| f(b));
        self
    }

    fn run_one<F: FnOnce(&mut Bencher)>(&mut self, name: &str, samples: usize, f: F) {
        let mut bencher = Bencher { samples, durations: Vec::new() };
        f(&mut bencher);
        if bencher.durations.is_empty() {
            println!("{name:<60} (no samples)");
            return;
        }
        let total: Duration = bencher.durations.iter().sum();
        let mean = total / bencher.durations.len() as u32;
        let min = bencher.durations.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<60} mean {:>12?}  min {:>12?}  ({} samples)",
            mean,
            min,
            bencher.durations.len()
        );
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_benchmark() {
        let mut c = Criterion::new();
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("inc", |b| b.iter(|| runs += 1));
            group.finish();
        }
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::new();
        let mut seen = 0i64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(1);
            group.bench_with_input(BenchmarkId::new("id", 7), &41i64, |b, &x| {
                b.iter(|| seen = x + 1)
            });
            group.finish();
        }
        assert_eq!(seen, 42);
    }
}
