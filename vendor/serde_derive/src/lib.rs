//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates its data types with `#[derive(Serialize,
//! Deserialize)]` so that they are serialization-ready, but the build
//! environment cannot reach crates.io. These derives expand to nothing:
//! the attributes stay valid (and the real serde can be dropped in by
//! swapping the vendored crates), while no serialization code is generated.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
