//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate re-implements exactly the slice of the `rand` 0.8 API
//! that the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256\*\* generator;
//! * [`SeedableRng::seed_from_u64`] — splitmix64 seeding, so seeds behave
//!   like `rand`'s (distinct small seeds give unrelated streams);
//! * [`Rng::gen_range`] over integer and float ranges, and [`Rng::gen_bool`].
//!
//! The streams are *not* bit-compatible with the real `rand` crate; every
//! caller in this workspace only relies on determinism for a fixed seed, not
//! on specific values.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from `self` using `rng`.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Maps 64 random bits to a float in `[0, 1)` using the top 53 bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`. Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator, the stand-in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64 so that nearby seeds produce
            // unrelated streams (same approach as the real crate).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..5);
            assert!((-3..5).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
