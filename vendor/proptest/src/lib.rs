//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the slice of the proptest 1.x API that the workspace's
//! property tests and `graphiti-testkit` use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map`, `prop_filter`
//!   and `boxed`;
//! * range strategies (`0usize..5`), tuple strategies up to arity 8,
//!   [`collection::vec`], [`Just`], [`any`], and [`sample::select`];
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], [`prop_assume!`] and [`prop_oneof!`] macros;
//! * [`test_runner::TestRunner`] driven by [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, deliberately accepted for a vendored
//! test dependency: failing cases are **not shrunk** (the failing input is
//! printed in full instead), `prop_assume!` skips the case rather than
//! resampling, and generation is deterministic from a fixed seed (override
//! with the `PROPTEST_SEED` environment variable) so test runs are
//! reproducible by default.

use rand::rngs::StdRng;
use rand::Rng;

/// Re-export so generated code and downstream crates can name the RNG.
pub use rand::SeedableRng;

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no intermediate `ValueTree`: strategies
/// generate values directly and nothing shrinks.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values not satisfying `f` (retrying a bounded
    /// number of times before panicking, like proptest's rejection limit).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: std::rc::Rc::new(self) }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row: {}", self.whence);
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: self.inner.clone() }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.inner.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

// ----------------------------------------------------------- range strategies

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ----------------------------------------------------------- tuple strategies

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ------------------------------------------------------------------ arbitrary

/// Types with a canonical strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy yielding uniformly random values of a primitive type.
#[derive(Debug, Clone, Default)]
pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(0u64..=u64::MAX) as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(core::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(core::marker::PhantomData)
    }
}

/// Returns the canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ----------------------------------------------------------------- collection

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Anything usable as a collection size: a fixed size or a range.
    pub trait SizeRange {
        /// Draws a size.
        fn draw(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn draw(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn draw(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for vectors with element strategy `S`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// comes from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

// --------------------------------------------------------------------- sample

/// Sampling strategies (`proptest::sample::select`).
pub mod sample {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy that picks one element of a fixed list.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    /// Picks uniformly from `options`; panics if `options` is empty.
    pub fn select<T: Clone, I: Into<Vec<T>>>(options: I) -> Select<T> {
        let options = options.into();
        assert!(!options.is_empty(), "sample::select requires at least one option");
        Select { options }
    }
}

// ---------------------------------------------------------------- test runner

/// The test runner and its configuration.
pub mod test_runner {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration for [`TestRunner`]; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Applies a `PROPTEST_CASES`-style override to a config.  Factored
    /// out of [`TestRunner::new`] so it is testable without mutating
    /// process-global environment state from a parallel test harness.
    pub fn apply_cases_override(mut config: ProptestConfig, raw: Option<String>) -> ProptestConfig {
        if let Some(cases) = raw.and_then(|s| s.parse::<u32>().ok()) {
            config.cases = cases;
        }
        config
    }

    /// Drives a property over `config.cases` generated inputs.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
    }

    impl TestRunner {
        /// Creates a runner seeded from `PROPTEST_SEED` (or a fixed default,
        /// so test runs are reproducible).
        ///
        /// Like real proptest, the `PROPTEST_CASES` environment variable
        /// overrides the configured case count — the nightly
        /// differential-fuzz CI job uses this to deepen every property in
        /// the workspace without touching per-test configs.
        pub fn new(config: ProptestConfig) -> Self {
            let config = apply_cases_override(config, std::env::var("PROPTEST_CASES").ok());
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x9e3779b97f4a7c15);
            TestRunner { config, rng: StdRng::seed_from_u64(seed) }
        }

        /// Runs `test` on `config.cases` inputs generated by `strategy`,
        /// printing the failing input (no shrinking) if a case panics.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
        where
            S: Strategy,
            S::Value: std::fmt::Debug,
            F: FnMut(S::Value),
        {
            for case in 0..self.config.cases {
                let input = strategy.generate(&mut self.rng);
                let rendered = format!("{input:?}");
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(input)));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest: case {}/{} failed (no shrinking in the vendored runner)\n\
                         failing input: {}",
                        case + 1,
                        self.config.cases,
                        rendered
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    }
}

pub use test_runner::ProptestConfig;

// --------------------------------------------------------------------- macros

/// Declares property tests over strategies, mirroring proptest's macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run(&strategy, |($($arg,)+)| { $body });
            }
        )*
    };
}

/// Asserts inside a property, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when `cond` is false. Real proptest resamples;
/// the vendored runner counts the case as passed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Strategy that picks uniformly among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one alternative");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_vec_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = (0usize..5, 10i64..20, collection::vec(0u8..3, 2..6));
        for _ in 0..200 {
            let (a, b, v) = strat.generate(&mut rng);
            assert!(a < 5);
            assert!((10..20).contains(&b));
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn map_filter_flat_map_compose() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = (1usize..4)
            .prop_filter("nonzero", |&n| n > 0)
            .prop_flat_map(|n| collection::vec(0usize..n, n))
            .prop_map(|v| v.len());
        for _ in 0..100 {
            let len = strat.generate(&mut rng);
            assert!((1..4).contains(&len));
        }
    }

    #[test]
    fn oneof_and_select_pick_listed_options() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = prop_oneof![Just(1i64), Just(2i64), 5i64..7];
        let sel = sample::select(vec!["a", "b"]);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 1 || v == 2 || (5..7).contains(&v));
            let s = sel.generate(&mut rng);
            assert!(s == "a" || s == "b");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: multiple args, assume, and assertions.
        #[test]
        fn macro_generates_and_asserts(x in 0usize..10, ys in collection::vec(0i64..5, 0..4)) {
            prop_assume!(x != 3);
            prop_assert!(x < 10);
            prop_assert_eq!(ys.len(), ys.len());
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn proptest_cases_override_replaces_configured_count() {
        use crate::test_runner::{apply_cases_override, ProptestConfig};
        let base = ProptestConfig::with_cases(99);
        assert_eq!(apply_cases_override(base.clone(), Some("7".to_string())).cases, 7);
        // Absent or unparsable values leave the config untouched.
        assert_eq!(apply_cases_override(base.clone(), None).cases, 99);
        assert_eq!(apply_cases_override(base, Some("not-a-number".to_string())).cases, 99);
    }
}
