//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The workspace's data types carry `#[derive(Serialize, Deserialize)]`
//! attributes; this crate makes those derives compile without network
//! access. The derives (re-exported from the vendored `serde_derive`)
//! expand to nothing, and the traits here are empty markers, so no
//! serialization behaviour is implemented — swapping these two vendored
//! crates for the real ones re-enables it without touching any source.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
