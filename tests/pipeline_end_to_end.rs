//! Cross-crate integration tests: the full Algorithm 1 pipeline with both
//! backends on benchmarks drawn from the corpus, plus corpus-wide sanity
//! checks that every hand-written benchmark's ground truth is respected.

use graphiti_benchmarks::{full_corpus, small_corpus, Category};
use graphiti_checkers::{BoundedChecker, DeductiveChecker};
use graphiti_core::{check_equivalence, reduce, CheckOutcome};
use std::time::Duration;

#[test]
fn handwritten_ground_truth_is_respected_by_the_bounded_checker() {
    // Only the hand-written pairs (ids without a trailing sequence number):
    // the generated categories are exercised by the experiment harness.
    let corpus: Vec<_> = full_corpus()
        .into_iter()
        .filter(|b| !b.id.chars().rev().take(3).all(|c| c.is_ascii_digit()))
        .collect();
    assert!(corpus.len() >= 10);
    for bench in corpus {
        // Expected-equivalent pairs only need a short sweep (we are checking
        // for the *absence* of false refutations); expected-buggy pairs get
        // a longer budget to actually find their counterexample.
        let budget = if bench.expected_equivalent {
            Duration::from_secs(2)
        } else {
            Duration::from_secs(60)
        };
        let outcome = check_equivalence(
            &bench.graph_schema,
            &bench.cypher().unwrap(),
            &bench.target_schema,
            &bench.sql().unwrap(),
            &bench.transformer().unwrap(),
            &BoundedChecker::with_budget(budget),
        )
        .unwrap();
        if bench.expected_equivalent {
            assert!(
                !outcome.is_refuted(),
                "{} was refuted but is expected to be equivalent",
                bench.id
            );
        } else {
            assert!(
                outcome.is_refuted(),
                "{} was not refuted but is expected to be non-equivalent (got {outcome:?})",
                bench.id
            );
        }
    }
}

#[test]
fn generated_equivalent_pairs_are_never_refuted() {
    // A sample of generated pairs marked equivalent must never be refuted:
    // they were produced by the sound transpiler, so a refutation would be a
    // soundness bug in the pipeline.
    let corpus: Vec<_> =
        small_corpus(20).into_iter().filter(|b| b.expected_equivalent).take(20).collect();
    assert!(!corpus.is_empty());
    let quick = BoundedChecker { time_budget: Duration::from_millis(700), ..Default::default() };
    for bench in corpus {
        let outcome = check_equivalence(
            &bench.graph_schema,
            &bench.cypher().unwrap(),
            &bench.target_schema,
            &bench.sql().unwrap(),
            &bench.transformer().unwrap(),
            &quick,
        )
        .unwrap();
        assert!(!outcome.is_refuted(), "soundness violation on {}", bench.id);
    }
}

#[test]
fn deductive_backend_verifies_a_sample_of_mediator_pairs() {
    let corpus: Vec<_> =
        full_corpus().into_iter().filter(|b| b.category == Category::Mediator).take(15).collect();
    let deductive = DeductiveChecker::new();
    let mut verified = 0;
    let mut supported = 0;
    for bench in &corpus {
        let reduction =
            reduce(&bench.graph_schema, &bench.cypher().unwrap(), &bench.transformer().unwrap())
                .unwrap();
        let sql = bench.sql().unwrap();
        if !deductive.supports(&reduction.transpiled) || !deductive.supports(&sql) {
            continue;
        }
        supported += 1;
        let outcome = check_equivalence(
            &bench.graph_schema,
            &bench.cypher().unwrap(),
            &bench.target_schema,
            &sql,
            &bench.transformer().unwrap(),
            &deductive,
        )
        .unwrap();
        if matches!(outcome, CheckOutcome::Verified) {
            verified += 1;
        }
    }
    assert!(supported > 0, "the Mediator category must contain supported pairs");
    // The paper verifies roughly 80% of supported pairs; our generated
    // Mediator pairs are all exactly transpiler images, so they should all
    // verify.
    assert_eq!(verified, supported);
}

#[test]
fn bounded_and_deductive_backends_never_contradict_each_other() {
    // If the deductive backend says Verified, the bounded backend must not
    // find a counterexample (soundness of both).
    let corpus: Vec<_> =
        full_corpus().into_iter().filter(|b| b.category == Category::Mediator).take(6).collect();
    let deductive = DeductiveChecker::new();
    let bounded = BoundedChecker { time_budget: Duration::from_millis(600), ..Default::default() };
    for bench in &corpus {
        let args = (
            &bench.graph_schema,
            bench.cypher().unwrap(),
            &bench.target_schema,
            bench.sql().unwrap(),
            bench.transformer().unwrap(),
        );
        let d = check_equivalence(args.0, &args.1, args.2, &args.3, &args.4, &deductive).unwrap();
        let b = check_equivalence(args.0, &args.1, args.2, &args.3, &args.4, &bounded).unwrap();
        if matches!(d, CheckOutcome::Verified) {
            assert!(!b.is_refuted(), "backends disagree on {}", bench.id);
        }
    }
}
