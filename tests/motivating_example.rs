//! Integration test for the paper's motivating example (Section 2,
//! Figures 2-8): the full pipeline — schemas, transformer, transpilation,
//! evaluation, and refutation — reproduced end to end across crates.

use graphiti_benchmarks::full_corpus;
use graphiti_checkers::BoundedChecker;
use graphiti_common::Value;
use graphiti_core::{check_equivalence, reduce, CheckOutcome};
use graphiti_cypher::eval_query as eval_cypher;
use graphiti_graph::GraphInstance;
use graphiti_sql::eval_query as eval_sql;
use graphiti_transformer::{apply_to_graph, graph_to_facts, is_model};
use std::time::Duration;

/// Builds the Figure 3a graph instance for the motivating-example benchmark.
fn figure_3a_graph() -> GraphInstance {
    let mut graph = GraphInstance::new();
    let atropine =
        graph.add_node("CONCEPT", [("CID", Value::Int(1)), ("Name", Value::str("Atropine"))]);
    let _aspirin =
        graph.add_node("CONCEPT", [("CID", Value::Int(2)), ("Name", Value::str("Aspirin"))]);
    let pa0 = graph.add_node("PA", [("PID", Value::Int(0)), ("PCSID", Value::Int(0))]);
    let pa1 = graph.add_node("PA", [("PID", Value::Int(1)), ("PCSID", Value::Int(1))]);
    let s0 = graph.add_node("SENTENCE", [("SID", Value::Int(0)), ("PMID", Value::Int(0))]);
    let _s1 = graph.add_node("SENTENCE", [("SID", Value::Int(1)), ("PMID", Value::Int(0))]);
    graph.add_edge("CS", atropine, pa0, [("CSEID", Value::Int(0)), ("CSID", Value::Int(0))]);
    graph.add_edge("CS", atropine, pa1, [("CSEID", Value::Int(1)), ("CSID", Value::Int(1))]);
    graph.add_edge("SP", pa0, s0, [("SPID", Value::Int(0)), ("SPSID", Value::Int(0))]);
    graph.add_edge("SP", pa1, s0, [("SPID", Value::Int(1)), ("SPSID", Value::Int(0))]);
    graph
}

fn motivating_benchmark() -> graphiti_benchmarks::Benchmark {
    full_corpus()
        .into_iter()
        .find(|b| b.id == "academic/motivating-example")
        .expect("corpus contains the motivating example")
}

#[test]
fn figure_4_results_differ_by_a_factor_of_two() {
    let bench = motivating_benchmark();
    let graph = figure_3a_graph();
    assert!(graph.validate(&bench.graph_schema).is_ok());

    // The graph and relational instances of Figure 3 are equivalent modulo
    // the user transformer (Example 4.1).
    let transformer = bench.transformer().unwrap();
    let relational =
        apply_to_graph(&transformer, &bench.graph_schema, &graph, &bench.target_schema).unwrap();
    let facts = graph_to_facts(&bench.graph_schema, &graph).unwrap();
    assert!(is_model(&transformer, &facts, &relational, &bench.target_schema).unwrap());

    // Figure 4b vs Figure 4d: (1, 2) vs (1, 4).
    let cypher_result = eval_cypher(&bench.graph_schema, &graph, &bench.cypher().unwrap()).unwrap();
    let sql_result = eval_sql(&relational, &bench.sql().unwrap()).unwrap();
    assert_eq!(cypher_result.rows, vec![vec![Value::Int(1), Value::Int(4)]]);
    assert_eq!(sql_result.rows, vec![vec![Value::Int(1), Value::Int(2)]]);
    assert!(!cypher_result.equivalent(&sql_result));
}

#[test]
fn transpiled_query_is_faithful_to_cypher_semantics() {
    // Theorem 5.7 on the motivating instance: the transpiled SQL query over
    // the induced schema computes the same (incorrectly double-counted)
    // table as the Cypher query.
    let bench = motivating_benchmark();
    let graph = figure_3a_graph();
    let reduction =
        reduce(&bench.graph_schema, &bench.cypher().unwrap(), &bench.transformer().unwrap())
            .unwrap();
    let induced = apply_to_graph(
        &reduction.ctx.sdt,
        &bench.graph_schema,
        &graph,
        &reduction.ctx.induced_schema,
    )
    .unwrap();
    let transpiled_result = eval_sql(&induced, &reduction.transpiled).unwrap();
    let cypher_result = eval_cypher(&bench.graph_schema, &graph, &bench.cypher().unwrap()).unwrap();
    assert!(transpiled_result.equivalent(&cypher_result));
}

#[test]
fn graphiti_refutes_the_published_pair() {
    let bench = motivating_benchmark();
    let checker = BoundedChecker::with_budget(Duration::from_secs(60));
    let outcome = check_equivalence(
        &bench.graph_schema,
        &bench.cypher().unwrap(),
        &bench.target_schema,
        &bench.sql().unwrap(),
        &bench.transformer().unwrap(),
        &checker,
    )
    .unwrap();
    match outcome {
        CheckOutcome::Refuted(cex) => {
            // The counterexample comes with a graph-side witness and two
            // result tables that genuinely differ.
            assert!(!cex.graph_side_result.equivalent(&cex.relational_side_result));
            let graph = cex.graph_instance.expect("graph counterexample");
            assert!(graph.validate(&bench.graph_schema).is_ok());
        }
        other => panic!("expected refutation of the motivating example, got {other:?}"),
    }
}
