//! Property-based tests for the core invariants of the reproduction:
//!
//! * **Transpiler soundness (Theorem 5.7)**: on arbitrary small graph
//!   instances, the transpiled SQL query over the SDT-image of the graph is
//!   table-equivalent to the Cypher query on the graph.
//! * **Table equivalence (Definition 4.4)** is reflexive, symmetric, and
//!   invariant under column and row permutation.
//! * **Transformer application** commutes with the counterexample lifting
//!   (SDT followed by lift followed by SDT is a fixpoint).

use graphiti_common::Value;
use graphiti_core::{infer_sdt, lift_to_graph, transpile_query};
use graphiti_cypher::{eval_query as eval_cypher, parse_query as parse_cypher};
use graphiti_graph::{EdgeType, GraphInstance, GraphSchema, NodeType};
use graphiti_relational::Table;
use graphiti_sql::eval_query as eval_sql;
use graphiti_transformer::apply_to_graph;
use proptest::prelude::*;

fn emp_schema() -> GraphSchema {
    GraphSchema::new()
        .with_node(NodeType::new("EMP", ["id", "ename"]))
        .with_node(NodeType::new("DEPT", ["dnum", "dname"]))
        .with_edge(EdgeType::new("WORK_AT", "EMP", "DEPT", ["wid"]))
}

/// A strategy producing small, schema-valid EMP/DEPT/WORK_AT graphs.
fn arb_graph() -> impl Strategy<Value = GraphInstance> {
    let emp_count = 0usize..5;
    let dept_count = 1usize..4;
    (emp_count, dept_count, proptest::collection::vec((0usize..5, 0usize..4), 0..8), any::<u64>())
        .prop_map(|(emps, depts, edges, salt)| {
            let mut g = GraphInstance::new();
            let mut emp_ids = Vec::new();
            let mut dept_ids = Vec::new();
            for i in 0..emps {
                emp_ids.push(g.add_node(
                    "EMP",
                    [
                        ("id", Value::Int(i as i64)),
                        ("ename", Value::Str(format!("e{}", (i as u64 + salt) % 3))),
                    ],
                ));
            }
            for i in 0..depts {
                dept_ids.push(g.add_node(
                    "DEPT",
                    [
                        ("dnum", Value::Int(i as i64)),
                        ("dname", Value::Str(format!("d{}", (i as u64 + salt) % 2))),
                    ],
                ));
            }
            for (k, (e, d)) in edges.into_iter().enumerate() {
                if !emp_ids.is_empty() && !dept_ids.is_empty() {
                    let src = emp_ids[e % emp_ids.len()];
                    let tgt = dept_ids[d % dept_ids.len()];
                    g.add_edge("WORK_AT", src, tgt, [("wid", Value::Int(k as i64))]);
                }
            }
            g
        })
}

/// The featherweight queries whose soundness we check on random instances.
const QUERIES: &[&str] = &[
    "MATCH (n:EMP) RETURN n.ename AS name, n.id AS id",
    "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.ename AS name, m.dname AS dept",
    "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname AS dept, Count(n) AS headcount",
    "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WHERE n.id > 0 AND m.dnum = 1 RETURN n.id AS id",
    "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.id AS id, m.dnum AS dept",
    "MATCH (m:DEPT) WHERE EXISTS ((n:EMP)-[e:WORK_AT]->(m:DEPT)) RETURN m.dname AS dept",
    "MATCH (n:EMP) RETURN Count(*) AS total",
    "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) MATCH (n2:EMP)-[e2:WORK_AT]->(m:DEPT) \
     WHERE n.id < n2.id RETURN n.id AS a, n2.id AS b",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 5.7 (soundness of transpilation), checked empirically on
    /// random instances for a battery of featherweight queries.
    #[test]
    fn transpilation_is_sound_on_random_graphs(graph in arb_graph(), qidx in 0usize..QUERIES.len()) {
        let schema = emp_schema();
        prop_assume!(graph.validate(&schema).is_ok());
        let ctx = infer_sdt(&schema).unwrap();
        let query = parse_cypher(QUERIES[qidx]).unwrap();
        let cypher_result = eval_cypher(&schema, &graph, &query).unwrap();
        let induced = apply_to_graph(&ctx.sdt, &schema, &graph, &ctx.induced_schema).unwrap();
        let sql = transpile_query(&ctx, &query).unwrap();
        let sql_result = eval_sql(&induced, &sql).unwrap();
        prop_assert!(
            cypher_result.equivalent(&sql_result),
            "query `{}` disagrees:\ncypher:\n{}\nsql:\n{}",
            QUERIES[qidx],
            cypher_result,
            sql_result
        );
    }

    /// The SDT is invertible on its image: graph → induced tables → graph →
    /// induced tables is a fixpoint (used for counterexample lifting).
    #[test]
    fn sdt_lift_round_trip(graph in arb_graph()) {
        let schema = emp_schema();
        prop_assume!(graph.validate(&schema).is_ok());
        let ctx = infer_sdt(&schema).unwrap();
        let induced = apply_to_graph(&ctx.sdt, &schema, &graph, &ctx.induced_schema).unwrap();
        let lifted = lift_to_graph(&ctx, &induced).unwrap();
        prop_assert!(lifted.validate(&schema).is_ok());
        let induced_again = apply_to_graph(&ctx.sdt, &schema, &lifted, &ctx.induced_schema).unwrap();
        for rel in &ctx.induced_schema.relations {
            let a = induced.table(rel.name.as_str()).unwrap();
            let b = induced_again.table(rel.name.as_str()).unwrap();
            prop_assert!(a.equivalent(b), "table {} changed by the round trip", rel.name);
        }
    }

    /// Definition 4.4: table equivalence is invariant under row and column
    /// permutation, and sensitive to multiplicity changes.
    #[test]
    fn table_equivalence_properties(
        rows in proptest::collection::vec(proptest::collection::vec(0i64..4, 3), 0..6),
        row_seed in any::<u64>(),
    ) {
        let to_table = |rows: &[Vec<i64>], col_perm: [usize; 3]| -> Table {
            let mut t = Table::new(["a", "b", "c"]);
            for r in rows {
                t.push_row(col_perm.iter().map(|&i| Value::Int(r[i])).collect());
            }
            t
        };
        let original = to_table(&rows, [0, 1, 2]);
        // Row permutation (rotate by seed) + column permutation.
        let mut rotated = rows.clone();
        if !rotated.is_empty() {
            let shift = (row_seed as usize) % rotated.len();
            rotated.rotate_left(shift);
        }
        let permuted = to_table(&rotated, [2, 0, 1]);
        prop_assert!(original.equivalent(&original));
        prop_assert!(original.equivalent(&permuted));
        prop_assert!(permuted.equivalent(&original));
        // Adding a duplicate of an existing row breaks equivalence.
        if let Some(first) = rows.first() {
            let mut extended = rows.clone();
            extended.push(first.clone());
            let bigger = to_table(&extended, [0, 1, 2]);
            prop_assert!(!original.equivalent(&bigger));
        }
    }
}
