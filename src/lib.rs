//! Umbrella crate for the Graphiti reproduction.
//!
//! Graphiti checks equivalence between graph queries (Featherweight
//! Cypher) and relational queries (Featherweight SQL) connected by a
//! user-written database transformer: it infers a standard database
//! transformer from the graph schema, transpiles Cypher to SQL over the
//! induced relational schema (sound by construction), and reduces the
//! cross-model question to SQL-vs-SQL equivalence modulo a residual
//! transformer, discharged by a bounded or deductive backend.
//!
//! This crate re-exports the public API of every workspace member so that
//! the examples and integration tests can use a single dependency.  Library
//! users will usually depend on the individual crates instead:
//!
//! * [`graphiti_core`] — SDT inference, transpilation, equivalence checking;
//! * [`graphiti_cypher`] / [`graphiti_sql`] — the two query languages
//!   (parsers, evaluators, pretty-printers);
//! * [`graphiti_graph`] / [`graphiti_relational`] — the two data models;
//! * [`graphiti_transformer`] — the database-transformer DSL;
//! * [`graphiti_checkers`] — the bounded and deductive backends;
//! * [`graphiti_baseline`] — the best-effort baseline transpiler;
//! * [`graphiti_benchmarks`] — the evaluation corpus and mock data;
//! * [`graphiti_engine`] — the parallel batch execution service (shared
//!   snapshots + query-plan cache + worker pool);
//! * [`graphiti_store`] — the writable graph store (transactional deltas,
//!   MVCC snapshot generations, incremental re-freeze);
//! * [`graphiti_server`] — the serving front-end (length-prefixed binary
//!   protocol over TCP/unix sockets, group-commit write path).
//!
//! Tests additionally use `graphiti-testkit` (shared fixtures, proptest
//! generators, and the differential soundness oracle); it is a
//! dev-dependency only and not re-exported here.
//!
//! # Building, testing, reproducing
//!
//! ```console
//! $ cargo build --release                                  # whole workspace
//! $ cargo test -q                                          # tier-1 tests
//! $ cargo test --workspace -q                              # everything
//! $ cargo run --release -p graphiti-bench --bin all_tables # Tables 1-5
//! ```
//!
//! See `README.md` for the workspace layout and the vendored offline
//! stand-ins for `serde`, `rand`, `proptest`, and `criterion`.
//!
//! # Example
//!
//! ```
//! use graphiti::core::{infer_sdt, transpile_query};
//! use graphiti::cypher::parse_query;
//! use graphiti::graph::{EdgeType, GraphSchema, NodeType};
//!
//! let schema = GraphSchema::new()
//!     .with_node(NodeType::new("EMP", ["id", "name"]))
//!     .with_node(NodeType::new("DEPT", ["dnum", "dname"]))
//!     .with_edge(EdgeType::new("WORK_AT", "EMP", "DEPT", ["wid"]));
//! let ctx = infer_sdt(&schema).unwrap();
//! let q = parse_query("MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname AS dept").unwrap();
//! let sql = transpile_query(&ctx, &q).unwrap();
//! println!("{}", graphiti::sql::query_to_string(&sql));
//! ```
//!
//! # Session example
//!
//! The serving API: one [`Graphiti`] service, [`Session`]s pinned at a
//! snapshot generation, commits through the group-commit write path.
//! The same trait is implemented by the wire client
//! ([`Client::connect_tcp`]), so this code is transport-agnostic.
//!
//! ```
//! use graphiti::common::Value;
//! use graphiti::engine::BatchQuery;
//! use graphiti::graph::{GraphSchema, NodeType};
//! use graphiti::store::Delta;
//! use graphiti::{Graphiti, Session};
//!
//! let schema = GraphSchema::new().with_node(NodeType::new("EMP", ["id", "name"]));
//! let service = Graphiti::builder(schema).group_commit_default().open().unwrap();
//! let mut session = service.session();
//! let mut delta = Delta::new();
//! delta.add_node("EMP", [("id", Value::Int(1)), ("name", Value::str("Ada"))]);
//! let ack = session.commit(delta).unwrap();
//! assert!(session.generation() >= ack.published_generation); // read-your-writes
//! let rows = session
//!     .query(&BatchQuery::cypher("MATCH (n:EMP) RETURN n.name AS name"))
//!     .unwrap();
//! assert_eq!(rows.rows.len(), 1);
//! ```

pub use graphiti_baseline as baseline;
pub use graphiti_benchmarks as benchmarks;
pub use graphiti_checkers as checkers;
pub use graphiti_common as common;
pub use graphiti_core as core;
pub use graphiti_cypher as cypher;
pub use graphiti_engine as engine;
pub use graphiti_graph as graph;
pub use graphiti_relational as relational;
pub use graphiti_server as server;
pub use graphiti_sql as sql;
pub use graphiti_store as store;
pub use graphiti_transformer as transformer;

// The unified session API: one builder, one error enum, one `Session`
// trait — implemented by both the in-process embedding and the wire
// client, so callers cannot observe which transport they are behind.
pub use graphiti_common::{ApiError, ApiResult};
pub use graphiti_server::{Client, Server, ServerHandle, ServerOptions, WireSession};
pub use graphiti_store::{
    CommitAck, EmbeddedSession, Graphiti, GraphitiBuilder, ServiceStats, Session,
};
