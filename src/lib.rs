//! Umbrella crate for the Graphiti reproduction.
//!
//! This crate re-exports the public API of every workspace member so that
//! the examples and integration tests can use a single dependency.  Library
//! users will usually depend on the individual crates instead:
//!
//! * [`graphiti_core`] — SDT inference, transpilation, equivalence checking;
//! * [`graphiti_cypher`] / [`graphiti_sql`] — the two query languages
//!   (parsers, evaluators, pretty-printers);
//! * [`graphiti_graph`] / [`graphiti_relational`] — the two data models;
//! * [`graphiti_transformer`] — the database-transformer DSL;
//! * [`graphiti_checkers`] — the bounded and deductive backends;
//! * [`graphiti_baseline`] — the best-effort baseline transpiler;
//! * [`graphiti_benchmarks`] — the evaluation corpus and mock data.

pub use graphiti_baseline as baseline;
pub use graphiti_benchmarks as benchmarks;
pub use graphiti_checkers as checkers;
pub use graphiti_common as common;
pub use graphiti_core as core;
pub use graphiti_cypher as cypher;
pub use graphiti_graph as graph;
pub use graphiti_relational as relational;
pub use graphiti_sql as sql;
pub use graphiti_transformer as transformer;
